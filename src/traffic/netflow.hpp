// NetFlow modelling (§5.1): backbone routers aggregate sampled packets into
// per-flow records carrying addresses, ports, byte counts and the union of
// observed TCP flags. The provider ISP samples packets at 1/3000 and expires
// idle flows after 15 seconds.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/date.hpp"
#include "util/ipv4.hpp"
#include "util/rng.hpp"

namespace encdns::traffic {

/// TCP flag bits as they appear in NetFlow records.
namespace tcpflags {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflags

inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

/// Ground-truth traffic: one transport flow as it crossed the backbone.
struct RawFlow {
  util::Ipv4 src;
  util::Ipv4 dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = kProtoTcp;
  std::uint32_t packets = 1;   // client->server direction
  std::uint64_t bytes = 64;
  bool complete_session = true;  // SYN..ACK/PSH..FIN exchange (false: lone SYN)
  util::Date date;
};

/// One exported (sampled) record.
struct FlowRecord {
  util::Ipv4 src;
  util::Ipv4 dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = kProtoTcp;
  std::uint32_t packets = 0;  // sampled packet count
  std::uint64_t bytes = 0;
  std::uint8_t tcp_flags = 0;  // union over sampled packets
  util::Date date;

  /// §5.2 exclusion rule: a record whose only flag content is one SYN is an
  /// incomplete handshake and cannot carry DoT queries.
  [[nodiscard]] bool single_syn() const noexcept {
    return protocol == kProtoTcp && tcp_flags == tcpflags::kSyn && packets <= 1;
  }
};

class NetflowCollector {
 public:
  explicit NetflowCollector(double sampling_rate = 1.0 / 3000.0,
                            std::uint64_t seed = 0x5EEDF10ULL)
      : rate_(sampling_rate), rng_(util::mix64(seed)) {}

  /// Run one raw flow through packet sampling; a record is exported only if
  /// at least one of its packets was sampled. Flag union reflects *which*
  /// packets were sampled: the SYN appears only if the first packet was hit,
  /// the FIN only if the last one was.
  [[nodiscard]] std::optional<FlowRecord> observe(const RawFlow& flow);

  /// As above, but drawing sampling decisions from a caller-supplied rng
  /// instead of the collector's own stream. Parallel aggregation uses this
  /// with a per-day rng so sampling is independent of processing order.
  [[nodiscard]] std::optional<FlowRecord> observe(const RawFlow& flow,
                                                  util::Rng& rng);

  /// Fold another collector's tallies into this one (canonical-order merge of
  /// per-shard collectors).
  void merge(const NetflowCollector& other) noexcept {
    seen_ += other.seen_;
    exported_ += other.exported_;
  }

  [[nodiscard]] double sampling_rate() const noexcept { return rate_; }
  [[nodiscard]] std::uint64_t flows_seen() const noexcept { return seen_; }
  [[nodiscard]] std::uint64_t records_exported() const noexcept { return exported_; }

 private:
  double rate_;
  util::Rng rng_;
  std::uint64_t seen_ = 0;
  std::uint64_t exported_ = 0;
};

}  // namespace encdns::traffic
