#include "traffic/backbone.hpp"

#include <algorithm>
#include <cmath>

#include "world/providers.hpp"

namespace encdns::traffic {
namespace {

constexpr util::Date kCloudflareDotLaunch{2018, 4, 1};
constexpr util::Date kQuad9DotLaunch{2017, 11, 1};

}  // namespace

AdoptionCurve::AdoptionCurve(std::uint64_t seed) : seed_(seed) {}

double AdoptionCurve::daily_raw_flows(const std::string& resolver,
                                      const util::Date& date) const {
  if (resolver == "cloudflare") {
    if (date < kCloudflareDotLaunch) return 0.0;
    const int m = util::months_between(kCloudflareDotLaunch, date);
    // Ramp over the first months, then the steady ~9%/month growth that
    // yields +56% between Jul and Dec 2018.
    static constexpr double kRamp[] = {6000, 12000, 19000, 26000};
    double flows;
    if (m < 4) {
      flows = kRamp[m];
    } else {
      flows = 26000.0 * std::pow(1.0935, m - 3);
    }
    // Mild day-of-month noise.
    const std::uint64_t h = util::mix64(seed_ ^ static_cast<std::uint64_t>(
                                                    date.to_days()));
    return flows * (0.92 + 0.16 * static_cast<double>(h % 1000) / 1000.0);
  }
  if (resolver == "quad9") {
    if (date < kQuad9DotLaunch) return 0.0;
    // Flat but fluctuating: each month draws its own level.
    const std::uint64_t h =
        util::mix64(seed_ ^ 0x99ULL ^ static_cast<std::uint64_t>(date.month_index()));
    return 6000.0 + static_cast<double>(h % 9000);
  }
  return 0.0;
}

BackboneModel::BackboneModel(BackboneConfig config) : config_(config),
                                                      adoption_(config.seed) {
  build_netblocks();
}

void BackboneModel::build_netblocks() {
  util::Rng rng(util::mix64(config_.seed ^ 0xB10CULL));
  const std::int64_t period_days = util::days_between(config_.start, config_.end);
  std::uint32_t next_block = 0;
  const auto block_addr = [&next_block]() {
    const std::uint32_t b = next_block++;
    return util::Ipv4{static_cast<std::uint32_t>((114u << 24) | (b << 8))};
  };

  // Heavy NAT/proxy egress blocks: most of the volume, active for months.
  static constexpr double kHeavyWeights[] = {0.125, 0.115, 0.080, 0.065,
                                             0.055, 0.040, 0.035, 0.025};
  for (std::size_t i = 0; i < config_.heavy_blocks; ++i) {
    NetblockInfo nb;
    nb.slash24 = block_addr();
    nb.heavy = true;
    nb.weight = i < std::size(kHeavyWeights) ? kHeavyWeights[i] : 0.02;
    nb.active_from = config_.start.plus_days(rng.range(0, period_days / 3));
    nb.active_to = config_.end;
    netblocks_.push_back(nb);
  }
  // Mid blocks: a few months each.
  for (std::size_t i = 0; i < config_.mid_blocks; ++i) {
    NetblockInfo nb;
    nb.slash24 = block_addr();
    nb.weight = 0.005;
    nb.active_from = config_.start.plus_days(rng.range(0, period_days * 2 / 3));
    nb.active_to = nb.active_from.plus_days(rng.range(45, 180));
    netblocks_.push_back(nb);
  }
  // Medium blocks: one to eight weeks.
  for (std::size_t i = 0; i < config_.medium_blocks; ++i) {
    NetblockInfo nb;
    nb.slash24 = block_addr();
    nb.weight = 0.00075;
    nb.active_from = config_.start.plus_days(rng.range(0, period_days - 8));
    nb.active_to = nb.active_from.plus_days(rng.range(7, 56));
    netblocks_.push_back(nb);
  }
  // The short-lived tail: ~96% of blocks, active under a week (Fig. 12).
  for (std::size_t i = 0; i < config_.tail_blocks; ++i) {
    NetblockInfo nb;
    nb.slash24 = block_addr();
    nb.weight = 0.0074;
    nb.active_from = config_.start.plus_days(rng.range(0, period_days - 7));
    nb.active_to = nb.active_from.plus_days(rng.range(1, 6));
    netblocks_.push_back(nb);
  }

  // Scanner sources live outside the client space.
  scanner_sources_ = {util::Ipv4{162, 142, 125, 7}, util::Ipv4{74, 120, 14, 33},
                      util::Ipv4{167, 94, 138, 2}};
}

void BackboneModel::generate_day_into(const util::Date& day,
                                      FlowBatch& batch) const {
  // Per-day rng stream: each day's flows are a pure function of (seed, day),
  // independent of every other day — the property day-sharded parallel
  // aggregation relies on.
  util::Rng rng(util::mix64(config_.seed ^ 0xF10A7ULL ^
                            static_cast<std::uint64_t>(day.to_days())));
  static const std::vector<std::pair<std::string, std::vector<util::Ipv4>>>
      resolvers = {
          {"cloudflare",
           {world::addrs::kCloudflarePrimary, world::addrs::kCloudflareSecondary}},
          {"quad9", {world::addrs::kQuad9Primary}},
      };

  // Active blocks and their weight mass today.
  double mass = 0.0;
  for (const auto& nb : netblocks_)
    if (day.in_window(nb.active_from, nb.active_to)) mass += nb.weight;
  if (mass <= 0.0) return;

  for (const auto& [resolver, addresses] : resolvers) {
    const double daily = adoption_.daily_raw_flows(resolver, day);
    if (daily <= 0.0) continue;
    for (const auto& nb : netblocks_) {
      if (!day.in_window(nb.active_from, nb.active_to)) continue;
      const auto flows = rng.poisson(daily * nb.weight / mass);
      for (std::uint64_t f = 0; f < flows; ++f) {
        RawFlow flow;
        flow.src = util::Ipv4{nb.slash24.value() |
                              static_cast<std::uint32_t>(1 + rng.below(254))};
        flow.dst = addresses[rng.below(addresses.size())];
        flow.src_port = static_cast<std::uint16_t>(20000 + rng.below(40000));
        flow.dst_port = 853;
        flow.protocol = kProtoTcp;
        flow.packets = static_cast<std::uint32_t>(
            std::clamp(rng.lognormal(18.0, 0.5), 4.0, 120.0));
        flow.bytes = static_cast<std::uint64_t>(flow.packets) * 110;
        flow.complete_session = true;
        flow.date = day;
        batch.push(flow);
      }
    }
  }

  // Port-853 scanner probes: lone SYNs toward random destinations.
  const auto probes = rng.poisson(config_.scanner_probes_per_day);
  for (std::uint64_t p = 0; p < probes; ++p) {
    RawFlow probe;
    probe.src = scanner_sources_[rng.below(scanner_sources_.size())];
    probe.dst = util::Ipv4{static_cast<std::uint32_t>(rng.next())};
    probe.src_port = static_cast<std::uint16_t>(40000 + rng.below(20000));
    probe.dst_port = 853;
    probe.protocol = kProtoTcp;
    probe.packets = 1;
    probe.bytes = 60;
    probe.complete_session = false;
    probe.date = day;
    batch.push(probe);
  }
}

void BackboneModel::generate_day(
    const util::Date& day, const std::function<void(const RawFlow&)>& sink) const {
  // Record-at-a-time compatibility shim over the columnar generator: one
  // batch, replayed row by row, so the two entry points cannot drift.
  FlowBatch batch;
  generate_day_into(day, batch);
  for (std::size_t i = 0; i < batch.size(); ++i) sink(batch.row(i));
}

void BackboneModel::generate(const std::function<void(const RawFlow&)>& sink) {
  for (util::Date day = config_.start; day < config_.end; day = day.plus_days(1))
    generate_day(day, sink);
}

}  // namespace encdns::traffic
