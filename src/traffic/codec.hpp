// Byte codec for §5 traffic results (DESIGN.md §13): NetFlow study results,
// the day-sharded NetFlow accumulator internals (scan detector), and the
// passive-DNS stores.
#pragma once

#include "traffic/flow_batch.hpp"
#include "traffic/hll.hpp"
#include "traffic/netflow_study.hpp"
#include "traffic/passive_dns.hpp"
#include "traffic/scan_detector.hpp"
#include "traffic/trend_study.hpp"
#include "util/bytes.hpp"

namespace encdns::traffic {

void encode_monthly(util::ByteWriter& w,
                    const std::map<util::Date, std::uint64_t>& monthly);
[[nodiscard]] std::map<util::Date, std::uint64_t> decode_monthly(
    util::ByteReader& r);

void encode_netflow_results(util::ByteWriter& w,
                            const NetflowStudyResults& results);
[[nodiscard]] NetflowStudyResults decode_netflow_results(util::ByteReader& r);

void encode_detector(util::ByteWriter& w, const ScanDetector& detector);
void decode_detector(util::ByteReader& r, ScanDetector& detector);

void encode_passive_dns(util::ByteWriter& w,
                        const PassiveDnsStudyResults& results);
[[nodiscard]] PassiveDnsStudyResults decode_passive_dns(util::ByteReader& r);

// The adoption-scale records below use a checksummed envelope —
// `u8 version, u64 fnv1a(payload), blob payload` — so *any* torn tail,
// flipped bit, or version skew fails closed with CodecError instead of
// resurrecting a silently different sketch or column (DESIGN.md §16).
inline constexpr std::uint8_t kHllCodecVersion = 1;
inline constexpr std::uint8_t kFlowBatchCodecVersion = 1;
inline constexpr std::uint8_t kTrendCodecVersion = 1;

void encode_hll(util::ByteWriter& w, const Hll& sketch);
[[nodiscard]] Hll decode_hll(util::ByteReader& r);

void encode_flow_batch(util::ByteWriter& w, const FlowBatch& batch);
[[nodiscard]] FlowBatch decode_flow_batch(util::ByteReader& r);

void encode_trend_results(util::ByteWriter& w, const TrendStudyResults& results);
[[nodiscard]] TrendStudyResults decode_trend_results(util::ByteReader& r);

}  // namespace encdns::traffic
