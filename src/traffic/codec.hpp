// Byte codec for §5 traffic results (DESIGN.md §13): NetFlow study results,
// the day-sharded NetFlow accumulator internals (scan detector), and the
// passive-DNS stores.
#pragma once

#include "traffic/netflow_study.hpp"
#include "traffic/passive_dns.hpp"
#include "traffic/scan_detector.hpp"
#include "util/bytes.hpp"

namespace encdns::traffic {

void encode_monthly(util::ByteWriter& w,
                    const std::map<util::Date, std::uint64_t>& monthly);
[[nodiscard]] std::map<util::Date, std::uint64_t> decode_monthly(
    util::ByteReader& r);

void encode_netflow_results(util::ByteWriter& w,
                            const NetflowStudyResults& results);
[[nodiscard]] NetflowStudyResults decode_netflow_results(util::ByteReader& r);

void encode_detector(util::ByteWriter& w, const ScanDetector& detector);
void decode_detector(util::ByteReader& r, ScanDetector& detector);

void encode_passive_dns(util::ByteWriter& w,
                        const PassiveDnsStudyResults& results);
[[nodiscard]] PassiveDnsStudyResults decode_passive_dns(util::ByteReader& r);

}  // namespace encdns::traffic
