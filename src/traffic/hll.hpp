// HyperLogLog distinct-value sketches for the traffic layer (DESIGN.md §16).
//
// The adoption-scale NetFlow engine counts distinct clients over multi-year
// horizons; exact std::set tracking would grow with the client population and
// break the fixed-memory contract. A HyperLogLog register file is a constant
// 2^p bytes regardless of cardinality, and two sketches built from the same
// (precision, seed) merge by per-register max — so exec shards can sketch
// their day ranges independently and the canonical ascending-shard merge
// reproduces the single-threaded register file bit for bit.
//
// Determinism rules:
//  - hashing is seed-keyed mix64, no std::hash, no address-dependent state;
//  - merge is a pure register max, commutative and associative, so any
//    merge tree over the same shard set yields identical registers;
//  - estimate() depends only on the registers, so thread count can never
//    change a reported count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace encdns::traffic {

/// Seed-keyed HyperLogLog with the standard bias-corrected estimator and
/// linear-counting small-range correction (no large-range correction: the
/// 64-bit hash space makes collisions at measurable scale negligible).
class Hll {
 public:
  static constexpr int kMinPrecision = 4;
  static constexpr int kMaxPrecision = 16;
  /// p=14 → m=16384 registers, σ ≈ 1.04/√m ≈ 0.81% relative error.
  static constexpr int kDefaultPrecision = 14;
  static constexpr std::uint64_t kDefaultSeed = 0x5EED0DD5ULL;

  explicit Hll(int precision = kDefaultPrecision,
               std::uint64_t seed = kDefaultSeed);

  /// Fold one value into the sketch. Adding the same value twice is a no-op
  /// on the registers (rank max), which is what makes self-merge idempotent.
  void add(std::uint64_t value) noexcept;

  /// Bias-corrected cardinality estimate.
  [[nodiscard]] double estimate() const noexcept;
  /// `estimate()` rounded to the nearest integer (what reports print).
  [[nodiscard]] std::uint64_t estimate_u64() const noexcept;

  /// Per-register max. Throws std::invalid_argument if the sketches were
  /// built with different precision or hash seed — merging those would
  /// silently produce garbage counts.
  void merge(const Hll& other);

  /// Zero every register (capacity untouched): the day-retirement loop
  /// reuses one day sketch across the whole horizon.
  void clear() noexcept;

  /// One-sigma relative error of the estimator at this precision.
  [[nodiscard]] double relative_error_bound() const noexcept;

  [[nodiscard]] int precision() const noexcept { return precision_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::size_t register_count() const noexcept {
    return registers_.size();
  }
  [[nodiscard]] const std::vector<std::uint8_t>& registers() const noexcept {
    return registers_;
  }
  /// Codec restore path: replaces the register file. Throws
  /// std::invalid_argument if the size does not match 2^precision.
  void restore_registers(std::vector<std::uint8_t> registers);

  /// Bytes of live state (the register file); used by the streaming engine's
  /// deterministic peak-memory accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return registers_.size();
  }

  [[nodiscard]] bool operator==(const Hll& other) const noexcept {
    return precision_ == other.precision_ && seed_ == other.seed_ &&
           registers_ == other.registers_;
  }

 private:
  int precision_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace encdns::traffic
