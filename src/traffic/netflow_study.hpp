// The §5.2 DoT traffic analysis: run the backbone model through the NetFlow
// collector, select TCP/853 records, exclude single-SYN records, match the
// destination against the §3 resolver list, truncate clients to their /24
// (ethics), and aggregate into Figure 11 (monthly flows per resolver) and
// Figure 12 (per-netblock share and active time).
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/checkpoint_hook.hpp"
#include "exec/executor.hpp"
#include "traffic/backbone.hpp"
#include "traffic/hll.hpp"
#include "traffic/netflow.hpp"
#include "traffic/scan_detector.hpp"
#include "util/date.hpp"

namespace encdns::traffic {

struct NetflowStudyConfig {
  BackboneConfig backbone;
  double sampling_rate = 1.0 / 3000.0;
  std::uint64_t seed = 37;
  /// Worker threads for the day-sharded aggregation; 0 = auto (ENCDNS_THREADS
  /// env or hardware_concurrency). Results are identical for every value.
  unsigned thread_count = 0;
  /// Cooperative cancellation + group-boundary checkpointing (DESIGN.md §13):
  /// the 16 day-range shards run as 4 sequential groups of 4; the study saves
  /// its accumulator after every non-final group and a tripped token cuts on
  /// an executed-shard prefix. Both optional.
  exec::CancelToken* cancel = nullptr;
  exec::CheckpointHook* checkpoint = nullptr;
  /// Shared worker pool (task-graph mode); null = private pool.
  exec::WorkerPool* pool = nullptr;
};

struct NetblockStat {
  util::Ipv4 slash24;
  std::uint64_t records = 0;
  int active_days = 0;  // days with at least one sampled DoT record
  util::Date first_seen;
  util::Date last_seen;
};

struct NetflowStudyResults {
  /// Monthly sampled DoT flow counts per resolver (Figure 11). Keyed by the
  /// first day of the month.
  std::map<util::Date, std::uint64_t> cloudflare_monthly;
  std::map<util::Date, std::uint64_t> quad9_monthly;

  /// Estimated monthly sampled traditional-DNS records (for the
  /// orders-of-magnitude comparison; computed analytically from the model's
  /// Do53:DoT ratio rather than by simulating billions of flows).
  std::map<util::Date, double> do53_monthly_estimate;

  std::uint64_t total_dot_records = 0;
  std::uint64_t excluded_single_syn = 0;
  std::uint64_t unmatched_853_records = 0;  // port 853 but not a known resolver

  /// Per-/24 statistics, sorted by record count descending (Figure 12).
  std::vector<NetblockStat> netblocks;

  /// Scanner-verification outcome: how many observed DoT client /24s the
  /// NetworkScan-Mon-style detector flags (the paper found none).
  std::size_t flagged_client_blocks = 0;

  /// Streaming distinct-client estimate: a seed-keyed HyperLogLog sketch
  /// (DESIGN.md §16) fed the same /24s as `netblocks`, merged across day
  /// shards. `netblocks.size()` is the exact count it is validated against;
  /// at adoption scale the trend engine reports only the sketch.
  std::uint64_t distinct_block_estimate = 0;

  /// Coverage accounting (DESIGN.md §13): simulated days planned vs actually
  /// aggregated; they differ only when a deadline cancelled tail day-shards.
  std::size_t days_planned = 0;
  std::size_t days_processed = 0;

  [[nodiscard]] double top_share(std::size_t k) const;
  /// Fraction of client netblocks active fewer than `days` days.
  [[nodiscard]] double short_lived_block_fraction(int days) const;
  /// Fraction of DoT records originating from those short-lived blocks.
  [[nodiscard]] double short_lived_traffic_share(int days) const;
};

class NetflowStudy {
 public:
  /// `resolver_addresses` is the DoT resolver list built in §3 (address ->
  /// resolver label, e.g. "cloudflare"/"quad9").
  NetflowStudy(NetflowStudyConfig config,
               std::unordered_map<std::uint32_t, std::string> resolver_addresses);

  [[nodiscard]] NetflowStudyResults run();

 private:
  NetflowStudyConfig config_;
  std::unordered_map<std::uint32_t, std::string> resolvers_;
};

/// Convenience: the resolver list for the two big DoT targets.
[[nodiscard]] std::unordered_map<std::uint32_t, std::string>
big_resolver_address_list();

}  // namespace encdns::traffic
