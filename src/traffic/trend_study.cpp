#include "traffic/trend_study.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "exec/executor.hpp"
#include "obs/span.hpp"
#include "traffic/codec.hpp"
#include "traffic/netflow.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace encdns::traffic {

namespace {

// Fixed day-range partition, like NetflowStudy: 16 shards run as 4
// sequential groups of 4. Shard count is part of the deterministic contract
// and never tracks the thread count; group boundaries are where checkpoints
// land and cancellation is honored.
constexpr std::size_t kTrendShards = 16;
constexpr std::size_t kGroupShards = 4;
static_assert(kTrendShards % kGroupShards == 0);
constexpr std::size_t kGroups = kTrendShards / kGroupShards;

// Fixed overhead charged per live month accumulator in the deterministic
// memory accounting (counters + map node, excluding the sketch registers).
constexpr std::uint64_t kMonthAggFixedBytes = 64;

/// Bounded per-month accumulator: a retired day folds into this and is gone.
struct MonthAgg {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  Hll clients;
  std::unordered_set<std::uint32_t> exact;  // validate_exact only

  MonthAgg(int precision, std::uint64_t seed) : clients(precision, seed) {}
};

/// Keyed by month_start().to_days(); std::map so iteration is ascending.
using MonthMap = std::map<std::int64_t, MonthAgg>;

[[nodiscard]] std::uint64_t months_tracked_bytes(
    const std::vector<MonthMap>& provider_months) {
  std::uint64_t bytes = 0;
  for (const auto& months : provider_months) {
    for (const auto& [key, agg] : months) {
      bytes += kMonthAggFixedBytes + agg.clients.memory_bytes() +
               static_cast<std::uint64_t>(agg.exact.size()) * 16;
    }
  }
  return bytes;
}

MonthAgg& month_slot(MonthMap& months, std::int64_t key, int precision,
                     std::uint64_t seed) {
  const auto it = months.find(key);
  if (it != months.end()) return it->second;
  return months.emplace(key, MonthAgg(precision, seed)).first->second;
}

}  // namespace

const char* adoption_event_kind_label(AdoptionEvent::Kind kind) noexcept {
  switch (kind) {
    case AdoptionEvent::Kind::kProviderLaunch:
      return "launch";
    case AdoptionEvent::Kind::kBrowserDefault:
      return "browser-default";
    case AdoptionEvent::Kind::kCensorship:
      return "censorship";
  }
  return "unknown";
}

std::vector<TrendProvider> default_trend_providers() {
  std::vector<TrendProvider> providers;
  {
    TrendProvider p;
    p.name = "quad9";
    p.resolver = util::Ipv4{9, 9, 9, 9};
    p.dst_port = 853;  // DoT
    p.launch = util::Date{2017, 11, 1};
    p.base_daily_flows = 500.0;
    p.monthly_growth = 1.025;
    p.client_space = 500'000;
    p.client_churn_per_day = 300.0;
    p.address_base = util::Ipv4{10, 0, 0, 0}.value();
    providers.push_back(p);
  }
  {
    TrendProvider p;
    p.name = "cloudflare";
    p.resolver = util::Ipv4{1, 1, 1, 1};
    p.dst_port = 443;  // DoH
    p.launch = util::Date{2018, 4, 1};
    p.base_daily_flows = 800.0;
    p.monthly_growth = 1.05;
    p.client_space = 3'000'000;
    p.client_churn_per_day = 2000.0;
    p.address_base = util::Ipv4{26, 0, 0, 0}.value();
    providers.push_back(p);
  }
  {
    TrendProvider p;
    p.name = "google";
    p.resolver = util::Ipv4{8, 8, 8, 8};
    p.dst_port = 443;
    p.launch = util::Date{2019, 1, 9};
    p.base_daily_flows = 600.0;
    p.monthly_growth = 1.06;
    p.client_space = 1'500'000;
    p.client_churn_per_day = 1200.0;
    p.address_base = util::Ipv4{42, 0, 0, 0}.value();
    providers.push_back(p);
  }
  {
    TrendProvider p;
    p.name = "nextdns";
    p.resolver = util::Ipv4{45, 90, 28, 0};
    p.dst_port = 443;
    p.launch = util::Date{2019, 5, 1};
    p.base_daily_flows = 150.0;
    p.monthly_growth = 1.09;
    p.client_space = 200'000;
    p.client_churn_per_day = 150.0;
    p.address_base = util::Ipv4{58, 0, 0, 0}.value();
    providers.push_back(p);
  }
  return providers;
}

std::vector<AdoptionEvent> default_adoption_events() {
  std::vector<AdoptionEvent> events;
  for (const auto& provider : default_trend_providers()) {
    AdoptionEvent launch;
    launch.kind = AdoptionEvent::Kind::kProviderLaunch;
    launch.provider = provider.name;
    launch.from = provider.launch;
    launch.multiplier = 1.0;
    launch.label = provider.name + " service launch";
    events.push_back(launch);
  }
  {
    AdoptionEvent firefox;
    firefox.kind = AdoptionEvent::Kind::kBrowserDefault;
    firefox.provider = "cloudflare";
    firefox.from = util::Date{2020, 2, 25};
    firefox.multiplier = 2.2;
    firefox.label = "Firefox enables DoH by default (US)";
    events.push_back(firefox);
  }
  {
    AdoptionEvent chrome;
    chrome.kind = AdoptionEvent::Kind::kBrowserDefault;
    chrome.provider = "";  // same-provider upgrade lifts everyone
    chrome.from = util::Date{2020, 5, 19};
    chrome.multiplier = 1.25;
    chrome.label = "Chrome 83 same-provider DoH auto-upgrade";
    events.push_back(chrome);
  }
  {
    AdoptionEvent blocking;
    blocking.kind = AdoptionEvent::Kind::kCensorship;
    blocking.provider = "cloudflare";
    blocking.from = util::Date{2019, 11, 1};
    blocking.to = util::Date{2020, 2, 1};
    blocking.multiplier = 0.45;
    blocking.label = "state-level blocking window";
    events.push_back(blocking);
  }
  return events;
}

const TrendMonth* TrendProviderSeries::month(
    const util::Date& month_start) const {
  for (const auto& m : monthly)
    if (m.month == month_start) return &m;
  return nullptr;
}

const TrendProviderSeries* TrendStudyResults::provider(
    const std::string& name) const {
  for (const auto& series : providers)
    if (series.name == name) return &series;
  return nullptr;
}

std::uint64_t TrendStudyResults::clients_estimated_total() const {
  std::uint64_t total = 0;
  for (const auto& series : providers) total += series.clients_estimated;
  return total;
}

TrendStudy::TrendStudy(TrendStudyConfig config)
    : config_(std::move(config)),
      providers_(config_.providers.empty() ? default_trend_providers()
                                           : config_.providers),
      events_(config_.events.empty() ? default_adoption_events()
                                     : config_.events) {}

double TrendStudy::daily_rate(const TrendProvider& provider,
                              const util::Date& day) const {
  if (day < provider.launch) return 0.0;
  const int m = util::months_between(provider.launch, day);
  double rate = provider.base_daily_flows * std::pow(provider.monthly_growth, m);
  for (const auto& event : events_) {
    if (!event.provider.empty() && event.provider != provider.name) continue;
    if (!day.in_window(event.from, event.to)) continue;
    rate *= event.multiplier;
  }
  // Mild deterministic day noise, keyed by (seed, day, provider).
  const std::uint64_t h =
      util::mix64(config_.seed ^ 0x7E4DULL ^
                  static_cast<std::uint64_t>(day.to_days()) * 0x9E3779B9ULL ^
                  util::fnv1a(provider.name));
  rate *= 0.94 + 0.12 * static_cast<double>(h % 1000) / 1000.0;
  return rate * config_.scale;
}

TrendStudyResults TrendStudy::run() {
  OBS_SPAN("traffic.trend");
  TrendStudyResults results;
  results.hll_precision = config_.hll_precision;
  results.events = events_;
  // All sketches of a run share (precision, seed), so any pair of them —
  // day into month, shard into shard, month into provider total — merges.
  const std::uint64_t sketch_seed = util::mix64(config_.seed ^ 0x5CE7ULL);

  const std::int64_t total_days =
      util::days_between(config_.start, config_.end);
  const auto n_days = static_cast<std::size_t>(total_days > 0 ? total_days : 0);
  results.days_planned = n_days;

  // Persistent accumulator, folded group by group in canonical shard order.
  std::vector<MonthMap> provider_months(providers_.size());
  FlowBatch sample;
  std::uint64_t total_records = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t peak_tracked = 0;
  std::size_t groups_done = 0;

  if (config_.checkpoint != nullptr) {
    if (const auto state = config_.checkpoint->load()) {
      util::ByteReader r(*state);
      groups_done = static_cast<std::size_t>(r.u64());
      results.days_processed = static_cast<std::size_t>(r.u64());
      total_records = r.u64();
      total_bytes = r.u64();
      peak_tracked = r.u64();
      sample = decode_flow_batch(r);
      const std::uint32_t n_providers = r.count(4);
      if (n_providers != providers_.size()) {
        throw util::CodecError("trend checkpoint: provider count mismatch");
      }
      for (std::size_t pi = 0; pi < providers_.size(); ++pi) {
        const std::uint32_t n_months = r.count(24);
        for (std::uint32_t j = 0; j < n_months; ++j) {
          const std::int64_t key = r.i64();
          const std::uint64_t records = r.u64();
          const std::uint64_t bytes = r.u64();
          Hll clients = decode_hll(r);
          MonthAgg agg(clients.precision(), clients.seed());
          agg.records = records;
          agg.bytes = bytes;
          agg.clients = std::move(clients);
          const std::uint32_t n_exact = r.count(4);
          for (std::uint32_t e = 0; e < n_exact; ++e) agg.exact.insert(r.u32());
          provider_months[pi].emplace(key, std::move(agg));
        }
      }
      r.expect_done();
    }
  }

  struct ShardPartial {
    std::vector<MonthMap> months;
    FlowBatch sample;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    std::uint64_t peak_tracked = 0;
  };

  std::optional<exec::WorkerPool> local_pool;
  exec::WorkerPool& pool = config_.pool != nullptr
                               ? *config_.pool
                               : local_pool.emplace(config_.thread_count);
  bool cancelled = config_.cancel != nullptr && config_.cancel->cancelled();
  for (std::size_t g = groups_done; g < kGroups && !cancelled; ++g) {
    std::vector<ShardPartial> partials(kGroupShards);
    const std::size_t base = g * kGroupShards;
    const std::size_t executed = pool.parallel_for_shards(
        kGroupShards,
        [&](std::size_t s) {
          const std::size_t shard = base + s;
          const auto [first, last] =
              exec::shard_range(n_days, kTrendShards, shard);
          ShardPartial& partial = partials[s];
          partial.months.resize(providers_.size());
          // Shard-local staging, reused for every (day, provider) chunk:
          // the batch's columns and the day sketch's registers are the only
          // per-record-scale state, and both are bounded.
          FlowBatch batch;
          batch.reserve(std::min<std::size_t>(config_.batch_rows, 1024));
          Hll day_sketch(config_.hll_precision, sketch_seed);
          std::unordered_set<std::uint32_t> day_exact;
          for (std::size_t d = first; d < last; ++d) {
            const util::Date day =
                config_.start.plus_days(static_cast<std::int64_t>(d));
            // One rng stream per day, a pure function of (seed, day):
            // independent of the shard layout and the thread count.
            util::Rng day_rng(
                util::mix64(config_.seed ^ 0x73E9DULL ^
                            static_cast<std::uint64_t>(day.to_days())));
            for (std::size_t pi = 0; pi < providers_.size(); ++pi) {
              const TrendProvider& provider = providers_[pi];
              const double rate = daily_rate(provider, day);
              if (rate <= 0.0) continue;
              std::uint64_t remaining = day_rng.poisson(rate);
              if (remaining == 0) continue;
              // Active-client window: width follows today's rate, position
              // slides with churn, bounded by the provider's address pool —
              // multi-year distinct clients without per-client state.
              const double width = std::clamp(
                  rate / provider.flows_per_client_day, 1.0,
                  static_cast<double>(std::max(provider.client_space, 1u)));
              const auto active = static_cast<std::uint64_t>(width);
              const double slide =
                  static_cast<double>(
                      util::days_between(provider.launch, day)) *
                  provider.client_churn_per_day * config_.scale;
              const std::uint64_t max_offset =
                  provider.client_space > active
                      ? provider.client_space - active
                      : 0;
              const auto offset = static_cast<std::uint32_t>(std::min(
                  static_cast<std::uint64_t>(slide), max_offset));
              day_sketch.clear();
              day_exact.clear();
              std::uint64_t day_records = 0;
              std::uint64_t day_bytes = 0;
              while (remaining > 0) {
                const std::size_t chunk = static_cast<std::size_t>(
                    std::min<std::uint64_t>(remaining, config_.batch_rows));
                batch.clear();
                for (std::size_t j = 0; j < chunk; ++j) {
                  RawFlow flow;
                  flow.src = util::Ipv4{
                      provider.address_base + offset +
                      static_cast<std::uint32_t>(day_rng.below(active))};
                  flow.dst = provider.resolver;
                  flow.src_port =
                      static_cast<std::uint16_t>(20000 + day_rng.below(40000));
                  flow.dst_port = provider.dst_port;
                  flow.protocol = kProtoTcp;
                  flow.packets =
                      static_cast<std::uint32_t>(6 + day_rng.below(50));
                  flow.bytes = static_cast<std::uint64_t>(flow.packets) *
                               (100 + day_rng.below(40));
                  flow.complete_session = true;
                  flow.date = day;
                  batch.push(flow);
                }
                // Columnar fold: the aggregation reads only the columns it
                // needs; no per-record object survives the chunk.
                day_records += batch.size();
                for (const std::uint64_t b : batch.bytes()) day_bytes += b;
                for (const std::uint32_t src : batch.src())
                  day_sketch.add(src);
                if (config_.validate_exact) {
                  for (const std::uint32_t src : batch.src())
                    day_exact.insert(src);
                }
                for (std::size_t i = 0;
                     i < batch.size() &&
                     partial.sample.size() < config_.sample_rows;
                     ++i) {
                  partial.sample.push(batch.row(i));
                }
                remaining -= chunk;
              }
              // Retire the provider-day into its month and forget it.
              MonthAgg& agg =
                  month_slot(partial.months[pi], day.month_start().to_days(),
                             config_.hll_precision, sketch_seed);
              agg.records += day_records;
              agg.bytes += day_bytes;
              agg.clients.merge(day_sketch);
              if (config_.validate_exact) {
                agg.exact.insert(day_exact.begin(), day_exact.end());
              }
              partial.records += day_records;
              partial.bytes += day_bytes;
            }
            // Deterministic live-state high-water mark, taken at day
            // boundaries: staging columns at capacity + the day sketch +
            // every live month accumulator on this shard.
            const std::uint64_t tracked =
                batch.capacity_bytes() + day_sketch.memory_bytes() +
                static_cast<std::uint64_t>(day_exact.size()) * 16 +
                months_tracked_bytes(partial.months);
            partial.peak_tracked = std::max(partial.peak_tracked, tracked);
          }
        },
        config_.cancel);

    for (std::size_t s = 0; s < executed; ++s) {  // canonical shard order
      ShardPartial& partial = partials[s];
      total_records += partial.records;
      total_bytes += partial.bytes;
      peak_tracked = std::max(peak_tracked, partial.peak_tracked);
      for (std::size_t pi = 0; pi < providers_.size(); ++pi) {
        if (partial.months.empty()) break;  // shard body never ran
        for (auto& [key, theirs] : partial.months[pi]) {
          MonthAgg& agg = month_slot(provider_months[pi], key,
                                     config_.hll_precision, sketch_seed);
          agg.records += theirs.records;
          agg.bytes += theirs.bytes;
          agg.clients.merge(theirs.clients);
          agg.exact.merge(theirs.exact);
        }
      }
      for (std::size_t i = 0;
           i < partial.sample.size() && sample.size() < config_.sample_rows;
           ++i) {
        sample.push(partial.sample.row(i));
      }
      const auto [first, last] =
          exec::shard_range(n_days, kTrendShards, base + s);
      results.days_processed += last - first;
    }
    peak_tracked =
        std::max(peak_tracked, months_tracked_bytes(provider_months));
    if (config_.cancel != nullptr &&
        (executed < kGroupShards || config_.cancel->cancelled()))
      cancelled = true;
    if (config_.checkpoint != nullptr && !cancelled && g + 1 < kGroups) {
      util::ByteWriter w;
      w.u64(g + 1);
      w.u64(results.days_processed);
      w.u64(total_records);
      w.u64(total_bytes);
      w.u64(peak_tracked);
      encode_flow_batch(w, sample);
      w.u32(static_cast<std::uint32_t>(providers_.size()));
      for (std::size_t pi = 0; pi < providers_.size(); ++pi) {
        w.u32(static_cast<std::uint32_t>(provider_months[pi].size()));
        for (const auto& [key, agg] : provider_months[pi]) {
          w.i64(key);
          w.u64(agg.records);
          w.u64(agg.bytes);
          encode_hll(w, agg.clients);
          std::vector<std::uint32_t> exact(agg.exact.begin(),
                                           agg.exact.end());
          std::sort(exact.begin(), exact.end());
          w.u32(static_cast<std::uint32_t>(exact.size()));
          for (const std::uint32_t addr : exact) w.u32(addr);
        }
      }
      config_.checkpoint->save(w.take());
    }
  }

  for (std::size_t pi = 0; pi < providers_.size(); ++pi) {
    TrendProviderSeries series;
    series.name = providers_[pi].name;
    Hll all_time(config_.hll_precision, sketch_seed);
    std::unordered_set<std::uint32_t> all_exact;
    for (const auto& [key, agg] : provider_months[pi]) {
      TrendMonth month;
      month.month = util::Date::from_days(key);
      month.records = agg.records;
      month.bytes = agg.bytes;
      month.clients_estimated = agg.clients.estimate_u64();
      month.clients_exact = agg.exact.size();
      series.monthly.push_back(month);
      series.total_records += agg.records;
      series.total_bytes += agg.bytes;
      all_time.merge(agg.clients);
      if (config_.validate_exact)
        all_exact.insert(agg.exact.begin(), agg.exact.end());
    }
    series.clients_estimated = all_time.estimate_u64();
    series.clients_exact = all_exact.size();
    results.providers.push_back(std::move(series));
  }
  results.total_records = total_records;
  results.total_bytes = total_bytes;
  results.peak_tracked_bytes = peak_tracked;
  results.sample = std::move(sample);

  auto& registry = obs::MetricsRegistry::global();
  registry.counter("traffic.trend.records").add(results.total_records);
  registry.counter("traffic.trend.bytes").add(results.total_bytes);
  registry.counter("traffic.trend.days").add(results.days_processed);
  registry.counter("traffic.trend.clients_estimated")
      .add(results.clients_estimated_total());
  registry.counter("traffic.trend.peak_tracked_bytes")
      .add(results.peak_tracked_bytes);
  return results;
}

}  // namespace encdns::traffic
