#include "traffic/netflow_v5.hpp"

#include <stdexcept>

namespace encdns::traffic {
namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

std::uint16_t get_u16(std::span<const std::uint8_t> data, std::size_t at) {
  return static_cast<std::uint16_t>((data[at] << 8) | data[at + 1]);
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t at) {
  return (static_cast<std::uint32_t>(get_u16(data, at)) << 16) |
         get_u16(data, at + 2);
}

}  // namespace

std::vector<std::uint8_t> encode_v5_packet(std::span<const FlowRecord> records,
                                           std::uint32_t flow_sequence,
                                           std::uint16_t sampling_interval) {
  if (records.size() > kV5MaxRecords)
    throw std::length_error("NetFlow v5 packets carry at most 30 records");
  std::vector<std::uint8_t> out;
  out.reserve(kV5HeaderSize + records.size() * kV5RecordSize);

  // Header. Export time: all records in our pipeline carry day-granular
  // dates; stamp the packet with the first record's midnight.
  const std::uint32_t unix_secs =
      records.empty() ? 0
                      : static_cast<std::uint32_t>(records[0].date.to_days() * 86400);
  put_u16(out, kV5Version);
  put_u16(out, static_cast<std::uint16_t>(records.size()));
  put_u32(out, 0);  // sys_uptime
  put_u32(out, unix_secs);
  put_u32(out, 0);  // unix_nsecs
  put_u32(out, flow_sequence);
  out.push_back(0);  // engine_type
  out.push_back(0);  // engine_id
  // Sampling mode (2 bits) = 1 (packet interval) | interval (14 bits).
  put_u16(out, static_cast<std::uint16_t>((1u << 14) |
                                          (sampling_interval & 0x3FFF)));

  for (const auto& record : records) {
    put_u32(out, record.src.value());
    put_u32(out, record.dst.value());
    put_u32(out, 0);  // nexthop
    put_u16(out, 0);  // input ifindex
    put_u16(out, 0);  // output ifindex
    put_u32(out, record.packets);
    put_u32(out, static_cast<std::uint32_t>(record.bytes));
    put_u32(out, 0);  // first (sysuptime)
    put_u32(out, 0);  // last
    put_u16(out, record.src_port);
    put_u16(out, record.dst_port);
    out.push_back(0);  // pad1
    out.push_back(record.tcp_flags);
    out.push_back(record.protocol);
    out.push_back(0);  // tos
    put_u16(out, 0);   // src_as
    put_u16(out, 0);   // dst_as
    out.push_back(24);  // src_mask: the pipeline anonymizes to /24
    out.push_back(32);  // dst_mask
    put_u16(out, 0);    // pad2
  }
  return out;
}

std::optional<V5Decoded> decode_v5_packet(std::span<const std::uint8_t> packet) {
  if (packet.size() < kV5HeaderSize) return std::nullopt;
  if (get_u16(packet, 0) != kV5Version) return std::nullopt;
  V5Decoded decoded;
  decoded.info.count = get_u16(packet, 2);
  decoded.info.unix_secs = get_u32(packet, 8);
  decoded.info.flow_sequence = get_u32(packet, 16);
  decoded.info.sampling_interval =
      static_cast<std::uint16_t>(get_u16(packet, 22) & 0x3FFF);
  if (decoded.info.count > kV5MaxRecords) return std::nullopt;
  if (packet.size() != kV5HeaderSize + decoded.info.count * kV5RecordSize)
    return std::nullopt;

  const util::Date date =
      util::Date::from_days(static_cast<std::int64_t>(decoded.info.unix_secs) / 86400);
  for (std::size_t i = 0; i < decoded.info.count; ++i) {
    const std::size_t at = kV5HeaderSize + i * kV5RecordSize;
    FlowRecord record;
    record.src = util::Ipv4{get_u32(packet, at)};
    record.dst = util::Ipv4{get_u32(packet, at + 4)};
    record.packets = get_u32(packet, at + 16);
    record.bytes = get_u32(packet, at + 20);
    record.src_port = get_u16(packet, at + 32);
    record.dst_port = get_u16(packet, at + 34);
    record.tcp_flags = packet[at + 37];
    record.protocol = packet[at + 38];
    record.date = date;
    decoded.records.push_back(record);
  }
  return decoded;
}

}  // namespace encdns::traffic
