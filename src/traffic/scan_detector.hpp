// A NetworkScan-Mon-style scan detector (§5.2): per source /24, track
// destination fan-out and the fraction of single-SYN (handshake-less) flows;
// a state-transition heuristic flags sources as scanners. Used to verify
// that observed DoT client networks are not measurement scanners.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "traffic/netflow.hpp"
#include "util/ipv4.hpp"

namespace encdns::traffic {

struct ScanDetectorConfig {
  std::size_t distinct_dst_threshold = 64;  // suspicious fan-out
  double syn_only_threshold = 0.8;          // of flows with no completed session
  std::size_t min_flows = 32;
};

class ScanDetector {
 public:
  explicit ScanDetector(ScanDetectorConfig config = {}) : config_(config) {}

  enum class State { kBenign, kSuspicious, kScanner };

  void observe(const RawFlow& flow);

  /// Fold another detector's per-source tallies into this one. Destination
  /// sets are united in sorted order before re-applying the cap, so the merge
  /// result does not depend on insertion order; states are recomputed from
  /// the merged tallies. Merging the per-shard detectors of a day-sharded
  /// run in canonical shard order yields a deterministic detector.
  void merge(const ScanDetector& other);

  [[nodiscard]] State state_of(util::Ipv4 src_slash24) const;
  [[nodiscard]] bool is_scanner(util::Ipv4 src_slash24) const {
    return state_of(src_slash24) == State::kScanner;
  }
  [[nodiscard]] std::vector<util::Ipv4> scanners() const;

  /// Checkpoint export: per-source tallies in ascending source order with
  /// sorted destination sets, so the serialized detector is canonical. The
  /// state is exported verbatim — promotions are sticky, so recomputing it
  /// from the tallies alone could demote a scanner whose single-SYN ratio
  /// later dipped below the threshold.
  struct ExportedSource {
    std::uint32_t src = 0;
    std::uint64_t flows = 0;
    std::uint64_t incomplete = 0;
    State state = State::kBenign;
    std::vector<std::uint32_t> dsts;  // sorted ascending
  };
  [[nodiscard]] std::vector<ExportedSource> export_sources() const;
  void restore_sources(const std::vector<ExportedSource>& sources);

 private:
  struct SourceStats {
    std::unordered_set<std::uint32_t> dsts;  // capped
    std::uint64_t flows = 0;
    std::uint64_t incomplete = 0;
    State state = State::kBenign;
  };

  ScanDetectorConfig config_;
  std::unordered_map<std::uint32_t, SourceStats> sources_;

  void update_state(SourceStats& stats) const;
};

}  // namespace encdns::traffic
