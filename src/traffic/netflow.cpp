#include "traffic/netflow.hpp"

namespace encdns::traffic {

std::optional<FlowRecord> NetflowCollector::observe(const RawFlow& flow) {
  return observe(flow, rng_);
}

std::optional<FlowRecord> NetflowCollector::observe(const RawFlow& flow,
                                                    util::Rng& rng) {
  ++seen_;
  if (flow.packets == 0) return std::nullopt;

  // First (SYN) and last (FIN) packets are sampled individually; the middle
  // of the flow is approximated with a Poisson draw at the sampling rate.
  const bool syn_sampled = flow.protocol == kProtoTcp && rng.chance(rate_);
  const bool fin_sampled = flow.protocol == kProtoTcp && flow.complete_session &&
                           flow.packets > 1 && rng.chance(rate_);
  const std::uint32_t middle =
      flow.packets > 2 ? flow.packets - 2 : 0;
  const auto middle_sampled =
      static_cast<std::uint32_t>(rng.poisson(static_cast<double>(middle) * rate_));

  std::uint32_t sampled = middle_sampled + (syn_sampled ? 1 : 0) +
                          (fin_sampled ? 1 : 0);
  if (flow.packets == 1 && flow.protocol == kProtoUdp)
    sampled = rng.chance(rate_) ? 1 : 0;
  if (sampled == 0) return std::nullopt;

  FlowRecord record;
  record.src = flow.src;
  record.dst = flow.dst;
  record.src_port = flow.src_port;
  record.dst_port = flow.dst_port;
  record.protocol = flow.protocol;
  record.packets = sampled;
  record.bytes = flow.bytes * sampled / flow.packets;
  record.date = flow.date;
  if (flow.protocol == kProtoTcp) {
    if (syn_sampled) record.tcp_flags |= tcpflags::kSyn;
    if (!flow.complete_session) {
      // A lone SYN probe never elicits data packets.
      record.tcp_flags = tcpflags::kSyn;
      record.packets = syn_sampled ? 1 : 0;
      if (record.packets == 0) return std::nullopt;
    } else {
      if (middle_sampled > 0)
        record.tcp_flags |= tcpflags::kAck | tcpflags::kPsh;
      if (fin_sampled) record.tcp_flags |= tcpflags::kFin | tcpflags::kAck;
      if (record.tcp_flags == 0) record.tcp_flags = tcpflags::kAck;
    }
  }
  ++exported_;
  return record;
}

}  // namespace encdns::traffic
