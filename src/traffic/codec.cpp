#include "traffic/codec.hpp"

#include <utility>

namespace encdns::traffic {

void encode_monthly(util::ByteWriter& w,
                    const std::map<util::Date, std::uint64_t>& monthly) {
  w.u32(static_cast<std::uint32_t>(monthly.size()));
  for (const auto& [month, count] : monthly) {
    w.i64(month.to_days());
    w.u64(count);
  }
}

std::map<util::Date, std::uint64_t> decode_monthly(util::ByteReader& r) {
  std::map<util::Date, std::uint64_t> monthly;
  const std::uint32_t n = r.count(16);
  for (std::uint32_t i = 0; i < n; ++i) {
    const util::Date month = util::Date::from_days(r.i64());
    monthly[month] = r.u64();
  }
  return monthly;
}

void encode_netflow_results(util::ByteWriter& w,
                            const NetflowStudyResults& results) {
  encode_monthly(w, results.cloudflare_monthly);
  encode_monthly(w, results.quad9_monthly);
  w.u32(static_cast<std::uint32_t>(results.do53_monthly_estimate.size()));
  for (const auto& [month, estimate] : results.do53_monthly_estimate) {
    w.i64(month.to_days());
    w.f64(estimate);
  }
  w.u64(results.total_dot_records);
  w.u64(results.excluded_single_syn);
  w.u64(results.unmatched_853_records);
  w.u64(results.flagged_client_blocks);
  w.u64(results.days_planned);
  w.u64(results.days_processed);
  w.u32(static_cast<std::uint32_t>(results.netblocks.size()));
  for (const auto& block : results.netblocks) {
    w.u32(block.slash24.value());
    w.u64(block.records);
    w.i64(block.active_days);
    w.i64(block.first_seen.to_days());
    w.i64(block.last_seen.to_days());
  }
}

NetflowStudyResults decode_netflow_results(util::ByteReader& r) {
  NetflowStudyResults results;
  results.cloudflare_monthly = decode_monthly(r);
  results.quad9_monthly = decode_monthly(r);
  const std::uint32_t n_do53 = r.count(16);
  for (std::uint32_t i = 0; i < n_do53; ++i) {
    const util::Date month = util::Date::from_days(r.i64());
    results.do53_monthly_estimate[month] = r.f64();
  }
  results.total_dot_records = r.u64();
  results.excluded_single_syn = r.u64();
  results.unmatched_853_records = r.u64();
  results.flagged_client_blocks = static_cast<std::size_t>(r.u64());
  results.days_planned = static_cast<std::size_t>(r.u64());
  results.days_processed = static_cast<std::size_t>(r.u64());
  const std::uint32_t n_blocks = r.count(8);
  results.netblocks.reserve(n_blocks);
  for (std::uint32_t i = 0; i < n_blocks; ++i) {
    NetblockStat block;
    block.slash24 = util::Ipv4{r.u32()};
    block.records = r.u64();
    block.active_days = static_cast<int>(r.i64());
    block.first_seen = util::Date::from_days(r.i64());
    block.last_seen = util::Date::from_days(r.i64());
    results.netblocks.push_back(block);
  }
  return results;
}

void encode_detector(util::ByteWriter& w, const ScanDetector& detector) {
  const auto sources = detector.export_sources();
  w.u32(static_cast<std::uint32_t>(sources.size()));
  for (const auto& source : sources) {
    w.u32(source.src);
    w.u64(source.flows);
    w.u64(source.incomplete);
    w.u8(static_cast<std::uint8_t>(source.state));
    w.u32(static_cast<std::uint32_t>(source.dsts.size()));
    for (const std::uint32_t dst : source.dsts) w.u32(dst);
  }
}

void decode_detector(util::ByteReader& r, ScanDetector& detector) {
  const std::uint32_t n = r.count(16);
  std::vector<ScanDetector::ExportedSource> sources;
  sources.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ScanDetector::ExportedSource source;
    source.src = r.u32();
    source.flows = r.u64();
    source.incomplete = r.u64();
    source.state = static_cast<ScanDetector::State>(r.u8());
    const std::uint32_t n_dsts = r.count(4);
    source.dsts.reserve(n_dsts);
    for (std::uint32_t j = 0; j < n_dsts; ++j) source.dsts.push_back(r.u32());
    sources.push_back(std::move(source));
  }
  detector.restore_sources(sources);
}

void encode_passive_dns(util::ByteWriter& w,
                        const PassiveDnsStudyResults& results) {
  const auto aggregates = results.aggregate_db.all();
  w.u32(static_cast<std::uint32_t>(aggregates.size()));
  for (const auto& aggregate : aggregates) {
    w.str(aggregate.domain);
    w.i64(aggregate.first_seen.to_days());
    w.i64(aggregate.last_seen.to_days());
    w.u64(aggregate.total_count);
  }
  const auto& daily = results.daily_db.data();
  w.u32(static_cast<std::uint32_t>(daily.size()));
  for (const auto& [domain, days] : daily) {
    w.str(domain);
    w.u32(static_cast<std::uint32_t>(days.size()));
    for (const auto& [day, count] : days) {
      w.i64(day);
      w.u64(count);
    }
  }
}

PassiveDnsStudyResults decode_passive_dns(util::ByteReader& r) {
  PassiveDnsStudyResults results;
  const std::uint32_t n_aggregates = r.count(16);
  std::vector<PdnsAggregate> aggregates;
  aggregates.reserve(n_aggregates);
  for (std::uint32_t i = 0; i < n_aggregates; ++i) {
    PdnsAggregate aggregate;
    aggregate.domain = r.str();
    aggregate.first_seen = util::Date::from_days(r.i64());
    aggregate.last_seen = util::Date::from_days(r.i64());
    aggregate.total_count = r.u64();
    aggregates.push_back(std::move(aggregate));
  }
  results.aggregate_db.restore(aggregates);
  std::map<std::string, std::map<std::int64_t, std::uint64_t>> daily;
  const std::uint32_t n_domains = r.count(8);
  for (std::uint32_t i = 0; i < n_domains; ++i) {
    std::string domain = r.str();
    auto& days = daily[domain];
    const std::uint32_t n_days = r.count(16);
    for (std::uint32_t j = 0; j < n_days; ++j) {
      const std::int64_t day = r.i64();
      days[day] = r.u64();
    }
  }
  results.daily_db.restore(std::move(daily));
  return results;
}

}  // namespace encdns::traffic
