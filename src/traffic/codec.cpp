#include "traffic/codec.hpp"

#include <utility>

namespace encdns::traffic {

void encode_monthly(util::ByteWriter& w,
                    const std::map<util::Date, std::uint64_t>& monthly) {
  w.u32(static_cast<std::uint32_t>(monthly.size()));
  for (const auto& [month, count] : monthly) {
    w.i64(month.to_days());
    w.u64(count);
  }
}

std::map<util::Date, std::uint64_t> decode_monthly(util::ByteReader& r) {
  std::map<util::Date, std::uint64_t> monthly;
  const std::uint32_t n = r.count(16);
  for (std::uint32_t i = 0; i < n; ++i) {
    const util::Date month = util::Date::from_days(r.i64());
    monthly[month] = r.u64();
  }
  return monthly;
}

void encode_netflow_results(util::ByteWriter& w,
                            const NetflowStudyResults& results) {
  encode_monthly(w, results.cloudflare_monthly);
  encode_monthly(w, results.quad9_monthly);
  w.u32(static_cast<std::uint32_t>(results.do53_monthly_estimate.size()));
  for (const auto& [month, estimate] : results.do53_monthly_estimate) {
    w.i64(month.to_days());
    w.f64(estimate);
  }
  w.u64(results.total_dot_records);
  w.u64(results.excluded_single_syn);
  w.u64(results.unmatched_853_records);
  w.u64(results.distinct_block_estimate);
  w.u64(results.flagged_client_blocks);
  w.u64(results.days_planned);
  w.u64(results.days_processed);
  w.u32(static_cast<std::uint32_t>(results.netblocks.size()));
  for (const auto& block : results.netblocks) {
    w.u32(block.slash24.value());
    w.u64(block.records);
    w.i64(block.active_days);
    w.i64(block.first_seen.to_days());
    w.i64(block.last_seen.to_days());
  }
}

NetflowStudyResults decode_netflow_results(util::ByteReader& r) {
  NetflowStudyResults results;
  results.cloudflare_monthly = decode_monthly(r);
  results.quad9_monthly = decode_monthly(r);
  const std::uint32_t n_do53 = r.count(16);
  for (std::uint32_t i = 0; i < n_do53; ++i) {
    const util::Date month = util::Date::from_days(r.i64());
    results.do53_monthly_estimate[month] = r.f64();
  }
  results.total_dot_records = r.u64();
  results.excluded_single_syn = r.u64();
  results.unmatched_853_records = r.u64();
  results.distinct_block_estimate = r.u64();
  results.flagged_client_blocks = static_cast<std::size_t>(r.u64());
  results.days_planned = static_cast<std::size_t>(r.u64());
  results.days_processed = static_cast<std::size_t>(r.u64());
  const std::uint32_t n_blocks = r.count(8);
  results.netblocks.reserve(n_blocks);
  for (std::uint32_t i = 0; i < n_blocks; ++i) {
    NetblockStat block;
    block.slash24 = util::Ipv4{r.u32()};
    block.records = r.u64();
    block.active_days = static_cast<int>(r.i64());
    block.first_seen = util::Date::from_days(r.i64());
    block.last_seen = util::Date::from_days(r.i64());
    results.netblocks.push_back(block);
  }
  return results;
}

void encode_detector(util::ByteWriter& w, const ScanDetector& detector) {
  const auto sources = detector.export_sources();
  w.u32(static_cast<std::uint32_t>(sources.size()));
  for (const auto& source : sources) {
    w.u32(source.src);
    w.u64(source.flows);
    w.u64(source.incomplete);
    w.u8(static_cast<std::uint8_t>(source.state));
    w.u32(static_cast<std::uint32_t>(source.dsts.size()));
    for (const std::uint32_t dst : source.dsts) w.u32(dst);
  }
}

void decode_detector(util::ByteReader& r, ScanDetector& detector) {
  const std::uint32_t n = r.count(16);
  std::vector<ScanDetector::ExportedSource> sources;
  sources.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ScanDetector::ExportedSource source;
    source.src = r.u32();
    source.flows = r.u64();
    source.incomplete = r.u64();
    source.state = static_cast<ScanDetector::State>(r.u8());
    const std::uint32_t n_dsts = r.count(4);
    source.dsts.reserve(n_dsts);
    for (std::uint32_t j = 0; j < n_dsts; ++j) source.dsts.push_back(r.u32());
    sources.push_back(std::move(source));
  }
  detector.restore_sources(sources);
}

void encode_passive_dns(util::ByteWriter& w,
                        const PassiveDnsStudyResults& results) {
  const auto aggregates = results.aggregate_db.all();
  w.u32(static_cast<std::uint32_t>(aggregates.size()));
  for (const auto& aggregate : aggregates) {
    w.str(aggregate.domain);
    w.i64(aggregate.first_seen.to_days());
    w.i64(aggregate.last_seen.to_days());
    w.u64(aggregate.total_count);
  }
  const auto& daily = results.daily_db.data();
  w.u32(static_cast<std::uint32_t>(daily.size()));
  for (const auto& [domain, days] : daily) {
    w.str(domain);
    w.u32(static_cast<std::uint32_t>(days.size()));
    for (const auto& [day, count] : days) {
      w.i64(day);
      w.u64(count);
    }
  }
}

PassiveDnsStudyResults decode_passive_dns(util::ByteReader& r) {
  PassiveDnsStudyResults results;
  const std::uint32_t n_aggregates = r.count(16);
  std::vector<PdnsAggregate> aggregates;
  aggregates.reserve(n_aggregates);
  for (std::uint32_t i = 0; i < n_aggregates; ++i) {
    PdnsAggregate aggregate;
    aggregate.domain = r.str();
    aggregate.first_seen = util::Date::from_days(r.i64());
    aggregate.last_seen = util::Date::from_days(r.i64());
    aggregate.total_count = r.u64();
    aggregates.push_back(std::move(aggregate));
  }
  results.aggregate_db.restore(aggregates);
  std::map<std::string, std::map<std::int64_t, std::uint64_t>> daily;
  const std::uint32_t n_domains = r.count(8);
  for (std::uint32_t i = 0; i < n_domains; ++i) {
    std::string domain = r.str();
    auto& days = daily[domain];
    const std::uint32_t n_days = r.count(16);
    for (std::uint32_t j = 0; j < n_days; ++j) {
      const std::int64_t day = r.i64();
      days[day] = r.u64();
    }
  }
  results.daily_db.restore(std::move(daily));
  return results;
}

namespace {

// Checksummed envelope shared by the adoption-scale codecs: version byte,
// FNV-1a of the payload, then the payload as a length-prefixed blob. Any
// single-byte corruption — version skew, checksum damage, a bad length, a
// payload flip — surfaces as CodecError before a field is trusted.
void write_envelope(util::ByteWriter& w, std::uint8_t version,
                    util::ByteWriter&& payload) {
  const std::vector<std::uint8_t> bytes = payload.take();
  w.u8(version);
  w.u64(util::fnv1a_bytes(bytes.data(), bytes.size()));
  w.blob(bytes);
}

[[nodiscard]] std::vector<std::uint8_t> read_envelope(util::ByteReader& r,
                                                      std::uint8_t version,
                                                      const char* what) {
  const std::uint8_t v = r.u8();
  if (v != version) {
    throw util::CodecError(std::string(what) + ": unsupported codec version " +
                           std::to_string(v));
  }
  const std::uint64_t checksum = r.u64();
  std::vector<std::uint8_t> payload = r.blob();
  if (util::fnv1a_bytes(payload.data(), payload.size()) != checksum) {
    throw util::CodecError(std::string(what) + ": payload checksum mismatch");
  }
  return payload;
}

}  // namespace

void encode_hll(util::ByteWriter& w, const Hll& sketch) {
  util::ByteWriter payload;
  payload.u8(static_cast<std::uint8_t>(sketch.precision()));
  payload.u64(sketch.seed());
  payload.blob(sketch.registers());
  write_envelope(w, kHllCodecVersion, std::move(payload));
}

Hll decode_hll(util::ByteReader& r) {
  const auto bytes = read_envelope(r, kHllCodecVersion, "hll");
  util::ByteReader p(bytes);
  const int precision = p.u8();
  if (precision < Hll::kMinPrecision || precision > Hll::kMaxPrecision) {
    throw util::CodecError("hll: precision out of range: " +
                           std::to_string(precision));
  }
  const std::uint64_t seed = p.u64();
  Hll sketch(precision, seed);
  auto registers = p.blob();
  if (registers.size() != sketch.register_count()) {
    throw util::CodecError("hll: register file size mismatch");
  }
  for (const std::uint8_t reg : registers) {
    // Ranks beyond the hash width cannot be produced by add(); reject them
    // so a corrupted register cannot skew every later estimate.
    if (reg > 64 - precision + 1) {
      throw util::CodecError("hll: register rank out of range");
    }
  }
  sketch.restore_registers(std::move(registers));
  p.expect_done();
  return sketch;
}

void encode_flow_batch(util::ByteWriter& w, const FlowBatch& batch) {
  util::ByteWriter payload;
  const auto n = static_cast<std::uint32_t>(batch.size());
  payload.u32(n);
  for (std::uint32_t i = 0; i < n; ++i) payload.u32(batch.src()[i]);
  for (std::uint32_t i = 0; i < n; ++i) payload.u32(batch.dst()[i]);
  for (std::uint32_t i = 0; i < n; ++i) payload.u16(batch.src_port()[i]);
  for (std::uint32_t i = 0; i < n; ++i) payload.u16(batch.dst_port()[i]);
  for (std::uint32_t i = 0; i < n; ++i) payload.u8(batch.protocol()[i]);
  for (std::uint32_t i = 0; i < n; ++i) payload.u32(batch.packets()[i]);
  for (std::uint32_t i = 0; i < n; ++i) payload.u64(batch.bytes()[i]);
  for (std::uint32_t i = 0; i < n; ++i) payload.u8(batch.complete()[i]);
  for (std::uint32_t i = 0; i < n; ++i)
    payload.u32(static_cast<std::uint32_t>(batch.day()[i]));
  write_envelope(w, kFlowBatchCodecVersion, std::move(payload));
}

FlowBatch decode_flow_batch(util::ByteReader& r) {
  const auto bytes = read_envelope(r, kFlowBatchCodecVersion, "flow_batch");
  util::ByteReader p(bytes);
  // Column-major like the wire layout above; rebuilt row by row through the
  // same push() the generators use.
  const std::uint32_t n = p.count(27);  // bytes per row across all columns
  std::vector<RawFlow> rows(n);
  for (std::uint32_t i = 0; i < n; ++i) rows[i].src = util::Ipv4{p.u32()};
  for (std::uint32_t i = 0; i < n; ++i) rows[i].dst = util::Ipv4{p.u32()};
  for (std::uint32_t i = 0; i < n; ++i) rows[i].src_port = p.u16();
  for (std::uint32_t i = 0; i < n; ++i) rows[i].dst_port = p.u16();
  for (std::uint32_t i = 0; i < n; ++i) rows[i].protocol = p.u8();
  for (std::uint32_t i = 0; i < n; ++i) rows[i].packets = p.u32();
  for (std::uint32_t i = 0; i < n; ++i) rows[i].bytes = p.u64();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t complete = p.u8();
    if (complete > 1) {
      throw util::CodecError("flow_batch: complete flag holds " +
                             std::to_string(complete));
    }
    rows[i].complete_session = complete == 1;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    rows[i].date =
        util::Date::from_days(static_cast<std::int32_t>(p.u32()));
  }
  p.expect_done();
  FlowBatch batch;
  batch.reserve(n);
  for (const RawFlow& row : rows) batch.push(row);
  return batch;
}

namespace {

void encode_event(util::ByteWriter& w, const AdoptionEvent& event) {
  w.u8(static_cast<std::uint8_t>(event.kind));
  w.str(event.provider);
  w.i64(event.from.to_days());
  w.i64(event.to.to_days());
  w.f64(event.multiplier);
  w.str(event.label);
}

[[nodiscard]] AdoptionEvent decode_event(util::ByteReader& r) {
  AdoptionEvent event;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(AdoptionEvent::Kind::kCensorship)) {
    throw util::CodecError("trend: unknown adoption event kind " +
                           std::to_string(kind));
  }
  event.kind = static_cast<AdoptionEvent::Kind>(kind);
  event.provider = r.str();
  event.from = util::Date::from_days(r.i64());
  event.to = util::Date::from_days(r.i64());
  event.multiplier = r.f64();
  event.label = r.str();
  return event;
}

}  // namespace

void encode_trend_results(util::ByteWriter& w,
                          const TrendStudyResults& results) {
  util::ByteWriter payload;
  payload.u64(results.total_records);
  payload.u64(results.total_bytes);
  payload.u8(static_cast<std::uint8_t>(results.hll_precision));
  payload.u64(results.days_planned);
  payload.u64(results.days_processed);
  payload.u64(results.peak_tracked_bytes);
  encode_flow_batch(payload, results.sample);
  payload.u32(static_cast<std::uint32_t>(results.events.size()));
  for (const auto& event : results.events) encode_event(payload, event);
  payload.u32(static_cast<std::uint32_t>(results.providers.size()));
  for (const auto& series : results.providers) {
    payload.str(series.name);
    payload.u64(series.total_records);
    payload.u64(series.total_bytes);
    payload.u64(series.clients_estimated);
    payload.u64(series.clients_exact);
    payload.u32(static_cast<std::uint32_t>(series.monthly.size()));
    for (const auto& month : series.monthly) {
      payload.i64(month.month.to_days());
      payload.u64(month.records);
      payload.u64(month.bytes);
      payload.u64(month.clients_estimated);
      payload.u64(month.clients_exact);
    }
  }
  write_envelope(w, kTrendCodecVersion, std::move(payload));
}

TrendStudyResults decode_trend_results(util::ByteReader& r) {
  const auto bytes = read_envelope(r, kTrendCodecVersion, "trend");
  util::ByteReader p(bytes);
  TrendStudyResults results;
  results.total_records = p.u64();
  results.total_bytes = p.u64();
  results.hll_precision = p.u8();
  results.days_planned = static_cast<std::size_t>(p.u64());
  results.days_processed = static_cast<std::size_t>(p.u64());
  results.peak_tracked_bytes = p.u64();
  results.sample = decode_flow_batch(p);
  const std::uint32_t n_events = p.count(27);
  results.events.reserve(n_events);
  for (std::uint32_t i = 0; i < n_events; ++i)
    results.events.push_back(decode_event(p));
  const std::uint32_t n_providers = p.count(40);
  results.providers.reserve(n_providers);
  for (std::uint32_t i = 0; i < n_providers; ++i) {
    TrendProviderSeries series;
    series.name = p.str();
    series.total_records = p.u64();
    series.total_bytes = p.u64();
    series.clients_estimated = p.u64();
    series.clients_exact = p.u64();
    const std::uint32_t n_months = p.count(40);
    series.monthly.reserve(n_months);
    for (std::uint32_t j = 0; j < n_months; ++j) {
      TrendMonth month;
      month.month = util::Date::from_days(p.i64());
      month.records = p.u64();
      month.bytes = p.u64();
      month.clients_estimated = p.u64();
      month.clients_exact = p.u64();
      series.monthly.push_back(month);
    }
    results.providers.push_back(std::move(series));
  }
  p.expect_done();
  return results;
}

}  // namespace encdns::traffic
