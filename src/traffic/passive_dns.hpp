// Passive DNS substrates for the §5.3 DoH usage analysis.
//
// DoH queries hide inside HTTPS, but each DoH service's hostname must be
// resolved (in clear text) before lookups — so passive DNS databases see the
// bootstrap queries. We model two collectors mirroring the paper's datasets:
// an aggregate store (DNSDB-like: first/last seen + total lookups, wide
// coverage) and a daily store (360-PassiveDNS-like: daily volumes, narrower
// coverage).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/date.hpp"
#include "util/rng.hpp"

namespace encdns::traffic {

/// Aggregate record, as DNSDB reports it.
struct PdnsAggregate {
  std::string domain;
  util::Date first_seen;
  util::Date last_seen;
  std::uint64_t total_count = 0;
};

/// DNSDB-like store: aggregates only.
class AggregatePassiveDns {
 public:
  void record(const std::string& domain, const util::Date& date,
              std::uint64_t count);

  [[nodiscard]] std::optional<PdnsAggregate> lookup(const std::string& domain) const;
  [[nodiscard]] std::vector<PdnsAggregate> all() const;

  /// Checkpoint restore: replace the store with the given aggregates.
  void restore(const std::vector<PdnsAggregate>& aggregates) {
    aggregates_.clear();
    for (const auto& aggregate : aggregates)
      aggregates_[aggregate.domain] = aggregate;
  }

 private:
  std::map<std::string, PdnsAggregate> aggregates_;
};

/// 360-like store: per-domain daily counts, monthly extraction.
class DailyPassiveDns {
 public:
  void record(const std::string& domain, const util::Date& date,
              std::uint64_t count);

  /// Monthly totals for one domain, keyed by month start.
  [[nodiscard]] std::map<util::Date, std::uint64_t> monthly_series(
      const std::string& domain) const;

  /// Checkpoint access: the per-domain day#-keyed counts, and wholesale
  /// replacement from a decoded copy.
  [[nodiscard]] const std::map<std::string, std::map<std::int64_t, std::uint64_t>>&
  data() const {
    return daily_;
  }
  void restore(std::map<std::string, std::map<std::int64_t, std::uint64_t>> data) {
    daily_ = std::move(data);
  }

 private:
  std::map<std::string, std::map<std::int64_t, std::uint64_t>> daily_;  // day# keyed
};

/// The bootstrap-query volume model: expected clear-text lookups per month
/// for each DoH hostname, following the adoption trends of Figure 13
/// (Google oldest and largest; Cloudflare boosted by the Firefox experiment;
/// CleanBrowsing growing ~10x Sep 2018 - Mar 2019; crypto.sx modest; the
/// remaining resolvers tiny). Volumes are post-cache: recursive resolvers
/// absorb most repeats, which is why passive DNS undercounts DoH usage.
class DohUsageModel {
 public:
  explicit DohUsageModel(std::uint64_t seed) : seed_(seed) {}

  /// Expected observed lookups of `domain` during the month of `month_start`.
  [[nodiscard]] double monthly_volume(const std::string& domain,
                                      const util::Date& month_start) const;

  /// Domains the model knows about (the 17 DoH hostnames).
  [[nodiscard]] static const std::vector<std::string>& domains();

 private:
  std::uint64_t seed_;
};

struct PassiveDnsStudyConfig {
  util::Date start{2016, 1, 1};
  util::Date end{2019, 5, 1};  // exclusive
  std::uint64_t seed = 41;
  /// DNSDB's wider resolver coverage relative to the daily store.
  double aggregate_coverage_factor = 4.0;
};

struct PassiveDnsStudyResults {
  AggregatePassiveDns aggregate_db;
  DailyPassiveDns daily_db;

  /// Domains with more than `threshold` total lookups in the aggregate DB.
  [[nodiscard]] std::vector<std::string> popular_domains(
      std::uint64_t threshold) const;
};

/// Populate both stores from the usage model.
[[nodiscard]] PassiveDnsStudyResults run_passive_dns_study(
    PassiveDnsStudyConfig config = {});

}  // namespace encdns::traffic
