#include "traffic/scan_detector.hpp"

#include <algorithm>
#include <utility>

namespace encdns::traffic {
namespace {
constexpr std::size_t kDstSetCap = 4096;
}

void ScanDetector::observe(const RawFlow& flow) {
  auto& stats = sources_[flow.src.slash24().value()];
  ++stats.flows;
  if (!flow.complete_session) ++stats.incomplete;
  if (stats.dsts.size() < kDstSetCap) stats.dsts.insert(flow.dst.value());
  update_state(stats);
}

void ScanDetector::merge(const ScanDetector& other) {
  for (const auto& [addr, theirs] : other.sources_) {
    auto& ours = sources_[addr];
    ours.flows += theirs.flows;
    ours.incomplete += theirs.incomplete;
    // Deterministic union under the cap: merge the two sets in sorted value
    // order so the survivors don't depend on which shard inserted first.
    if (ours.dsts.size() < kDstSetCap && !theirs.dsts.empty()) {
      std::vector<std::uint32_t> merged(ours.dsts.begin(), ours.dsts.end());
      merged.insert(merged.end(), theirs.dsts.begin(), theirs.dsts.end());
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      if (merged.size() > kDstSetCap) merged.resize(kDstSetCap);
      ours.dsts = std::unordered_set<std::uint32_t>(merged.begin(), merged.end());
    }
    ours.state = std::max(ours.state, theirs.state);
    update_state(ours);
  }
}

void ScanDetector::update_state(SourceStats& stats) const {
  if (stats.flows < config_.min_flows) return;
  const double incomplete_ratio =
      static_cast<double>(stats.incomplete) / static_cast<double>(stats.flows);
  const bool fanout = stats.dsts.size() >= config_.distinct_dst_threshold;
  // Benign -> Suspicious on fan-out; Suspicious -> Scanner once the flows
  // are also overwhelmingly handshake-less.
  if (!fanout) return;
  if (stats.state == State::kBenign) stats.state = State::kSuspicious;
  if (incomplete_ratio >= config_.syn_only_threshold) stats.state = State::kScanner;
}

ScanDetector::State ScanDetector::state_of(util::Ipv4 src_slash24) const {
  const auto it = sources_.find(src_slash24.slash24().value());
  return it == sources_.end() ? State::kBenign : it->second.state;
}

std::vector<ScanDetector::ExportedSource> ScanDetector::export_sources() const {
  std::vector<ExportedSource> out;
  out.reserve(sources_.size());
  for (const auto& [addr, stats] : sources_) {
    ExportedSource source;
    source.src = addr;
    source.flows = stats.flows;
    source.incomplete = stats.incomplete;
    source.state = stats.state;
    source.dsts.assign(stats.dsts.begin(), stats.dsts.end());
    std::sort(source.dsts.begin(), source.dsts.end());
    out.push_back(std::move(source));
  }
  std::sort(out.begin(), out.end(),
            [](const ExportedSource& a, const ExportedSource& b) {
              return a.src < b.src;
            });
  return out;
}

void ScanDetector::restore_sources(const std::vector<ExportedSource>& sources) {
  sources_.clear();
  for (const auto& source : sources) {
    auto& stats = sources_[source.src];
    stats.flows = source.flows;
    stats.incomplete = source.incomplete;
    stats.state = source.state;
    stats.dsts =
        std::unordered_set<std::uint32_t>(source.dsts.begin(), source.dsts.end());
  }
}

std::vector<util::Ipv4> ScanDetector::scanners() const {
  std::vector<util::Ipv4> out;
  for (const auto& [addr, stats] : sources_)
    if (stats.state == State::kScanner) out.push_back(util::Ipv4{addr});
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace encdns::traffic
