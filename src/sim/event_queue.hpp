// A minimal discrete-event scheduler. Used by the traffic substrate (flow
// expiry timers) and available for any component that needs ordered future
// work. Deterministic: ties are broken by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/duration.hpp"

namespace encdns::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time (ms since queue epoch).
  [[nodiscard]] Millis now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` after the current time.
  void schedule_in(Millis delay, Callback fn);

  /// Schedule `fn` at an absolute time (clamped to now if in the past).
  void schedule_at(Millis when, Callback fn);

  /// Run all events with time <= `until`, advancing now() to each event time,
  /// then to `until`. Events scheduled during execution are honored.
  void run_until(Millis until);

  /// Run until the queue drains. Returns the number of events executed.
  std::size_t run_all();

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

 private:
  struct Event {
    double when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Millis now_{0.0};
  std::uint64_t next_seq_ = 0;
};

}  // namespace encdns::sim
