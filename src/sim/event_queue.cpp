#include "sim/event_queue.hpp"

#include <utility>

namespace encdns::sim {

void EventQueue::schedule_in(Millis delay, Callback fn) {
  schedule_at(now_ + delay, std::move(fn));
}

void EventQueue::schedule_at(Millis when, Callback fn) {
  if (when < now_) when = now_;
  heap_.push(Event{when.value, next_seq_++, std::move(fn)});
}

void EventQueue::run_until(Millis until) {
  while (!heap_.empty() && heap_.top().when <= until.value) {
    // priority_queue::top() is const; move out via const_cast-free copy of the
    // callback is wasteful, so pop into a local first.
    Event ev = heap_.top();
    heap_.pop();
    now_ = Millis{ev.when};
    ev.fn();
  }
  if (until > now_) now_ = until;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    Event ev = heap_.top();
    heap_.pop();
    now_ = Millis{ev.when};
    ev.fn();
    ++executed;
  }
  return executed;
}

}  // namespace encdns::sim
