// Simulated-time units. All latencies in encdns are carried as Millis, a
// strong double-millisecond type, so latency arithmetic cannot be silently
// mixed with other scalars (counts, bytes, ...).
#pragma once

#include <compare>
#include <string>

namespace encdns::sim {

/// A span of simulated time in milliseconds.
struct Millis {
  double value = 0.0;

  constexpr Millis() = default;
  constexpr explicit Millis(double ms) noexcept : value(ms) {}

  [[nodiscard]] static constexpr Millis seconds(double s) noexcept {
    return Millis{s * 1000.0};
  }
  [[nodiscard]] constexpr double to_seconds() const noexcept { return value / 1000.0; }

  constexpr Millis& operator+=(Millis other) noexcept {
    value += other.value;
    return *this;
  }
  constexpr Millis& operator-=(Millis other) noexcept {
    value -= other.value;
    return *this;
  }
  constexpr Millis& operator*=(double k) noexcept {
    value *= k;
    return *this;
  }

  auto operator<=>(const Millis&) const = default;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] constexpr Millis operator+(Millis a, Millis b) noexcept {
  return Millis{a.value + b.value};
}
[[nodiscard]] constexpr Millis operator-(Millis a, Millis b) noexcept {
  return Millis{a.value - b.value};
}
[[nodiscard]] constexpr Millis operator*(Millis a, double k) noexcept {
  return Millis{a.value * k};
}
[[nodiscard]] constexpr Millis operator*(double k, Millis a) noexcept {
  return Millis{a.value * k};
}

namespace literals {
[[nodiscard]] constexpr Millis operator""_ms(long double v) noexcept {
  return Millis{static_cast<double>(v)};
}
[[nodiscard]] constexpr Millis operator""_ms(unsigned long long v) noexcept {
  return Millis{static_cast<double>(v)};
}
}  // namespace literals

}  // namespace encdns::sim
