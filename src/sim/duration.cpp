#include "sim/duration.hpp"

#include <cstdio>

namespace encdns::sim {

std::string Millis::to_string() const {
  char buf[32];
  if (value >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", value / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fms", value);
  }
  return buf;
}

}  // namespace encdns::sim
