// Per-thread scratch-buffer arenas for allocation-free hot paths.
//
// The query hot path (DESIGN.md §11) encodes every DNS message into a
// caller-owned buffer. Those buffers come from here: each thread — every
// exec::WorkerPool worker, plus whatever thread drives a serial run — owns a
// ScratchArena of warmed-up byte vectors that leases hand out and return.
// After the first few queries on a thread, every lease is a pop from the
// free list and re-uses a vector whose capacity already fits a framed DNS
// message, so steady-state encodes allocate nothing.
//
// Leases are reentrancy-safe by design: the simulated network delivers a
// query to the resolver service *inline* on the querying thread, so a client
// holding a lease for its query wire can trigger a service that leases a
// second buffer for the reply. A stack-discipline free list (acquire pops,
// release pushes) keeps the two leases on distinct buffers.
//
// Determinism: arenas affect only where bytes are staged, never their
// values, and are strictly thread-local — no cross-thread sharing, no
// ordering effects, so the exec-layer bit-identical-results contract is
// untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace encdns::exec {

/// A pool of reusable byte buffers owned by one thread. Not thread-safe —
/// access it only through `thread_arena()` (or a stack-local instance in
/// tests).
class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Lease a buffer (cleared, capacity preserved). Prefer BufferLease.
  [[nodiscard]] std::vector<std::uint8_t>* acquire();
  /// Return a buffer obtained from `acquire`.
  void release(std::vector<std::uint8_t>* buffer) noexcept;

  /// Buffers ever created (leases beyond the deepest nesting re-use).
  [[nodiscard]] std::size_t created() const noexcept { return buffers_.size(); }
  /// Buffers currently on the free list.
  [[nodiscard]] std::size_t available() const noexcept { return free_.size(); }

 private:
  std::vector<std::unique_ptr<std::vector<std::uint8_t>>> buffers_;
  std::vector<std::vector<std::uint8_t>*> free_;
};

/// The calling thread's arena.
[[nodiscard]] ScratchArena& thread_arena() noexcept;

/// RAII lease of one scratch buffer from an arena (the calling thread's by
/// default). The buffer arrives empty but warm; it returns to the arena's
/// free list on destruction.
class BufferLease {
 public:
  explicit BufferLease(ScratchArena& arena = thread_arena())
      : arena_(&arena), buffer_(arena.acquire()) {}
  ~BufferLease() { arena_->release(buffer_); }
  BufferLease(const BufferLease&) = delete;
  BufferLease& operator=(const BufferLease&) = delete;

  [[nodiscard]] std::vector<std::uint8_t>& operator*() noexcept { return *buffer_; }
  [[nodiscard]] std::vector<std::uint8_t>* operator->() noexcept { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t>* get() noexcept { return buffer_; }

 private:
  ScratchArena* arena_;
  std::vector<std::uint8_t>* buffer_;
};

}  // namespace encdns::exec
