// The seam between phase execution and the write-ahead journal
// (DESIGN.md §13). Phases do not know about files, checksums or commit
// sidecars; they see an opaque byte-blob store with exactly two operations.
// The core layer provides the implementation (core/checkpoint); tests use
// trivial in-memory hooks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace encdns::exec {

/// Per-phase persistence hook. `load()` is called once, before the phase
/// starts executing shards: a non-empty result is the phase-local state
/// saved by a previous (killed) run, and the phase resumes after the last
/// completed block instead of from scratch. `save()` is called at block
/// boundaries with the serialized state-so-far; the implementation must make
/// it durable before returning (write-ahead discipline).
class CheckpointHook {
 public:
  virtual ~CheckpointHook() = default;
  [[nodiscard]] virtual std::optional<std::vector<std::uint8_t>> load() = 0;
  virtual void save(const std::vector<std::uint8_t>& state) = 0;
};

}  // namespace encdns::exec
