// Cooperative cancellation for deadline-budgeted phase execution
// (DESIGN.md §13). A CancelToken never interrupts running work: it is
// *checked* — by WorkerPool at shard pickup and by the phase loops at block
// boundaries — so cancellation can only land on a shard boundary and the
// executed shards always form a prefix of the canonical shard order.
//
// Three triggers, with different determinism guarantees:
//   * manual cancel()                — deterministic if the caller is;
//   * sim-time budget                — DETERMINISTIC: the spent amount is
//     advanced only at serial merge points (spend_sim), so every worker
//     observes the same value for the whole parallel job and the same
//     blocks are cut at every thread count;
//   * wall-clock deadline            — inherently NONDETERMINISTIC; a run
//     degraded by a wall deadline reports its reduced coverage but does not
//     promise byte-identical output (the resume contract applies only to
//     non-degraded runs).
// Tokens can chain to a parent (the study-wide --deadline token), so a
// per-phase budget and the global deadline are checked together.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "sim/duration.hpp"

namespace encdns::exec {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Trip the token now. Idempotent; `reason` must be a string literal.
  void cancel(const char* reason = "cancelled") noexcept {
    trip(reason);
  }

  /// Wall-clock budget from now. Coverage-only degradation (see header note).
  void set_wall_budget(double seconds) noexcept {
    wall_deadline_ = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(seconds));
    has_wall_deadline_ = true;
  }

  /// Deterministic simulated-time budget, measured in sim::Millis spent.
  void set_sim_budget(sim::Millis budget) noexcept {
    sim_budget_us_ = static_cast<std::uint64_t>(budget.value * 1000.0);
    has_sim_budget_ = true;
  }

  /// Account simulated time. MUST be called from serial sections only (block
  /// merges), never from workers — that is what keeps the sim trigger
  /// deterministic at any thread count.
  void spend_sim(sim::Millis elapsed) noexcept {
    if (elapsed.value <= 0.0) return;
    sim_spent_us_.fetch_add(static_cast<std::uint64_t>(elapsed.value * 1000.0),
                            std::memory_order_relaxed);
  }

  /// Chain to a token checked in addition to this one (study-wide deadline).
  void set_parent(const CancelToken* parent) noexcept { parent_ = parent; }

  [[nodiscard]] bool cancelled() const noexcept {
    if (flag_.load(std::memory_order_relaxed)) return true;
    if (parent_ != nullptr && parent_->cancelled()) {
      trip("parent");
      return true;
    }
    if (has_sim_budget_ &&
        sim_spent_us_.load(std::memory_order_relaxed) >= sim_budget_us_) {
      trip("sim-budget");
      return true;
    }
    if (has_wall_deadline_ &&
        std::chrono::steady_clock::now() >= wall_deadline_) {
      trip("wall-deadline");
      return true;
    }
    return false;
  }

  /// Why the token tripped ("" while still live).
  [[nodiscard]] const char* reason() const noexcept {
    const char* r = reason_.load(std::memory_order_relaxed);
    return r == nullptr ? "" : r;
  }

 private:
  void trip(const char* reason) const noexcept {
    const char* expected = nullptr;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_relaxed);
    flag_.store(true, std::memory_order_relaxed);
  }

  mutable std::atomic<bool> flag_{false};
  mutable std::atomic<const char*> reason_{nullptr};
  const CancelToken* parent_ = nullptr;
  bool has_wall_deadline_ = false;
  std::chrono::steady_clock::time_point wall_deadline_{};
  bool has_sim_budget_ = false;
  std::uint64_t sim_budget_us_ = 0;
  std::atomic<std::uint64_t> sim_spent_us_{0};
};

}  // namespace encdns::exec
