#include "exec/graph.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace encdns::exec {

TaskGraph::NodeId TaskGraph::add(std::string name, std::function<void()> body,
                                 std::function<void()> merge,
                                 std::vector<NodeId> deps) {
  if (ran_) throw GraphError("TaskGraph: add() after run()");
  const NodeId id = nodes_.size();
  for (const NodeId dep : deps) {
    if (dep >= id)
      throw GraphError("TaskGraph: node \"" + name +
                       "\" depends on undeclared node");
  }
  // Dedup so a repeated dep releases exactly once.
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  Node node;
  node.name = std::move(name);
  node.body = std::move(body);
  node.merge = std::move(merge);
  node.deps = std::move(deps);
  nodes_.push_back(std::move(node));
  for (const NodeId dep : nodes_.back().deps)
    nodes_[dep].dependents.push_back(id);
  return id;
}

void TaskGraph::add_edge(NodeId before, NodeId after) {
  if (ran_) throw GraphError("TaskGraph: add_edge() after run()");
  if (before >= nodes_.size() || after >= nodes_.size())
    throw GraphError("TaskGraph: add_edge() on unknown node");
  if (before == after) throw GraphError("TaskGraph: self-edge");
  auto& deps = nodes_[after].deps;
  if (std::find(deps.begin(), deps.end(), before) != deps.end()) return;
  deps.push_back(before);
  nodes_[before].dependents.push_back(after);
}

TaskGraph::NodeStatus TaskGraph::status(NodeId id) const {
  if (id >= nodes_.size()) throw GraphError("TaskGraph: status() unknown node");
  return nodes_[id].status;
}

void TaskGraph::run() {
  if (ran_) throw GraphError("TaskGraph: run() twice");
  ran_ = true;

  // Fail closed on cycles: Kahn's algorithm must retire every node before
  // any body is allowed to start.
  {
    std::vector<std::size_t> unmet(nodes_.size());
    std::vector<NodeId> ready;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      unmet[id] = nodes_[id].deps.size();
      if (unmet[id] == 0) ready.push_back(id);
    }
    std::size_t retired = 0;
    while (!ready.empty()) {
      const NodeId id = ready.back();
      ready.pop_back();
      ++retired;
      for (const NodeId dep : nodes_[id].dependents)
        if (--unmet[dep] == 0) ready.push_back(dep);
    }
    if (retired != nodes_.size())
      throw GraphError("TaskGraph: dependency cycle detected");
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::thread> threads(nodes_.size());
  for (auto& node : nodes_) node.unmet = node.deps.size();

  const auto run_body = [&](NodeId id) {
    Node& node = nodes_[id];
    std::exception_ptr error;
    try {
      node.body();
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard lock(mutex);
    node.body_done = true;
    node.error = error;
    if (error) node.status = NodeStatus::kFailed;
    for (const NodeId dependent : node.dependents) --nodes_[dependent].unmet;
    cv.notify_all();
  };

  std::unique_lock lock(mutex);
  std::size_t frontier = 0;  // next node whose merge slot is due
  while (frontier < nodes_.size()) {
    // Launch every ready node; skip (and cascade) nodes whose dependencies
    // failed. The inner loop re-scans because a skip releases dependents.
    bool progress = true;
    while (progress) {
      progress = false;
      for (NodeId id = 0; id < nodes_.size(); ++id) {
        Node& node = nodes_[id];
        if (node.status != NodeStatus::kPending || node.unmet != 0) continue;
        const bool dep_bad = std::any_of(
            node.deps.begin(), node.deps.end(), [&](NodeId dep) {
              return nodes_[dep].status == NodeStatus::kFailed ||
                     nodes_[dep].status == NodeStatus::kSkipped;
            });
        if (dep_bad) {
          node.status = NodeStatus::kSkipped;
          node.body_done = true;
          for (const NodeId dependent : node.dependents)
            --nodes_[dependent].unmet;
          progress = true;
        } else {
          node.status = NodeStatus::kRunning;
          threads[id] = std::thread(run_body, id);
        }
      }
    }

    Node& due = nodes_[frontier];
    if (due.status == NodeStatus::kFailed && due.body_done) {
      ++frontier;  // merge skipped
      continue;
    }
    if (due.status == NodeStatus::kSkipped) {
      ++frontier;
      continue;
    }
    if (due.status == NodeStatus::kRunning && due.body_done &&
        due.error == nullptr) {
      // Body succeeded and every earlier merge has been handled: run this
      // node's merge on the driver thread, outside the lock.
      merge_order_.push_back(due.name);
      std::exception_ptr error;
      if (due.merge) {
        lock.unlock();
        try {
          due.merge();
        } catch (...) {
          error = std::current_exception();
        }
        lock.lock();
      }
      // Dependents were already released at body completion (the results
      // they need exist); a merge failure therefore does not skip them, it
      // only surfaces from run().
      due.error = error;
      due.status = error ? NodeStatus::kFailed : NodeStatus::kDone;
      ++frontier;
      continue;
    }
    cv.wait(lock);
  }
  lock.unlock();

  for (auto& thread : threads)
    if (thread.joinable()) thread.join();

  for (const auto& node : nodes_)
    if (node.error) std::rethrow_exception(node.error);
}

}  // namespace encdns::exec
