// Deterministic dependency-graph executor for the study pipeline.
//
// The paper's platform is intrinsically overlapping — ZMap sweeps, §4
// vantage fan-outs and §5 NetFlow aggregation are independent workloads —
// so running phases serially makes wall-clock the sum of phases instead of
// the critical path. A TaskGraph holds one node per phase (or phase shard):
// each node has a *body* that computes results and a *merge* that publishes
// them (journal commits, report assembly). Edges encode true data
// dependencies; everything else overlaps.
//
// The determinism contract (DESIGN.md §15) extends the WorkerPool's:
//   * node bodies only read completed dependencies and write node-local
//     state, deriving randomness from their own seeds — scheduling affects
//     wall time, never values;
//   * dependents are released when a dependency's BODY completes, which is
//     when its results exist — merges never gate the critical path;
//   * merges run one at a time on the driver thread in strict DECLARATION
//     order (a monotonic frontier), so journal commits and report rows land
//     in canonical order no matter which node finished first;
//   * a failed body skips its merge and transitively skips dependents;
//     independent nodes still run to completion, and the first failure in
//     declaration order is rethrown from run() — the same exception a
//     serial loop would have surfaced.
//
// Cycles fail closed: run() topologically sorts first and throws GraphError
// before any body starts.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace encdns::exec {

/// Malformed graph (unknown node id, cycle, reuse after run).
class GraphError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class TaskGraph {
 public:
  using NodeId = std::size_t;

  enum class NodeStatus {
    kPending,   // not started
    kRunning,   // body in flight
    kDone,      // body (and merge, if any) completed
    kFailed,    // body or merge threw
    kSkipped,   // a dependency failed or was skipped
  };

  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Declare a node. `body` runs on its own thread once every dependency's
  /// body has completed; `merge` (may be empty) runs later on the driver
  /// thread, serialized in declaration order. Declaration order is the
  /// graph's canonical order — declare nodes in the serial-equivalent
  /// sequence. `deps` may name any already-declared node; forward edges are
  /// added with add_edge().
  NodeId add(std::string name, std::function<void()> body,
             std::function<void()> merge = {}, std::vector<NodeId> deps = {});

  /// `after` will not start until `before`'s body completes.
  void add_edge(NodeId before, NodeId after);

  /// Execute the graph. Validates acyclicity first and throws GraphError
  /// before running anything if a cycle exists. Blocks until every node
  /// settles, then rethrows the first failed node's exception (declaration
  /// order). A TaskGraph runs at most once.
  void run();

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] NodeStatus status(NodeId id) const;
  /// Names of nodes whose merge slot was reached, in the order the driver
  /// processed them — by construction a subsequence of declaration order.
  [[nodiscard]] const std::vector<std::string>& merge_order() const noexcept {
    return merge_order_;
  }

 private:
  struct Node {
    std::string name;
    std::function<void()> body;
    std::function<void()> merge;
    std::vector<NodeId> deps;
    std::vector<NodeId> dependents;
    std::size_t unmet = 0;
    NodeStatus status = NodeStatus::kPending;
    bool body_done = false;
    std::exception_ptr error;
  };

  std::vector<Node> nodes_;
  std::vector<std::string> merge_order_;
  bool ran_ = false;
};

}  // namespace encdns::exec
