// Bounded in-flight accounting for decoupled transmit/receive loops
// (DESIGN.md §14). A CreditWindow is a token bucket: the transmit side
// acquires one credit per emitted probe, the receive side releases it when
// the response is classified (or drained on cancellation). The window is
// shard-local by construction — one instance per shard, touched by exactly
// one worker at a time — so it needs no atomics and stays deterministic.
//
// The release path is guarded: releasing with nothing in flight is counted
// (never silently absorbed) so the engine's "every credit released exactly
// once" invariant is testable instead of assumed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace encdns::exec {

class CreditWindow {
 public:
  explicit CreditWindow(std::size_t capacity) noexcept
      : capacity_(std::max<std::size_t>(capacity, 1)) {}

  /// Take one credit; false when the window is full (the caller must drain
  /// its receive queue to free a credit before transmitting more).
  [[nodiscard]] bool try_acquire() noexcept {
    if (in_flight_ >= capacity_) return false;
    ++in_flight_;
    high_water_ = std::max(high_water_, in_flight_);
    return true;
  }

  /// Return one credit. A release with nothing in flight is a double
  /// release — counted, not applied, so the imbalance is visible.
  void release() noexcept {
    if (in_flight_ == 0) {
      ++double_releases_;
      return;
    }
    --in_flight_;
  }

  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }
  [[nodiscard]] std::uint64_t double_releases() const noexcept {
    return double_releases_;
  }

 private:
  std::size_t capacity_;
  std::size_t in_flight_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t double_releases_ = 0;
};

}  // namespace encdns::exec
