#include "exec/executor.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace encdns::exec {

namespace {
// Deterministic job/task counters feed the PhaseProfiler; steal counts and
// queue occupancy depend on scheduling order, so they are diagnostic-only.
struct ExecMetrics {
  obs::Counter& jobs = obs::MetricsRegistry::global().counter("exec.jobs");
  obs::Counter& tasks = obs::MetricsRegistry::global().counter("exec.tasks");
  obs::Counter& steals =
      obs::MetricsRegistry::global().counter("exec.steals", true);
  obs::Gauge& queue_peak =
      obs::MetricsRegistry::global().gauge("exec.queue_peak", true);

  static ExecMetrics& get() {
    static ExecMetrics metrics;
    return metrics;
  }
};
}  // namespace

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  // env_positive_int throws util::EnvError on "fuor", "0", "-2", "4x" — a
  // misconfigured run must refuse to start, not silently fall back to the
  // hardware default (DESIGN.md §13).
  if (const auto env = util::env_positive_int("ENCDNS_THREADS"))
    return static_cast<unsigned>(*env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool parallelism_available() { return resolve_thread_count(0) > 1; }

std::pair<std::size_t, std::size_t> shard_range(std::size_t total,
                                                std::size_t shards,
                                                std::size_t shard) noexcept {
  if (shards == 0) return {0, total};
  const std::size_t base = total / shards;
  const std::size_t extra = total % shards;
  const std::size_t first = shard * base + std::min(shard, extra);
  const std::size_t size = base + (shard < extra ? 1 : 0);
  return {first, first + size};
}

// All pool and job state lives under one mutex; shards are claimed with the
// lock held and executed without it. Shards are coarse (a slice of an
// address sweep, a whole proxy session), so two brief critical sections per
// shard cost nothing next to the work itself, and the single-lock discipline
// keeps the pool trivially race-free.
//
// Several jobs may be queued at once — the task-graph executor submits from
// multiple node threads. Each Job lives on its submitter's stack; it sits in
// the FIFO queue only while it has unclaimed shards, and the submitter waits
// on the job's own condition variable until every participant has retired
// its claims. A worker's last touch of a finished job is the notify under
// the pool mutex, so the submitter cannot destroy the Job underneath it.
struct WorkerPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  const CancelToken* cancel = nullptr;  // may be null
  obs::PhaseTally* tally = nullptr;  // submitter's attribution at submit time
  std::size_t total = 0;      // shards in this job
  std::size_t next = 0;       // next unclaimed shard
  std::size_t remaining = 0;  // shards not yet retired
  std::size_t executed_shards = 0;  // shards actually run (not skipped)
  std::size_t active = 0;     // threads currently draining this job
  std::exception_ptr error;
  std::condition_variable cv_done;
};

struct WorkerPool::Impl {
  std::mutex mutex;
  std::condition_variable cv_work;
  std::vector<std::thread> threads;
  std::deque<Job*> queue;  // jobs with unclaimed shards, FIFO
  bool shutdown = false;

  /// Claim and run shards of `job` until none remain. Called and returns
  /// with `lock` held. After the first exception — or once the job's cancel
  /// token trips — later shards are still claimed and retired (so waits
  /// never hang) but are skipped, not executed. Because claims are handed
  /// out in increasing index order under the mutex and both conditions are
  /// monotonic, the executed shards always form a prefix of [0, total).
  /// `is_worker` distinguishes pool threads from the submitting thread for
  /// the (diagnostic) steal tally, which counts only shards actually run —
  /// a skipped claim is bookkeeping, not stolen work.
  void drain(Job& job, std::unique_lock<std::mutex>& lock, bool is_worker) {
    ++job.active;
    std::uint64_t ran = 0;
    while (job.next < job.total) {
      // Queue depth is sampled before the claim, so a fresh job of N shards
      // peaks at N, not N-1.
      ExecMetrics::get().queue_peak.set_max(
          static_cast<std::int64_t>(job.total - job.next));
      const std::size_t shard = job.next++;
      if (job.next == job.total) {
        const auto it = std::find(queue.begin(), queue.end(), &job);
        if (it != queue.end()) queue.erase(it);
      }
      const bool skip = job.error != nullptr ||
                        (job.cancel != nullptr && job.cancel->cancelled());
      if (!skip) {
        ++job.executed_shards;
        ++ran;
      }
      lock.unlock();
      std::exception_ptr thrown;
      if (!skip) {
        // Attribute the shard's metric activity to the submitting phase.
        obs::ScopedTally scope(job.tally);
        try {
          (*job.fn)(shard);
        } catch (...) {
          thrown = std::current_exception();
        }
      }
      lock.lock();
      if (thrown && !job.error) job.error = thrown;
      --job.remaining;
    }
    --job.active;
    if (job.remaining == 0 && job.active == 0) job.cv_done.notify_all();
    if (is_worker && ran > 0) ExecMetrics::get().steals.add(ran);
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      cv_work.wait(lock, [&] { return shutdown || !queue.empty(); });
      if (shutdown) return;
      drain(*queue.front(), lock, /*is_worker=*/true);
    }
  }
};

WorkerPool::WorkerPool(unsigned threads)
    : thread_count_(resolve_thread_count(threads)) {
  if (thread_count_ <= 1) return;
  impl_ = new Impl;
  impl_->threads.reserve(thread_count_ - 1);
  for (unsigned i = 0; i + 1 < thread_count_; ++i)
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
}

WorkerPool::~WorkerPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->cv_work.notify_all();
  for (auto& thread : impl_->threads) thread.join();
  delete impl_;
}

void WorkerPool::parallel_for_shards(
    std::size_t n_shards, const std::function<void(std::size_t)>& fn) {
  (void)parallel_for_shards(n_shards, fn, nullptr);
}

std::size_t WorkerPool::parallel_for_shards(
    std::size_t n_shards, const std::function<void(std::size_t)>& fn,
    const CancelToken* cancel) {
  if (n_shards == 0) return 0;
  ExecMetrics::get().jobs.add(1);
  ExecMetrics::get().tasks.add(n_shards);
  if (impl_ == nullptr || n_shards == 1) {
    std::size_t executed = 0;
    for (std::size_t shard = 0; shard < n_shards; ++shard) {
      if (cancel != nullptr && cancel->cancelled()) break;
      fn(shard);
      ++executed;
    }
    return executed;
  }
  Job job;
  job.fn = &fn;
  job.cancel = cancel;
  job.tally = obs::current_tally();
  job.total = n_shards;
  job.remaining = n_shards;
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->queue.push_back(&job);
  impl_->cv_work.notify_all();
  // The submitting thread pulls from its own job only, then waits until
  // every shard retired AND every participant left drain(): only then is it
  // safe to destroy the stack-resident Job (and `fn`).
  impl_->drain(job, lock, /*is_worker=*/false);
  job.cv_done.wait(lock,
                   [&] { return job.remaining == 0 && job.active == 0; });
  const std::size_t executed = job.executed_shards;
  if (job.error) {
    const std::exception_ptr error = job.error;
    lock.unlock();
    std::rethrow_exception(error);
  }
  return executed;
}

}  // namespace encdns::exec
