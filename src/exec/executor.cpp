#include "exec/executor.hpp"

#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace encdns::exec {

namespace {
// Deterministic job/task counters feed the PhaseProfiler; steal counts and
// queue occupancy depend on scheduling order, so they are diagnostic-only.
struct ExecMetrics {
  obs::Counter& jobs = obs::MetricsRegistry::global().counter("exec.jobs");
  obs::Counter& tasks = obs::MetricsRegistry::global().counter("exec.tasks");
  obs::Counter& steals =
      obs::MetricsRegistry::global().counter("exec.steals", true);
  obs::Gauge& queue_peak =
      obs::MetricsRegistry::global().gauge("exec.queue_peak", true);

  static ExecMetrics& get() {
    static ExecMetrics metrics;
    return metrics;
  }
};
}  // namespace

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  // env_positive_int throws util::EnvError on "fuor", "0", "-2", "4x" — a
  // misconfigured run must refuse to start, not silently fall back to the
  // hardware default (DESIGN.md §13).
  if (const auto env = util::env_positive_int("ENCDNS_THREADS"))
    return static_cast<unsigned>(*env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::pair<std::size_t, std::size_t> shard_range(std::size_t total,
                                                std::size_t shards,
                                                std::size_t shard) noexcept {
  if (shards == 0) return {0, total};
  const std::size_t base = total / shards;
  const std::size_t extra = total % shards;
  const std::size_t first = shard * base + std::min(shard, extra);
  const std::size_t size = base + (shard < extra ? 1 : 0);
  return {first, first + size};
}

// All job state lives under one mutex; shards are claimed with the lock held
// and executed without it. Shards are coarse (a slice of an address sweep, a
// whole proxy session), so two brief critical sections per shard cost nothing
// next to the work itself, and the single-lock discipline keeps the pool
// trivially race-free.
struct WorkerPool::Impl {
  std::mutex mutex;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::vector<std::thread> threads;

  std::uint64_t serial = 0;  // bumped per job so sleeping workers notice work
  const std::function<void(std::size_t)>* fn = nullptr;
  const CancelToken* cancel = nullptr;  // current job's token (may be null)
  std::size_t total = 0;      // shards in the current job
  std::size_t next = 0;       // next unclaimed shard
  std::size_t remaining = 0;  // shards not yet retired
  std::size_t executed_shards = 0;  // shards actually run (not skipped)
  std::size_t active = 0;     // threads currently inside drain()
  std::exception_ptr error;
  bool shutdown = false;

  /// Claim and run shards until none remain. Called and returns with `lock`
  /// held. After the first exception — or once the job's cancel token trips —
  /// later shards are still claimed and retired (so waits never hang) but
  /// are skipped, not executed. Because claims are handed out in increasing
  /// index order under the mutex and both conditions are monotonic, the
  /// executed shards always form a prefix of [0, total). `is_worker`
  /// distinguishes pool threads from the submitting thread for the
  /// (diagnostic) steal tally.
  void drain(std::unique_lock<std::mutex>& lock, bool is_worker) {
    std::uint64_t executed = 0;
    while (next < total) {
      const std::size_t shard = next++;
      ExecMetrics::get().queue_peak.set_max(
          static_cast<std::int64_t>(total - next));
      ++executed;
      const auto* job = fn;
      const bool skip =
          error != nullptr || (cancel != nullptr && cancel->cancelled());
      if (!skip) ++executed_shards;
      lock.unlock();
      std::exception_ptr thrown;
      if (!skip) {
        try {
          (*job)(shard);
        } catch (...) {
          thrown = std::current_exception();
        }
      }
      lock.lock();
      if (thrown && !error) error = thrown;
      if (--remaining == 0) cv_done.notify_all();
    }
    if (is_worker && executed > 0) ExecMetrics::get().steals.add(executed);
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      cv_work.wait(lock, [&] { return shutdown || serial != seen; });
      if (shutdown) return;
      seen = serial;
      ++active;
      drain(lock, /*is_worker=*/true);
      if (--active == 0) cv_done.notify_all();
    }
  }
};

WorkerPool::WorkerPool(unsigned threads)
    : thread_count_(resolve_thread_count(threads)) {
  if (thread_count_ <= 1) return;
  impl_ = new Impl;
  impl_->threads.reserve(thread_count_ - 1);
  for (unsigned i = 0; i + 1 < thread_count_; ++i)
    impl_->threads.emplace_back([this] { impl_->worker_loop(); });
}

WorkerPool::~WorkerPool() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->cv_work.notify_all();
  for (auto& thread : impl_->threads) thread.join();
  delete impl_;
}

void WorkerPool::parallel_for_shards(
    std::size_t n_shards, const std::function<void(std::size_t)>& fn) {
  (void)parallel_for_shards(n_shards, fn, nullptr);
}

std::size_t WorkerPool::parallel_for_shards(
    std::size_t n_shards, const std::function<void(std::size_t)>& fn,
    const CancelToken* cancel) {
  if (n_shards == 0) return 0;
  ExecMetrics::get().jobs.add(1);
  ExecMetrics::get().tasks.add(n_shards);
  if (impl_ == nullptr || n_shards == 1) {
    std::size_t executed = 0;
    for (std::size_t shard = 0; shard < n_shards; ++shard) {
      if (cancel != nullptr && cancel->cancelled()) break;
      fn(shard);
      ++executed;
    }
    return executed;
  }
  std::unique_lock<std::mutex> lock(impl_->mutex);
  impl_->fn = &fn;
  impl_->cancel = cancel;
  impl_->total = n_shards;
  impl_->next = 0;
  impl_->remaining = n_shards;
  impl_->executed_shards = 0;
  impl_->error = nullptr;
  ++impl_->serial;
  ++impl_->active;
  impl_->cv_work.notify_all();
  impl_->drain(lock, /*is_worker=*/false);  // the submitting thread pulls too
  if (--impl_->active == 0) impl_->cv_done.notify_all();
  // Wait until every shard retired AND every participant left drain(): only
  // then is it safe for the caller to reuse the pool (or destroy `fn`).
  impl_->cv_done.wait(
      lock, [&] { return impl_->remaining == 0 && impl_->active == 0; });
  impl_->fn = nullptr;
  impl_->cancel = nullptr;
  const std::size_t executed = impl_->executed_shards;
  if (impl_->error) {
    const std::exception_ptr error = impl_->error;
    impl_->error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
  return executed;
}

}  // namespace encdns::exec
