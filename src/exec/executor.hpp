// Deterministic parallel execution for the measurement pipelines.
//
// The paper's platform is intrinsically parallel (ZMap sweeps from several
// origins, §4 fans out over ~123k proxy vantages), but parallelism must not
// change results: speedup with bit-identical output is the contract. The
// scheme is determinism by construction:
//   * work is split into a FIXED number of shards — a property of the
//     workload, never of the thread count;
//   * each shard derives its own util::Rng from util::mix64(seed ^ shard),
//     so no random stream is shared across shards;
//   * shards produce independent partial results that the caller merges in
//     canonical shard order.
// Threads only schedule shards; they never shape results. A run with
// threads=1 and threads=N therefore produce identical bytes.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "exec/cancel.hpp"
#include "util/rng.hpp"

namespace encdns::exec {

/// Effective worker count: `requested` when > 0, else the ENCDNS_THREADS
/// environment variable when set, else hardware_concurrency() (minimum 1).
/// A malformed or non-positive ENCDNS_THREADS throws util::EnvError.
[[nodiscard]] unsigned resolve_thread_count(unsigned requested = 0);

/// True when an auto-configured run (`resolve_thread_count(0)`) gets more
/// than one worker — i.e. parallel wall-clock comparisons mean something.
/// On a single-core machine (or under ENCDNS_THREADS=1) a "parallel" run is
/// the serial run with extra bookkeeping, so speedup figures and wall-clock
/// floors derived from one are noise; benches consult this to emit
/// "speedup": null and skip their timing guards instead.
[[nodiscard]] bool parallelism_available();

/// Contiguous index range [first, last) owned by shard `shard` of `shards`
/// over `total` items. Ranges partition [0, total) and differ in size by at
/// most one.
[[nodiscard]] std::pair<std::size_t, std::size_t> shard_range(
    std::size_t total, std::size_t shards, std::size_t shard) noexcept;

/// The canonical per-shard generator: Rng(mix64(seed ^ shard)). Using this
/// everywhere keeps the derivation rule in one place.
[[nodiscard]] inline util::Rng shard_rng(std::uint64_t seed,
                                         std::uint64_t shard) noexcept {
  return util::Rng(util::mix64(seed ^ shard));
}

/// A fixed-size pool of persistent worker threads. Multiple jobs may be in
/// flight at once (the task-graph executor submits from several node threads
/// — DESIGN.md §15); jobs queue FIFO and workers drain them front-first,
/// while each submitting thread participates only in its own job, so a pool
/// of size 1 (or a single-shard job) degenerates to a plain inline loop.
/// Workers inherit the submitting thread's obs::PhaseTally for each shard
/// they run, keeping per-phase metric attribution exact under overlap.
class WorkerPool {
 public:
  /// `threads` as for resolve_thread_count (0 = auto).
  explicit WorkerPool(unsigned threads = 0);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept { return thread_count_; }

  /// Invoke fn(shard) for every shard in [0, n_shards), distributed over the
  /// pool. fn must confine writes to shard-local state. The first exception
  /// thrown by any shard is rethrown here after the job drains; remaining
  /// shards are skipped.
  void parallel_for_shards(std::size_t n_shards,
                           const std::function<void(std::size_t)>& fn);

  /// Cancellable variant: `cancel` (may be null) is checked at shard pickup,
  /// under the job mutex, so once it trips no further shard starts — the
  /// shards that did execute form a prefix [0, k) of the canonical order
  /// (claims are handed out in increasing index order and cancellation is
  /// monotonic). Returns k, the executed-prefix length. In-flight shards are
  /// never interrupted: cancellation lands only on shard boundaries, which
  /// is what keeps a deterministically-triggered abort bit-identical at any
  /// thread count.
  std::size_t parallel_for_shards(std::size_t n_shards,
                                  const std::function<void(std::size_t)>& fn,
                                  const CancelToken* cancel);

 private:
  struct Impl;
  struct Job;
  unsigned thread_count_;
  Impl* impl_ = nullptr;  // null when thread_count_ <= 1 (inline mode)
};

/// Map fn over items, one task per item, preserving item order in the result.
/// fn is called as fn(item, index) and its result type must be
/// default-constructible. Deterministic provided fn(item, index) is a pure
/// function of its arguments (derive any randomness via shard_rng(seed, index)).
template <typename T, typename Fn>
auto parallel_map(WorkerPool& pool, const std::vector<T>& items, Fn&& fn)
    -> std::vector<decltype(fn(items.front(), std::size_t{}))> {
  using R = decltype(fn(items.front(), std::size_t{}));
  std::vector<R> results(items.size());
  pool.parallel_for_shards(items.size(), [&](std::size_t i) {
    results[i] = fn(items[i], i);
  });
  return results;
}

/// As above, but each task owns (and may mutate) its item.
template <typename T, typename Fn>
auto parallel_map(WorkerPool& pool, std::vector<T>& items, Fn&& fn)
    -> std::vector<decltype(fn(items.front(), std::size_t{}))> {
  using R = decltype(fn(items.front(), std::size_t{}));
  std::vector<R> results(items.size());
  pool.parallel_for_shards(items.size(), [&](std::size_t i) {
    results[i] = fn(items[i], i);
  });
  return results;
}

}  // namespace encdns::exec
