#include "exec/arena.hpp"

namespace encdns::exec {

std::vector<std::uint8_t>* ScratchArena::acquire() {
  if (!free_.empty()) {
    auto* buffer = free_.back();
    free_.pop_back();
    buffer->clear();
    return buffer;
  }
  buffers_.push_back(std::make_unique<std::vector<std::uint8_t>>());
  return buffers_.back().get();
}

void ScratchArena::release(std::vector<std::uint8_t>* buffer) noexcept {
  if (buffer != nullptr) free_.push_back(buffer);
}

ScratchArena& thread_arena() noexcept {
  thread_local ScratchArena arena;
  return arena;
}

}  // namespace encdns::exec
