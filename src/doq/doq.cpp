#include "doq/doq.hpp"

#include <string_view>

#include "dns/query.hpp"
#include "dns/wire.hpp"
#include "tls/serialize.hpp"
#include "tls/verify.hpp"

namespace encdns::doq {
namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(std::span<const std::uint8_t> data, std::size_t at) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | data[at + i];
  return v;
}

}  // namespace

DoqService::DoqService(DoqServiceConfig config)
    : config_(std::move(config)),
      token_secret_(util::mix64(util::fnv1a(config_.label) ^ 0xD00ULL)),
      rng_salt_(util::fnv1a(config_.label) ^ 0x784ULL) {}

util::Rng DoqService::request_rng(const net::WireRequest& request) const {
  const std::string_view payload(
      reinterpret_cast<const char*>(request.payload.data()),
      request.payload.size());
  return util::Rng(util::mix64(rng_salt_ ^ util::fnv1a(payload) ^
                               static_cast<std::uint64_t>(request.date.to_days()) ^
                               (static_cast<std::uint64_t>(request.port) << 48)));
}

bool DoqService::accepts(std::uint16_t port, net::Transport transport) const {
  return port == kDoqPort && transport == net::Transport::kUdp;
}

std::uint64_t DoqService::token_for(std::uint64_t client_random) const {
  return util::mix64(token_secret_ ^ client_random);
}

net::WireReply DoqService::handle(const net::WireRequest& request) {
  if (request.payload.empty() || config_.backend == nullptr)
    return net::WireReply::none();
  const std::uint8_t type = request.payload[0];

  if (type == kPacketInitial) {
    // Initial: [type | client_random(8) | sni...]. The combined transport +
    // crypto handshake completes in this single round trip.
    if (request.payload.size() < 9) return net::WireReply::none();
    const std::uint64_t client_random = get_u64(request.payload, 1);
    std::vector<std::uint8_t> reply;
    reply.push_back(kPacketHandshake);
    put_u64(reply, token_for(client_random));
    const std::string chain = tls::serialize_chain(config_.certificate);
    reply.insert(reply.end(), chain.begin(), chain.end());
    util::Rng rng = request_rng(request);
    return net::WireReply::of(std::move(reply),
                              sim::Millis{rng.uniform(0.3, 1.2)});
  }

  if (type == kPacketStream) {
    // Stream: [type | client_random(8) | token(8) | framed DNS]. 0-RTT data
    // from returning clients carries the token from a prior handshake.
    if (request.payload.size() < 17) return net::WireReply::none();
    const std::uint64_t client_random = get_u64(request.payload, 1);
    const std::uint64_t token = get_u64(request.payload, 9);
    if (!config_.accept_0rtt || token != token_for(client_random)) {
      return net::WireReply::of({kPacketReject}, sim::Millis{0.2});
    }
    const auto framed = request.payload.subspan(17);
    const auto wire = dns::unframe_stream(framed);
    if (!wire) return net::WireReply::none();
    const auto query = dns::Message::decode(*wire);
    if (!query) return net::WireReply::none();
    util::Rng rng = request_rng(request);
    auto result = config_.backend->resolve(*query, request.pop, request.date, rng);
    std::vector<std::uint8_t> reply;
    reply.push_back(kPacketStream);
    put_u64(reply, client_random);
    put_u64(reply, token);
    dns::WireWriter reply_writer(reply);
    const std::size_t reply_prefix = reply_writer.begin_stream_frame();
    result.response.encode_into(reply_writer);
    reply_writer.end_stream_frame(reply_prefix);
    result.processing += sim::Millis{rng.uniform(0.3, 1.5)};
    return net::WireReply::of(std::move(reply), result.processing);
  }

  return net::WireReply::none();
}

std::optional<DoqClient::Session> DoqClient::establish(
    util::Ipv4 server, const util::Date& date, const Options& options,
    client::QueryOutcome& outcome, sim::Millis& spent) {
  const std::uint64_t client_random = rng_.next();
  std::vector<std::uint8_t> initial;
  initial.push_back(kPacketInitial);
  put_u64(initial, client_random);
  for (const char c : options.auth_name)
    initial.push_back(static_cast<std::uint8_t>(c));

  const auto result = network_->udp_exchange(context_, rng_, server, kDoqPort,
                                             initial, date, options.timeout);
  spent += result.latency;
  if (result.status != net::Network::UdpResult::Status::kOk) {
    outcome.status = client::QueryStatus::kTimeout;
    return std::nullopt;
  }
  if (result.payload.empty() || result.payload[0] != kPacketHandshake ||
      result.payload.size() < 9) {
    outcome.status = client::QueryStatus::kProtocolError;
    return std::nullopt;
  }
  Session session;
  session.client_random = client_random;
  session.token = get_u64(result.payload, 1);
  const std::string chain_text(result.payload.begin() + 9, result.payload.end());
  const auto chain = tls::parse_chain(chain_text);
  if (!chain) {
    outcome.status = client::QueryStatus::kProtocolError;
    return std::nullopt;
  }
  session.chain = *chain;
  // QUIC mandates TLS 1.3 semantics: strict validation, no fallback inside
  // the protocol itself.
  const auto verdict =
      tls::verify_host(session.chain, options.auth_name, *options.trust_store, date);
  outcome.cert_status = verdict;
  outcome.presented_chain = session.chain;
  if (tls::is_invalid(verdict)) {
    outcome.status = client::QueryStatus::kCertRejected;
    return std::nullopt;
  }
  return session;
}

client::QueryOutcome DoqClient::query(util::Ipv4 server, const dns::Name& qname,
                                      dns::RrType type, const util::Date& date,
                                      const Options& options) {
  client::QueryOutcome outcome;
  sim::Millis spent{0.0};

  Session* session = nullptr;
  const auto it = sessions_.find(server.value());
  if (options.enable_0rtt && it != sessions_.end()) {
    session = &it->second;
    outcome.reused_connection = true;
    outcome.cert_status = tls::CertStatus::kValid;  // validated at setup
    outcome.presented_chain = session->chain;
  } else {
    auto fresh = establish(server, date, options, outcome, spent);
    if (!fresh) {
      outcome.latency = spent;
      if (options.fallback_to_dot &&
          outcome.status != client::QueryStatus::kCertRejected) {
        // Draft behaviour: a failed QUIC connection falls back to DoT.
        client::DotClient fallback(*network_, context_, rng_.next());
        client::DotClient::Options dot_options;
        dot_options.auth_name = options.auth_name;
        dot_options.profile = client::PrivacyProfile::kStrict;
        auto downgraded = fallback.query(server, qname, type, date, dot_options);
        downgraded.latency += spent;
        return downgraded;
      }
      return outcome;
    }
    session = &sessions_.insert_or_assign(server.value(), std::move(*fresh))
                   .first->second;
  }

  // Stream packet: the (client_random, token) pair from the handshake.
  std::vector<std::uint8_t> stream;
  stream.push_back(kPacketStream);
  put_u64(stream, session->client_random);
  put_u64(stream, session->token);
  const auto id = static_cast<std::uint16_t>(rng_.below(65536));
  const dns::Message query = dns::make_query(qname, type, id);
  dns::WireWriter stream_writer(stream);
  const std::size_t stream_prefix = stream_writer.begin_stream_frame();
  query.encode_into(stream_writer);
  stream_writer.end_stream_frame(stream_prefix);

  const auto result = network_->udp_exchange(context_, rng_, server, kDoqPort,
                                             stream, date, options.timeout);
  outcome.latency = spent + result.latency;
  outcome.transaction_latency = result.latency;
  if (result.status != net::Network::UdpResult::Status::kOk) {
    sessions_.erase(server.value());
    outcome.status = client::QueryStatus::kTimeout;
    return outcome;
  }
  if (result.payload.empty() || result.payload[0] == kPacketReject) {
    sessions_.erase(server.value());
    outcome.status = client::QueryStatus::kConnectionReset;
    return outcome;
  }
  if (result.payload[0] != kPacketStream || result.payload.size() < 17) {
    outcome.status = client::QueryStatus::kProtocolError;
    return outcome;
  }
  const auto framed = std::span<const std::uint8_t>(result.payload).subspan(17);
  const auto wire = dns::unframe_stream(framed);
  if (!wire) {
    outcome.status = client::QueryStatus::kProtocolError;
    return outcome;
  }
  auto response = dns::Message::decode(*wire);
  if (!response || !dns::response_matches(query, *response)) {
    outcome.status = client::QueryStatus::kProtocolError;
    return outcome;
  }
  outcome.status = client::QueryStatus::kOk;
  outcome.response = std::move(response);
  return outcome;
}

}  // namespace encdns::doq
