// A DNS-over-QUIC prototype (draft-huitema-quic-dnsoquic, the paper's
// "planned, no implementations yet" protocol — Table 1's last column).
//
// Modelled QUIC properties that matter for DNS latency:
//   * UDP transport on the dedicated port 784;
//   * combined transport + crypto handshake: ONE round trip to a new server
//     (vs TCP+TLS1.3's two);
//   * 0-RTT resumption: a returning client sends the query in its first
//     flight, so a lookup costs exactly one round trip — DNS/UDP parity;
//   * strict certificate validation (QUIC mandates TLS 1.3 semantics);
//   * optional fallback to DoT, as the draft specifies.
//
// Packet framing (prototype): first byte is a packet type, then type-specific
// payload. Initial carries the SNI; Handshake answers with the serialized
// certificate chain and a session token; Stream carries `token | framed DNS`.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "client/dot.hpp"
#include "client/outcome.hpp"
#include "net/network.hpp"
#include "resolver/backend.hpp"
#include "tls/trust_store.hpp"

namespace encdns::doq {

inline constexpr std::uint16_t kDoqPort = 784;

/// Prototype packet types.
inline constexpr std::uint8_t kPacketInitial = 0x01;
inline constexpr std::uint8_t kPacketHandshake = 0x02;
inline constexpr std::uint8_t kPacketStream = 0x03;
inline constexpr std::uint8_t kPacketReject = 0x0F;

struct DoqServiceConfig {
  std::string label = "doq-resolver";
  std::shared_ptr<resolver::DnsBackend> backend;
  tls::CertificateChain certificate;
  /// Accept 0-RTT data from returning clients (token reuse).
  bool accept_0rtt = true;
};

class DoqService final : public net::Service {
 public:
  explicit DoqService(DoqServiceConfig config);

  [[nodiscard]] std::string label() const override { return config_.label; }
  [[nodiscard]] bool accepts(std::uint16_t port, net::Transport transport) const override;
  [[nodiscard]] net::WireReply handle(const net::WireRequest& request) override;

 private:
  DoqServiceConfig config_;
  std::uint64_t token_secret_;
  std::uint64_t rng_salt_;  // per-request rng: replies are pure functions
                            // of the request (stateless, thread-safe)

  [[nodiscard]] util::Rng request_rng(const net::WireRequest& request) const;
  [[nodiscard]] std::uint64_t token_for(std::uint64_t client_random) const;
};

struct DoqOptions {
  /// Server name validated against the presented chain (strict, always).
  std::string auth_name;
  const tls::TrustStore* trust_store = &tls::TrustStore::mozilla();
  sim::Millis timeout{10000.0};
  /// Use a cached session token for 0-RTT when available.
  bool enable_0rtt = true;
  /// Draft §5: fall back to DoT when the QUIC connection fails.
  bool fallback_to_dot = false;
};

class DoqClient {
 public:
  DoqClient(const net::Network& network, net::ClientContext context,
            std::uint64_t seed)
      : network_(&network), context_(std::move(context)), rng_(seed) {}

  using Options = DoqOptions;

  [[nodiscard]] client::QueryOutcome query(util::Ipv4 server, const dns::Name& qname,
                                           dns::RrType type, const util::Date& date,
                                           const Options& options = {});

  void forget_sessions() { sessions_.clear(); }
  [[nodiscard]] bool has_session(util::Ipv4 server) const {
    return sessions_.contains(server.value());
  }

 private:
  struct Session {
    std::uint64_t client_random = 0;  // the random the token was minted for
    std::uint64_t token = 0;
    tls::CertificateChain chain;
  };

  const net::Network* network_;
  net::ClientContext context_;
  util::Rng rng_;
  std::unordered_map<std::uint32_t, Session> sessions_;

  [[nodiscard]] std::optional<Session> establish(util::Ipv4 server,
                                                 const util::Date& date,
                                                 const Options& options,
                                                 client::QueryOutcome& outcome,
                                                 sim::Millis& spent);
};

}  // namespace encdns::doq
