#include "util/rng.hpp"

#include <bit>
#include <cmath>

namespace encdns::util {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  return splitmix64(x);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& word : state_) word = splitmix64(seed);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = std::rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) noexcept {
  if (mean <= 0.0) return 0.0;
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

double Rng::lognormal(double median, double sigma) noexcept {
  if (median <= 0.0) return 0.0;
  return median * std::exp(sigma * normal());
}

double Rng::pareto(double xm, double alpha) noexcept {
  if (xm <= 0.0 || alpha <= 0.0) return 0.0;
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::uint64_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction.
    const double v = normal(lambda, std::sqrt(lambda));
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-lambda);
  std::uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

std::size_t Rng::weighted(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (pick < w) return i;
    pick -= w;
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  std::uint64_t s = state_[0] ^ mix64(stream + 0x5EEDF00DULL);
  return Rng{mix64(s)};
}

}  // namespace encdns::util
