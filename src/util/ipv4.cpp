#include "util/ipv4.hpp"

#include <charconv>
#include <cstdio>

namespace encdns::util {

std::string Ipv4::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", octet(0), octet(1), octet(2),
                octet(3));
  return buf;
}

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  for (int i = 0; i < 4; ++i) {
    unsigned octet = 0;
    const auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255 || next == p) return std::nullopt;
    value = (value << 8) | octet;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4{value};
}

std::string Cidr::to_string() const {
  return base_.to_string() + "/" + std::to_string(prefix_len_);
}

std::optional<Cidr> Cidr::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = 0;
  const auto tail = text.substr(slash + 1);
  const auto [next, ec] = std::from_chars(tail.data(), tail.data() + tail.size(), len);
  if (ec != std::errc{} || next != tail.data() + tail.size() || len < 0 || len > 32)
    return std::nullopt;
  return Cidr{*addr, len};
}

}  // namespace encdns::util
