#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace encdns::util {

std::optional<double> percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return std::nullopt;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

std::optional<double> median(std::vector<double> sample) {
  return percentile(std::move(sample), 0.5);
}

std::optional<double> mean(const std::vector<double>& sample) {
  if (sample.empty()) return std::nullopt;
  double sum = 0.0;
  for (double v : sample) sum += v;
  return sum / static_cast<double>(sample.size());
}

std::optional<double> stddev(const std::vector<double>& sample) {
  if (sample.size() < 2) return std::nullopt;
  const double m = *mean(sample);
  double acc = 0.0;
  for (double v : sample) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(sample.size() - 1));
}

Summary summarize(std::vector<double> sample) {
  Summary s;
  if (sample.empty()) return s;
  std::sort(sample.begin(), sample.end());
  const auto q = [&](double p) {
    const double pos = p * static_cast<double>(sample.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sample.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sample[lo] + frac * (sample[hi] - sample[lo]);
  };
  s.count = sample.size();
  s.min = sample.front();
  s.max = sample.back();
  s.p25 = q(0.25);
  s.median = q(0.5);
  s.p75 = q(0.75);
  s.p90 = q(0.9);
  double sum = 0.0;
  for (double v : sample) sum += v;
  s.mean = sum / static_cast<double>(sample.size());
  return s;
}

Cdf::Cdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  if (sorted_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

std::vector<std::pair<double, double>> Cdf::points(std::size_t n) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || n == 0) return out;
  out.reserve(n);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        n == 1 ? hi : lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

void Counter::add(const std::string& key, double amount) {
  total_ += amount;
  entries_[key] += amount;
}

double Counter::get(const std::string& key) const noexcept {
  const auto it = entries_.find(key);
  return it == entries_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> Counter::sorted_desc() const {
  std::vector<std::pair<std::string, double>> out(entries_.begin(), entries_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

double Counter::top_share(std::size_t k) const {
  if (total_ <= 0.0) return 0.0;
  auto sorted = sorted_desc();
  double acc = 0.0;
  for (std::size_t i = 0; i < std::min(k, sorted.size()); ++i) acc += sorted[i].second;
  return acc / total_;
}

}  // namespace encdns::util
