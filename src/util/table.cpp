#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace encdns::util {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

std::string Table::render() const {
  const std::size_t cols = headers_.size();
  std::vector<std::size_t> widths(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < cols && c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto rule = [&](char fill, char joint) {
    std::string line = "+";
    for (std::size_t c = 0; c < cols; ++c) {
      line.append(widths[c] + 2, fill);
      line.push_back(joint);
    }
    line.back() = '+';
    return line + "\n";
  };
  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line.push_back(' ');
      line += cell;
      line.append(widths[c] - cell.size() + 1, ' ');
      line.push_back('|');
    }
    return line + "\n";
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  if (!note_.empty()) out += "(" + note_ + ")\n";
  out += rule('-', '+');
  out += render_row(headers_);
  out += rule('=', '+');
  for (const auto& row : rows_) out += render_row(row);
  out += rule('-', '+');
  return out;
}

std::string Table::to_csv() const {
  const auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string quoted = "\"";
    for (char ch : field) {
      if (ch == '"') quoted += "\"\"";
      else quoted.push_back(ch);
    }
    quoted.push_back('"');
    return quoted;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out.push_back(',');
    out += escape(headers_[c]);
  }
  out.push_back('\n');
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out.push_back(',');
      out += escape(row[c]);
    }
    out.push_back('\n');
  }
  return out;
}

std::string Table::to_json() const {
  const auto escape = [](const std::string& field) {
    std::string out = "\"";
    for (const char ch : field) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        default: out.push_back(ch); break;
      }
    }
    out.push_back('"');
    return out;
  };
  const auto row_json = [&](const std::vector<std::string>& row) {
    std::string out = "[";
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ", ";
      out += escape(row[c]);
    }
    return out + "]";
  };
  std::string out = "{\n  \"title\": " + escape(title_);
  if (!note_.empty()) out += ",\n  \"note\": " + escape(note_);
  out += ",\n  \"headers\": " + row_json(headers_);
  out += ",\n  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r ? ",\n    " : "\n    ";
    out += row_json(rows_[r]);
  }
  out += rows_.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_pct(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

std::string fmt_count(std::int64_t value) {
  const bool neg = value < 0;
  std::string digits = std::to_string(neg ? -value : value);
  std::string out;
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

std::string fmt_growth(double before, double after) {
  if (before <= 0.0) return "n/a";
  const double pct = (after - before) / before * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.0f%%", pct);
  return buf;
}

}  // namespace encdns::util
