// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace encdns::util {

/// Split on a separator character; empty fields are preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Join with a separator string.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// True if `text` starts with / ends with the given suffix, case-insensitive.
[[nodiscard]] bool istarts_with(std::string_view text, std::string_view prefix) noexcept;
[[nodiscard]] bool iends_with(std::string_view text, std::string_view suffix) noexcept;

/// True if `haystack` contains `needle`, case-insensitive ASCII. An empty
/// needle is contained in everything. Allocation-free prefilter for hot scan
/// loops (DESIGN.md §12).
[[nodiscard]] bool icontains(std::string_view haystack, std::string_view needle) noexcept;

}  // namespace encdns::util
