// Strict environment-variable parsing, shared by every ENCDNS_* knob.
//
// The previous per-site parsers (strtol in the executor, atoll in the cache,
// a silent string match in the fault profile) all degraded malformed values
// to a default, so a typo like ENCDNS_THREADS=fuor ran the study
// single-threaded without a word. Here every accessor either returns the
// parsed value, returns nullopt (variable unset), or throws EnvError with a
// diagnostic naming the variable, the offending value, and the expected
// form — misconfiguration fails loudly before any phase runs.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace encdns::util {

/// Thrown when an ENCDNS_* variable is set to an unparseable value.
class EnvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raw value, nullopt when unset. Never throws.
[[nodiscard]] std::optional<std::string> env_string(const char* name);

/// Strict base-10 integer (optional leading '-'; no trailing junk).
[[nodiscard]] std::optional<long long> env_int(const char* name);

/// Strict integer, additionally required to be > 0.
[[nodiscard]] std::optional<long long> env_positive_int(const char* name);

/// Strict finite double (strtod must consume the whole value).
[[nodiscard]] std::optional<double> env_double(const char* name);

/// Accepts on/off, true/false, 1/0 (case-insensitive).
[[nodiscard]] std::optional<bool> env_bool(const char* name);

}  // namespace encdns::util
