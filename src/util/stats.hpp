// Descriptive statistics used throughout the measurement pipelines:
// medians/percentiles for latency comparisons (paper §4.3), CDFs for
// provider/address distributions (Figure 4), and simple accumulators.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace encdns::util {

/// Percentile of a sample using linear interpolation between order statistics
/// (the "R-7" rule, same as numpy's default). `q` in [0,1]. Empty -> nullopt.
[[nodiscard]] std::optional<double> percentile(std::vector<double> sample, double q);

/// Median convenience wrapper.
[[nodiscard]] std::optional<double> median(std::vector<double> sample);

/// Arithmetic mean. Empty -> nullopt.
[[nodiscard]] std::optional<double> mean(const std::vector<double>& sample);

/// Sample standard deviation (n-1 denominator). Fewer than 2 values -> nullopt.
[[nodiscard]] std::optional<double> stddev(const std::vector<double>& sample);

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Compute a Summary; empty input yields a zeroed Summary with count == 0.
[[nodiscard]] Summary summarize(std::vector<double> sample);

/// Empirical CDF over a sample: evaluate fraction of values <= x, and extract
/// evenly spaced points for plotting/printing.
class Cdf {
 public:
  explicit Cdf(std::vector<double> sample);

  [[nodiscard]] std::size_t count() const noexcept { return sorted_.size(); }

  /// P(X <= x); 0 for empty sample.
  [[nodiscard]] double at(double x) const noexcept;

  /// Inverse CDF (quantile); empty -> 0.
  [[nodiscard]] double quantile(double q) const;

  /// `n` (x, F(x)) points spanning the sample range, for rendering.
  [[nodiscard]] std::vector<std::pair<double, double>> points(std::size_t n) const;

 private:
  std::vector<double> sorted_;
};

/// Streaming counter keyed by string, with sorted extraction. Used for
/// per-country / per-provider / per-netblock tallies.
class Counter {
 public:
  void add(const std::string& key, double amount = 1.0);

  [[nodiscard]] double get(const std::string& key) const noexcept;
  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept { return entries_.size(); }

  /// Entries sorted by descending count (ties broken by key).
  [[nodiscard]] std::vector<std::pair<std::string, double>> sorted_desc() const;

  /// Top-k share of the total (0 if empty).
  [[nodiscard]] double top_share(std::size_t k) const;

 private:
  std::unordered_map<std::string, double> entries_;
  double total_ = 0.0;
};

}  // namespace encdns::util
