#include "util/bytes.hpp"

namespace encdns::util {

std::uint64_t fnv1a_bytes(const std::uint8_t* data, std::size_t size,
                          std::uint64_t basis) noexcept {
  std::uint64_t hash = basis;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

}  // namespace encdns::util
