// Deterministic pseudo-random number generation for the simulation.
//
// Every stochastic decision in encdns flows from a seeded generator so that a
// whole measurement study is reproducible bit-for-bit from a single seed.
// We use xoshiro256++ (Blackman & Vigna) seeded through splitmix64, which is
// the customary way to expand a 64-bit seed into xoshiro's 256-bit state.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace encdns::util {

/// One step of the splitmix64 sequence starting at `x`. Also usable as a
/// high-quality 64-bit integer mixer/finalizer.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& x) noexcept;

/// Stateless mix of a 64-bit value (splitmix64 finalizer). Used to derive
/// independent child seeds and for procedural "is this address special?"
/// predicates that must not consume generator state.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// FNV-1a hash of a byte string, for deterministic keyed lookups.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

/// The complete serializable state of an Rng: the xoshiro256++ words plus
/// the Box-Muller spare. Restoring a saved state resumes the exact deviate
/// stream, which is what the study checkpoint's RNG cursors rely on.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xEC0DD5EC0DD5ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// bound == 0 returns 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  /// Standard normal deviate (Box-Muller, cached second value).
  [[nodiscard]] double normal() noexcept;

  /// Normal deviate with mean/stddev.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential deviate with the given mean (mean <= 0 returns 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Log-normal deviate parameterized by the median and a multiplicative
  /// sigma (log-space stddev). Handy for heavy-tailed latency components.
  [[nodiscard]] double lognormal(double median, double sigma) noexcept;

  /// Pareto (power-law) deviate with scale xm > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double xm, double alpha) noexcept;

  /// Poisson deviate (Knuth for small lambda, normal approx for large).
  [[nodiscard]] std::uint64_t poisson(double lambda) noexcept;

  /// Index drawn according to non-negative `weights` (all-zero -> 0).
  [[nodiscard]] std::size_t weighted(const std::vector<double>& weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Derive an independent child generator; `stream` distinguishes siblings.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

  /// Capture the full generator state (checkpoint cursor).
  [[nodiscard]] RngState state() const noexcept {
    return RngState{state_, cached_normal_, has_cached_normal_};
  }

  /// Resume from a captured state, bypassing the seed expansion.
  void restore(const RngState& state) noexcept {
    state_ = state.words;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace encdns::util
