#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace encdns::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back())))
    text.remove_suffix(1);
  return text;
}

bool istarts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && iequals(text.substr(0, prefix.size()), prefix);
}

bool iends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         iequals(text.substr(text.size() - suffix.size()), suffix);
}

bool icontains(std::string_view haystack, std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

}  // namespace encdns::util
