// Civil-date arithmetic for the simulation timeline.
//
// The study spans real calendar ranges (NetFlow: Jul 2017 – Jan 2019; scans:
// Feb 1 – May 1 2019), so experiments are scheduled against civil dates. The
// conversion uses Howard Hinnant's days_from_civil algorithm; day numbers are
// counted from the Unix epoch (1970-01-01 == day 0).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace encdns::util {

/// A civil (proleptic Gregorian) calendar date.
struct Date {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31

  auto operator<=>(const Date&) const = default;

  /// Days since 1970-01-01 (may be negative).
  [[nodiscard]] std::int64_t to_days() const noexcept;

  /// Inverse of to_days().
  [[nodiscard]] static Date from_days(std::int64_t days) noexcept;

  /// This date plus `n` days.
  [[nodiscard]] Date plus_days(std::int64_t n) const noexcept;

  /// First day of this date's month.
  [[nodiscard]] Date month_start() const noexcept;

  /// First day of the following month.
  [[nodiscard]] Date next_month() const noexcept;

  /// Months elapsed since year 0 (for month bucketing: year*12 + month-1).
  [[nodiscard]] int month_index() const noexcept { return year * 12 + (month - 1); }

  /// ISO "YYYY-MM-DD".
  [[nodiscard]] std::string to_string() const;

  /// Abbreviated "Mon YYYY" (e.g. "Jul 2018") as used in the paper's prose.
  [[nodiscard]] std::string month_label() const;

  /// Whether this date falls in [from, to) — the convention for service
  /// activation windows.
  [[nodiscard]] bool in_window(const Date& from, const Date& to) const noexcept {
    return *this >= from && *this < to;
  }
};

/// Whole days between two dates (b - a).
[[nodiscard]] std::int64_t days_between(const Date& a, const Date& b) noexcept;

/// Whole-month difference (b - a) in month buckets.
[[nodiscard]] int months_between(const Date& a, const Date& b) noexcept;

/// Number of days in the given month of the given year.
[[nodiscard]] int days_in_month(int year, int month) noexcept;

}  // namespace encdns::util
