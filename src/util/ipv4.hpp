// IPv4 address and CIDR netblock value types.
//
// These live in util (rather than net) because both the DNS wire codec
// (A-record rdata) and the network simulation use them.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace encdns::util {

/// An IPv4 address stored host-ordered.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) noexcept : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : value_((static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) | d) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Dotted-quad representation.
  [[nodiscard]] std::string to_string() const;

  /// Parse "a.b.c.d"; nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4> parse(std::string_view text);

  /// The address truncated to its /24 (client anonymization in §5.1).
  [[nodiscard]] constexpr Ipv4 slash24() const noexcept {
    return Ipv4{value_ & 0xFFFFFF00u};
  }

  auto operator<=>(const Ipv4&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix, e.g. 104.16.0.0/12.
class Cidr {
 public:
  constexpr Cidr() = default;
  constexpr Cidr(Ipv4 base, int prefix_len) noexcept
      : base_(Ipv4{prefix_len == 0 ? 0 : (base.value() & mask(prefix_len))}),
        prefix_len_(prefix_len) {}

  [[nodiscard]] constexpr Ipv4 base() const noexcept { return base_; }
  [[nodiscard]] constexpr int prefix_len() const noexcept { return prefix_len_; }

  /// Number of addresses covered (2^(32-len)).
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return 1ULL << (32 - prefix_len_);
  }

  [[nodiscard]] constexpr bool contains(Ipv4 addr) const noexcept {
    if (prefix_len_ == 0) return true;
    return (addr.value() & mask(prefix_len_)) == base_.value();
  }

  /// The i-th address inside the block (i < size()).
  [[nodiscard]] constexpr Ipv4 at(std::uint64_t i) const noexcept {
    return Ipv4{base_.value() + static_cast<std::uint32_t>(i)};
  }

  /// "a.b.c.d/len".
  [[nodiscard]] std::string to_string() const;

  /// Parse "a.b.c.d/len".
  [[nodiscard]] static std::optional<Cidr> parse(std::string_view text);

  auto operator<=>(const Cidr&) const = default;

 private:
  Ipv4 base_{};
  int prefix_len_ = 32;

  [[nodiscard]] static constexpr std::uint32_t mask(int len) noexcept {
    return len == 0 ? 0u : ~0u << (32 - len);
  }
};

}  // namespace encdns::util

template <>
struct std::hash<encdns::util::Ipv4> {
  std::size_t operator()(const encdns::util::Ipv4& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
