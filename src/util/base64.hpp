// Base64url (RFC 4648 §5, unpadded) — the encoding RFC 8484 mandates for the
// `dns` parameter of DoH GET requests — plus standard base64 and hex helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace encdns::util {

/// Encode bytes as unpadded base64url.
[[nodiscard]] std::string base64url_encode(std::span<const std::uint8_t> data);

/// Slot-reusing twin of `base64url_encode` (DESIGN.md §12): the encoding
/// lands in `out` (cleared first, capacity preserved), so warmed callers
/// encode without a fresh string allocation.
void base64url_encode_into(std::span<const std::uint8_t> data, std::string& out);

/// Decode unpadded base64url. Returns nullopt on any invalid character or an
/// impossible length (len % 4 == 1).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> base64url_decode(
    std::string_view text);

/// Slot-reusing twin of `base64url_decode`: false on invalid input (with
/// `out` unspecified-but-valid for reuse), true with the decoded bytes in
/// `out` otherwise. Accepts and rejects exactly what `base64url_decode` does.
[[nodiscard]] bool base64url_decode_into(std::string_view text,
                                         std::vector<std::uint8_t>& out);

/// Encode bytes as standard base64 with '=' padding.
[[nodiscard]] std::string base64_encode(std::span<const std::uint8_t> data);

/// Lowercase hex encoding, e.g. for certificate fingerprints.
[[nodiscard]] std::string hex_encode(std::span<const std::uint8_t> data);

}  // namespace encdns::util
