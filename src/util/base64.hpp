// Base64url (RFC 4648 §5, unpadded) — the encoding RFC 8484 mandates for the
// `dns` parameter of DoH GET requests — plus standard base64 and hex helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace encdns::util {

/// Encode bytes as unpadded base64url.
[[nodiscard]] std::string base64url_encode(std::span<const std::uint8_t> data);

/// Decode unpadded base64url. Returns nullopt on any invalid character or an
/// impossible length (len % 4 == 1).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> base64url_decode(
    std::string_view text);

/// Encode bytes as standard base64 with '=' padding.
[[nodiscard]] std::string base64_encode(std::span<const std::uint8_t> data);

/// Lowercase hex encoding, e.g. for certificate fingerprints.
[[nodiscard]] std::string hex_encode(std::span<const std::uint8_t> data);

}  // namespace encdns::util
