// ASCII table rendering and CSV export. Every experiment runner produces a
// Table, so the bench binaries can print paper-style rows and the dataset can
// be exported for external plotting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace encdns::util {

/// A rectangular table of strings with a title and column headers.
class Table {
 public:
  Table() = default;
  Table(std::string title, std::vector<std::string> headers);

  void set_title(std::string title) { title_ = std::move(title); }
  void set_headers(std::vector<std::string> headers) { headers_ = std::move(headers); }

  /// Free-form annotation rendered under the title and exported to JSON
  /// (only when non-empty, so unannotated tables keep their exact bytes).
  /// The study uses it for data-quality coverage lines (DESIGN.md §13).
  void set_note(std::string note) { note_ = std::move(note); }
  [[nodiscard]] const std::string& note() const noexcept { return note_; }

  /// Append a row; it is padded/truncated to the header width on render.
  void add_row(std::vector<std::string> row);

  /// Convenience: start a row builder.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& table) : table_(table) {}
    ~RowBuilder() { table_.add_row(std::move(cells_)); }
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

    RowBuilder& cell(std::string value) & {
      cells_.push_back(std::move(value));
      return *this;
    }
    RowBuilder&& cell(std::string value) && {
      cells_.push_back(std::move(value));
      return std::move(*this);
    }

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with box-drawing rules, padded columns, title banner.
  [[nodiscard]] std::string render() const;

  /// RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
  [[nodiscard]] std::string to_csv() const;

  /// Stable JSON object {title, headers, rows}. Cells are the already
  /// formatted strings, so the bytes are deterministic — this is the golden
  /// snapshot format (tests/golden).
  [[nodiscard]] std::string to_json() const;

 private:
  std::string title_;
  std::string note_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `decimals` fraction digits.
[[nodiscard]] std::string fmt(double value, int decimals = 2);

/// Format as a percentage string, e.g. fmt_pct(0.1646) == "16.46%".
[[nodiscard]] std::string fmt_pct(double fraction, int decimals = 2);

/// Thousands-separated integer, e.g. 29622 -> "29,622".
[[nodiscard]] std::string fmt_count(std::int64_t value);

/// Signed growth percentage, e.g. +108% / -84% (paper Table 2 style).
[[nodiscard]] std::string fmt_growth(double before, double after);

}  // namespace encdns::util
