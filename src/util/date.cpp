#include "util/date.hpp"

#include <array>
#include <cstdio>

namespace encdns::util {
namespace {

constexpr std::array<const char*, 12> kMonthAbbrev = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

}  // namespace

std::int64_t Date::to_days() const noexcept {
  // Howard Hinnant, "chrono-Compatible Low-Level Date Algorithms".
  const int y = year - (month <= 2 ? 1 : 0);
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);               // [0, 399]
  const unsigned doy = static_cast<unsigned>(
      (153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);           // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;              // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

Date Date::from_days(std::int64_t days) noexcept {
  const std::int64_t z = days + 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);            // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);            // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                 // [0, 11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;                         // [1, 31]
  const unsigned m = mp + (mp < 10 ? 3 : static_cast<unsigned>(-9));       // [1, 12]
  return Date{static_cast<int>(y + (m <= 2 ? 1 : 0)), static_cast<int>(m),
              static_cast<int>(d)};
}

Date Date::plus_days(std::int64_t n) const noexcept { return from_days(to_days() + n); }

Date Date::month_start() const noexcept { return Date{year, month, 1}; }

Date Date::next_month() const noexcept {
  if (month == 12) return Date{year + 1, 1, 1};
  return Date{year, month + 1, 1};
}

std::string Date::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

std::string Date::month_label() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%s %04d",
                kMonthAbbrev[static_cast<std::size_t>(month - 1)], year);
  return buf;
}

std::int64_t days_between(const Date& a, const Date& b) noexcept {
  return b.to_days() - a.to_days();
}

int months_between(const Date& a, const Date& b) noexcept {
  return b.month_index() - a.month_index();
}

int days_in_month(int year, int month) noexcept {
  const Date first{year, month, 1};
  return static_cast<int>(days_between(first, first.next_month()));
}

}  // namespace encdns::util
