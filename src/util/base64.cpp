#include "util/base64.hpp"

#include <array>

namespace encdns::util {
namespace {

constexpr std::string_view kUrlAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";
constexpr std::string_view kStdAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::string encode_with(std::span<const std::uint8_t> data, std::string_view alphabet,
                        bool pad) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            static_cast<std::uint32_t>(data[i + 2]);
    out.push_back(alphabet[(n >> 18) & 0x3F]);
    out.push_back(alphabet[(n >> 12) & 0x3F]);
    out.push_back(alphabet[(n >> 6) & 0x3F]);
    out.push_back(alphabet[n & 0x3F]);
    i += 3;
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(alphabet[(n >> 18) & 0x3F]);
    out.push_back(alphabet[(n >> 12) & 0x3F]);
    if (pad) out.append("==");
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(alphabet[(n >> 18) & 0x3F]);
    out.push_back(alphabet[(n >> 12) & 0x3F]);
    out.push_back(alphabet[(n >> 6) & 0x3F]);
    if (pad) out.push_back('=');
  }
  return out;
}

constexpr std::array<std::int8_t, 256> make_url_reverse() {
  std::array<std::int8_t, 256> table{};
  for (auto& v : table) v = -1;
  for (int i = 0; i < 64; ++i)
    table[static_cast<unsigned char>(kUrlAlphabet[static_cast<std::size_t>(i)])] =
        static_cast<std::int8_t>(i);
  return table;
}

constexpr auto kUrlReverse = make_url_reverse();

}  // namespace

std::string base64url_encode(std::span<const std::uint8_t> data) {
  return encode_with(data, kUrlAlphabet, /*pad=*/false);
}

void base64url_encode_into(std::span<const std::uint8_t> data, std::string& out) {
  out.clear();
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                            static_cast<std::uint32_t>(data[i + 2]);
    out.push_back(kUrlAlphabet[(n >> 18) & 0x3F]);
    out.push_back(kUrlAlphabet[(n >> 12) & 0x3F]);
    out.push_back(kUrlAlphabet[(n >> 6) & 0x3F]);
    out.push_back(kUrlAlphabet[n & 0x3F]);
    i += 3;
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kUrlAlphabet[(n >> 18) & 0x3F]);
    out.push_back(kUrlAlphabet[(n >> 12) & 0x3F]);
  } else if (rem == 2) {
    const std::uint32_t n = (static_cast<std::uint32_t>(data[i]) << 16) |
                            (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kUrlAlphabet[(n >> 18) & 0x3F]);
    out.push_back(kUrlAlphabet[(n >> 12) & 0x3F]);
    out.push_back(kUrlAlphabet[(n >> 6) & 0x3F]);
  }
}

std::string base64_encode(std::span<const std::uint8_t> data) {
  return encode_with(data, kStdAlphabet, /*pad=*/true);
}

bool base64url_decode_into(std::string_view text, std::vector<std::uint8_t>& out) {
  out.clear();
  if (text.size() % 4 == 1) return false;
  out.reserve(text.size() / 4 * 3 + 2);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    const std::int8_t v = kUrlReverse[static_cast<unsigned char>(c)];
    if (v < 0) return false;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xFF));
    }
  }
  // Leftover bits must be zero padding of the final group.
  return bits == 0 || (acc & ((1U << bits) - 1)) == 0;
}

std::optional<std::vector<std::uint8_t>> base64url_decode(std::string_view text) {
  if (text.size() % 4 == 1) return std::nullopt;
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 4 * 3 + 2);
  std::uint32_t acc = 0;
  int bits = 0;
  for (char c : text) {
    const std::int8_t v = kUrlReverse[static_cast<unsigned char>(c)];
    if (v < 0) return std::nullopt;
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xFF));
    }
  }
  // Leftover bits must be zero padding of the final group.
  if (bits > 0 && (acc & ((1U << bits) - 1)) != 0) return std::nullopt;
  return out;
}

std::string hex_encode(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

}  // namespace encdns::util
