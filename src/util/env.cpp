#include "util/env.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace encdns::util {
namespace {

[[noreturn]] void fail(const char* name, const std::string& value,
                       const char* expected) {
  throw EnvError(std::string(name) + "=\"" + value +
                 "\" is invalid: expected " + expected);
}

}  // namespace

std::optional<std::string> env_string(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return std::nullopt;
  return std::string(raw);
}

std::optional<long long> env_int(const char* name) {
  const auto raw = env_string(name);
  if (!raw) return std::nullopt;
  if (raw->empty()) fail(name, *raw, "a base-10 integer");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(raw->c_str(), &end, 10);
  if (errno == ERANGE) fail(name, *raw, "an integer within 64-bit range");
  if (end == raw->c_str() || *end != '\0') fail(name, *raw, "a base-10 integer");
  return value;
}

std::optional<long long> env_positive_int(const char* name) {
  const auto value = env_int(name);
  if (value && *value <= 0) fail(name, std::to_string(*value), "an integer > 0");
  return value;
}

std::optional<double> env_double(const char* name) {
  const auto raw = env_string(name);
  if (!raw) return std::nullopt;
  if (raw->empty()) fail(name, *raw, "a finite decimal number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(value))
    fail(name, *raw, "a finite decimal number");
  return value;
}

std::optional<bool> env_bool(const char* name) {
  const auto raw = env_string(name);
  if (!raw) return std::nullopt;
  std::string value = *raw;
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (value == "on" || value == "true" || value == "1") return true;
  if (value == "off" || value == "false" || value == "0") return false;
  fail(name, *raw, "on/off, true/false or 1/0");
}

}  // namespace encdns::util
