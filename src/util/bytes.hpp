// Deterministic little-endian byte serialization for the checkpoint journal
// (DESIGN.md §13). ByteWriter appends fixed-width fields to a growing buffer;
// ByteReader walks the same layout with hard bounds checks — every decode
// failure throws CodecError so a corrupt or truncated record fails closed
// instead of half-loading. Doubles travel as their IEEE-754 bit pattern, so
// encode(decode(x)) is the identity and the bytes are platform-independent
// on any little-endian IEEE machine.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace encdns::util {

/// Thrown by ByteReader on any malformed input (truncation, oversized
/// length prefix, trailing bytes where none are allowed).
class CodecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// FNV-1a over raw bytes, resumable: pass the previous return value as
/// `basis` to hash a stream incrementally. Same constants as fnv1a(string).
inline constexpr std::uint64_t kFnv1aBasis = 0xCBF29CE484222325ULL;
[[nodiscard]] std::uint64_t fnv1a_bytes(const std::uint8_t* data,
                                        std::size_t size,
                                        std::uint64_t basis = kFnv1aBasis) noexcept;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) { append_le(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// u32 length prefix + raw bytes.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void blob(const std::vector<std::uint8_t>& bytes) {
    u32(static_cast<std::uint32_t>(bytes.size()));
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes) noexcept
      : ByteReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint8_t u8() { return take_bytes(1)[0]; }
  [[nodiscard]] std::uint16_t u16() { return read_le<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return read_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return read_le<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(read_le<std::uint64_t>());
  }
  [[nodiscard]] double f64() { return std::bit_cast<double>(read_le<std::uint64_t>()); }
  [[nodiscard]] bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw CodecError("bytes: boolean field holds " + std::to_string(v));
    return v == 1;
  }

  [[nodiscard]] std::string str() {
    const std::uint32_t len = u32();
    const std::uint8_t* p = take_bytes(len);
    return std::string(reinterpret_cast<const char*>(p), len);
  }
  [[nodiscard]] std::vector<std::uint8_t> blob() {
    const std::uint32_t len = u32();
    const std::uint8_t* p = take_bytes(len);
    return std::vector<std::uint8_t>(p, p + len);
  }

  /// Checked element count for a container about to be decoded: each element
  /// occupies at least `min_element_bytes`, so a hostile length prefix cannot
  /// force an over-allocation beyond the remaining input.
  [[nodiscard]] std::uint32_t count(std::size_t min_element_bytes = 1) {
    const std::uint32_t n = u32();
    if (min_element_bytes > 0 &&
        static_cast<std::size_t>(n) > remaining() / min_element_bytes)
      throw CodecError("bytes: element count " + std::to_string(n) +
                       " exceeds remaining input");
    return n;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == size_; }
  void expect_done() const {
    if (!done())
      throw CodecError("bytes: " + std::to_string(remaining()) +
                       " trailing bytes after record");
  }

 private:
  const std::uint8_t* take_bytes(std::size_t n) {
    if (n > remaining())
      throw CodecError("bytes: truncated input (need " + std::to_string(n) +
                       ", have " + std::to_string(remaining()) + ")");
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  template <typename T>
  [[nodiscard]] T read_le() {
    const std::uint8_t* p = take_bytes(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v |= static_cast<T>(static_cast<T>(p[i]) << (8 * i));
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace encdns::util
