#include "dnscrypt/crypto.hpp"

#include "util/rng.hpp"

namespace encdns::dnscrypt {
namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t get_u64(std::span<const std::uint8_t> data, std::size_t at) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | data[at + i];
  return v;
}

/// Keystream byte i for a (secret, nonce) pair.
class Keystream {
 public:
  Keystream(std::uint64_t secret, std::uint64_t nonce)
      : state_(util::mix64(secret ^ util::mix64(nonce))) {}

  std::uint8_t next() {
    if (have_ == 0) {
      word_ = util::splitmix64(state_);
      have_ = 8;
    }
    const auto byte = static_cast<std::uint8_t>(word_);
    word_ >>= 8;
    --have_;
    return byte;
  }

 private:
  std::uint64_t state_;
  std::uint64_t word_ = 0;
  int have_ = 0;
};

/// Keyed MAC over the ciphertext (Poly1305 stand-in): FNV over bytes mixed
/// with the secret and nonce.
std::uint64_t mac_of(std::span<const std::uint8_t> ciphertext, std::uint64_t secret,
                     std::uint64_t nonce) {
  std::uint64_t h = util::mix64(secret ^ (nonce * 0x9E3779B97F4A7C15ULL));
  for (const std::uint8_t b : ciphertext) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return util::mix64(h);
}

}  // namespace

std::uint64_t shared_secret(std::uint64_t secret_key_id,
                            std::uint64_t peer_public_key) noexcept {
  // Commutative in the same way X25519 is: DH(a, B) == DH(b, A) when public
  // keys are derived as pk = mix64(sk). mix64(sk_a) ^ mix64(sk_b) is the
  // shared value both sides can compute.
  return util::mix64(secret_key_id) ^ peer_public_key;
}

std::vector<std::uint8_t> seal(std::span<const std::uint8_t> plain,
                               std::uint64_t nonce,
                               std::uint64_t client_public_key,
                               std::uint64_t secret) {
  // ISO 7816-4 padding to the 64-byte block.
  std::vector<std::uint8_t> padded(plain.begin(), plain.end());
  padded.push_back(0x80);
  while (padded.size() % kPadBlock != 0) padded.push_back(0x00);

  Keystream keystream(secret, nonce);
  for (auto& byte : padded) byte = static_cast<std::uint8_t>(byte ^ keystream.next());

  std::vector<std::uint8_t> out;
  out.reserve(24 + padded.size());
  put_u64(out, nonce);
  put_u64(out, client_public_key);
  put_u64(out, mac_of(padded, secret, nonce));
  out.insert(out.end(), padded.begin(), padded.end());
  return out;
}

std::optional<std::uint64_t> peek_client_key(
    std::span<const std::uint8_t> boxed) noexcept {
  if (boxed.size() < 24) return std::nullopt;
  return get_u64(boxed, 8);
}

std::optional<std::vector<std::uint8_t>> open(std::span<const std::uint8_t> boxed,
                                              std::uint64_t secret,
                                              std::uint64_t* sender_public_key,
                                              std::uint64_t* nonce_out) {
  if (boxed.size() < 24 + kPadBlock) return std::nullopt;
  const std::uint64_t nonce = get_u64(boxed, 0);
  const std::uint64_t sender = get_u64(boxed, 8);
  const std::uint64_t mac = get_u64(boxed, 16);
  const auto ciphertext = boxed.subspan(24);
  if (ciphertext.size() % kPadBlock != 0) return std::nullopt;
  if (mac_of(ciphertext, secret, nonce) != mac) return std::nullopt;

  std::vector<std::uint8_t> plain(ciphertext.begin(), ciphertext.end());
  Keystream keystream(secret, nonce);
  for (auto& byte : plain) byte = static_cast<std::uint8_t>(byte ^ keystream.next());

  // Strip ISO 7816-4 padding.
  std::size_t end = plain.size();
  while (end > 0 && plain[end - 1] == 0x00) --end;
  if (end == 0 || plain[end - 1] != 0x80) return std::nullopt;
  plain.resize(end - 1);

  if (sender_public_key != nullptr) *sender_public_key = sender;
  if (nonce_out != nullptr) *nonce_out = nonce;
  return plain;
}

}  // namespace encdns::dnscrypt
