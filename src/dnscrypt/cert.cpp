#include "dnscrypt/cert.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/rng.hpp"

namespace encdns::dnscrypt {

ProviderKey ProviderKey::derive(const std::string& provider_name) {
  ProviderKey key;
  key.provider_name = provider_name;
  key.public_key = util::mix64(util::fnv1a(provider_name) ^ 0xD45C4117ULL);
  return key;
}

std::string Certificate::to_txt() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "DNSC|es=%u|serial=%u|from=%s|to=%s|rk=%016" PRIx64
                "|sk=%016" PRIx64 "|sig=%d",
                es_version, serial, ts_start.to_string().c_str(),
                ts_end.to_string().c_str(), resolver_public_key,
                signer_public_key, signature_valid ? 1 : 0);
  return buf;
}

namespace {

std::optional<util::Date> parse_date(const std::string& text) {
  int year = 0, month = 0, day = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &year, &month, &day) != 3)
    return std::nullopt;
  if (month < 1 || month > 12 || day < 1 || day > 31) return std::nullopt;
  return util::Date{year, month, day};
}

}  // namespace

std::optional<Certificate> Certificate::from_txt(const std::string& txt) {
  unsigned es = 0, serial = 0;
  char from[16] = {0}, to[16] = {0};
  std::uint64_t rk = 0, sk = 0;
  int sig = 0;
  const int fields = std::sscanf(
      txt.c_str(),
      "DNSC|es=%u|serial=%u|from=%11[0-9-]|to=%11[0-9-]|rk=%" SCNx64
      "|sk=%" SCNx64 "|sig=%d",
      &es, &serial, from, to, &rk, &sk, &sig);
  if (fields != 7) return std::nullopt;
  const auto ts_start = parse_date(from);
  const auto ts_end = parse_date(to);
  if (!ts_start || !ts_end) return std::nullopt;
  Certificate cert;
  cert.es_version = static_cast<std::uint16_t>(es);
  cert.serial = serial;
  cert.ts_start = *ts_start;
  cert.ts_end = *ts_end;
  cert.resolver_public_key = rk;
  cert.signer_public_key = sk;
  cert.signature_valid = sig != 0;
  return cert;
}

std::string to_string(CertVerdict verdict) {
  switch (verdict) {
    case CertVerdict::kValid: return "valid";
    case CertVerdict::kExpired: return "expired";
    case CertVerdict::kNotYetValid: return "not yet valid";
    case CertVerdict::kWrongSigner: return "wrong signer";
    case CertVerdict::kBadSignature: return "bad signature";
    case CertVerdict::kUnsupportedVersion: return "unsupported es-version";
  }
  return "?";
}

CertVerdict verify(const Certificate& cert, const ProviderKey& provider,
                   const util::Date& now) {
  if (cert.es_version != kEsVersionXSalsa20)
    return CertVerdict::kUnsupportedVersion;
  if (cert.signer_public_key != provider.public_key)
    return CertVerdict::kWrongSigner;
  if (!cert.signature_valid) return CertVerdict::kBadSignature;
  if (now < cert.ts_start) return CertVerdict::kNotYetValid;
  if (now > cert.ts_end) return CertVerdict::kExpired;
  return CertVerdict::kValid;
}

}  // namespace encdns::dnscrypt
