// DNSCrypt stub client: fetch + verify the provider certificate over plain
// DNS, then exchange sealed queries over UDP port 443 (no connection setup —
// the usability/latency profile Table 1 credits DNSCrypt with).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "client/outcome.hpp"
#include "dnscrypt/cert.hpp"
#include "dnscrypt/crypto.hpp"
#include "dnscrypt/service.hpp"
#include "net/network.hpp"

namespace encdns::dnscrypt {

struct DnscryptOptions {
  sim::Millis timeout{10000.0};
  /// Refetch the certificate on every query instead of caching it.
  bool cache_certificate = true;
};

class DnscryptClient {
 public:
  DnscryptClient(const net::Network& network, net::ClientContext context,
                 std::uint64_t seed)
      : network_(&network),
        context_(std::move(context)),
        rng_(seed),
        client_secret_key_(rng_.next()) {}

  using Options = DnscryptOptions;

  /// One DNSCrypt lookup against `server`, whose identity is `provider`.
  /// The client::QueryOutcome conventions carry over; a certificate the
  /// provider key does not vouch for aborts the lookup (kCertRejected).
  [[nodiscard]] client::QueryOutcome query(util::Ipv4 server,
                                           const ProviderKey& provider,
                                           const dns::Name& qname, dns::RrType type,
                                           const util::Date& date,
                                           const Options& options = {});

  [[nodiscard]] std::uint64_t client_public_key() const noexcept {
    return util::mix64(client_secret_key_);
  }

  void forget_certificates() { certificates_.clear(); }

 private:
  const net::Network* network_;
  net::ClientContext context_;
  util::Rng rng_;
  std::uint64_t client_secret_key_;
  std::unordered_map<std::string, Certificate> certificates_;  // by provider

  [[nodiscard]] std::optional<Certificate> fetch_certificate(
      util::Ipv4 server, const ProviderKey& provider, const util::Date& date,
      const Options& options, client::QueryOutcome& outcome, sim::Millis& spent);
};

}  // namespace encdns::dnscrypt
