// DNSCrypt provider certificates (structural model of the v2 spec).
//
// A DNSCrypt resolver publishes a certificate under the TXT name
// `2.dnscrypt-cert.<provider>`: it carries the resolver's short-term public
// key, a serial, a validity window, and is signed by the provider's
// long-term key (which clients know out of band, e.g. from an sdns:// stamp).
// As with the tls module, keys and signatures are structural: what matters
// for the measurement platform is the key exchange choreography, the
// validity checks, and the wire framing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/date.hpp"

namespace encdns::dnscrypt {

/// The X25519-XSalsa20Poly1305 construction id from the spec.
inline constexpr std::uint16_t kEsVersionXSalsa20 = 0x0001;

/// A long-term provider identity (the part distributed out of band).
struct ProviderKey {
  std::string provider_name;  // e.g. "2.dnscrypt-cert.opendns.com"
  std::uint64_t public_key = 0;

  /// Derive a stable provider key from a name (for the world builder).
  [[nodiscard]] static ProviderKey derive(const std::string& provider_name);
};

/// The short-term certificate served over TXT.
struct Certificate {
  std::uint16_t es_version = kEsVersionXSalsa20;
  std::uint32_t serial = 1;
  util::Date ts_start{2019, 1, 1};
  util::Date ts_end{2019, 12, 31};
  std::uint64_t resolver_public_key = 0;  // short-term key
  std::uint64_t signer_public_key = 0;    // must equal the provider key
  bool signature_valid = true;

  [[nodiscard]] bool valid_at(const util::Date& now) const noexcept {
    return now >= ts_start && now <= ts_end;
  }

  /// Serialize into a TXT character-string (one string, self-delimited).
  [[nodiscard]] std::string to_txt() const;

  /// Parse the TXT form; nullopt on malformed input.
  [[nodiscard]] static std::optional<Certificate> from_txt(const std::string& txt);
};

enum class CertVerdict {
  kValid,
  kExpired,
  kNotYetValid,
  kWrongSigner,      // signed by a key other than the provider's
  kBadSignature,
  kUnsupportedVersion,
};

[[nodiscard]] std::string to_string(CertVerdict verdict);

/// Client-side certificate verification against the out-of-band provider key.
[[nodiscard]] CertVerdict verify(const Certificate& cert, const ProviderKey& provider,
                                 const util::Date& now);

}  // namespace encdns::dnscrypt
