// The DNSCrypt box construction, modelled with a reversible keystream.
//
// Real DNSCrypt seals queries with crypto_box (X25519 key agreement +
// XSalsa20-Poly1305). Here the shared secret is derived by mixing the two
// key ids and the keystream comes from splitmix64 — reversible, tamper
// -evident via a keyed MAC, and byte-for-byte testable, without pulling a
// crypto library into the simulation. Framing follows the spec: client
// nonce + client public key + MAC + ciphertext, padded to 64-byte blocks
// (ISO/IEC 7816-4 style: 0x80 then zeros).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace encdns::dnscrypt {

inline constexpr std::size_t kPadBlock = 64;

/// X25519-style key agreement, structurally: commutative mix of the ids.
[[nodiscard]] std::uint64_t shared_secret(std::uint64_t secret_key_id,
                                          std::uint64_t peer_public_key) noexcept;

/// Seal `plain` under (nonce, secret). Output layout:
///   nonce(8) | client_pk(8) | mac(8) | ciphertext(padded plain)
[[nodiscard]] std::vector<std::uint8_t> seal(std::span<const std::uint8_t> plain,
                                             std::uint64_t nonce,
                                             std::uint64_t client_public_key,
                                             std::uint64_t secret);

/// Open a sealed box with the secret; nullopt on MAC mismatch, bad padding,
/// or truncated input. Also returns the sender's public key and nonce via
/// out-parameters when non-null (the server needs them to reply).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> open(
    std::span<const std::uint8_t> boxed, std::uint64_t secret,
    std::uint64_t* sender_public_key = nullptr, std::uint64_t* nonce = nullptr);

/// The server derives the secret from the box itself plus its own key:
/// extract the client public key field without authenticating.
[[nodiscard]] std::optional<std::uint64_t> peek_client_key(
    std::span<const std::uint8_t> boxed) noexcept;

}  // namespace encdns::dnscrypt
