#include "dnscrypt/client.hpp"

#include "dns/query.hpp"

namespace encdns::dnscrypt {

std::optional<Certificate> DnscryptClient::fetch_certificate(
    util::Ipv4 server, const ProviderKey& provider, const util::Date& date,
    const Options& options, client::QueryOutcome& outcome, sim::Millis& spent) {
  if (options.cache_certificate) {
    const auto it = certificates_.find(provider.provider_name);
    if (it != certificates_.end()) return it->second;
  }
  const auto cert_name = dns::Name::parse(provider.provider_name);
  if (!cert_name) {
    outcome.status = client::QueryStatus::kBootstrapFailed;
    return std::nullopt;
  }
  const auto id = static_cast<std::uint16_t>(rng_.below(65536));
  const dns::Message query = dns::make_query(*cert_name, dns::RrType::kTxt, id);
  const auto wire = query.encode();
  const auto result = network_->udp_exchange(context_, rng_, server, dns::kDnsPort,
                                             wire, date, options.timeout);
  spent += result.latency;
  if (result.status != net::Network::UdpResult::Status::kOk) {
    outcome.status = client::QueryStatus::kTimeout;
    return std::nullopt;
  }
  const auto response = dns::Message::decode(result.payload);
  if (!response || !dns::response_matches(query, *response) ||
      response->answers.empty()) {
    outcome.status = client::QueryStatus::kProtocolError;
    return std::nullopt;
  }
  const auto* strings = std::get_if<dns::TxtData>(&response->answers.front().rdata);
  if (strings == nullptr || strings->empty()) {
    outcome.status = client::QueryStatus::kProtocolError;
    return std::nullopt;
  }
  const auto cert = Certificate::from_txt(strings->front());
  if (!cert) {
    outcome.status = client::QueryStatus::kProtocolError;
    return std::nullopt;
  }
  // Authenticate against the out-of-band provider key; DNSCrypt has no
  // opportunistic mode — a bad certificate aborts.
  if (verify(*cert, provider, date) != CertVerdict::kValid) {
    outcome.status = client::QueryStatus::kCertRejected;
    return std::nullopt;
  }
  if (options.cache_certificate) certificates_[provider.provider_name] = *cert;
  return cert;
}

client::QueryOutcome DnscryptClient::query(util::Ipv4 server,
                                           const ProviderKey& provider,
                                           const dns::Name& qname, dns::RrType type,
                                           const util::Date& date,
                                           const Options& options) {
  client::QueryOutcome outcome;
  sim::Millis spent{0.0};

  const auto cert = fetch_certificate(server, provider, date, options, outcome, spent);
  if (!cert) {
    outcome.latency = spent;
    return outcome;
  }

  const std::uint64_t secret =
      shared_secret(client_secret_key_, cert->resolver_public_key);
  const auto id = static_cast<std::uint16_t>(rng_.below(65536));
  const dns::Message query = dns::make_query(qname, type, id);
  const auto sealed =
      seal(query.encode(), rng_.next(), client_public_key(), secret);

  const auto result = network_->udp_exchange(context_, rng_, server, kDnscryptPort,
                                             sealed, date, options.timeout);
  outcome.latency = spent + result.latency;
  outcome.transaction_latency = result.latency;
  if (result.status != net::Network::UdpResult::Status::kOk) {
    outcome.status = client::QueryStatus::kTimeout;
    return outcome;
  }
  const auto plain = open(result.payload, secret);
  if (!plain) {
    outcome.status = client::QueryStatus::kProtocolError;
    return outcome;
  }
  auto response = dns::Message::decode(*plain);
  if (!response || !dns::response_matches(query, *response)) {
    outcome.status = client::QueryStatus::kProtocolError;
    return outcome;
  }
  outcome.status = client::QueryStatus::kOk;
  outcome.response = std::move(response);
  return outcome;
}

}  // namespace encdns::dnscrypt
