// Server side of DNSCrypt: serves the provider certificate over plain DNS
// (TXT `2.dnscrypt-cert.<provider>`) and answers sealed queries on the
// DNSCrypt port (443, UDP and TCP — mixed with HTTPS traffic, per §2.2).
#pragma once

#include <memory>
#include <string>

#include "dnscrypt/cert.hpp"
#include "dnscrypt/crypto.hpp"
#include "net/service.hpp"
#include "resolver/backend.hpp"

namespace encdns::dnscrypt {

struct DnscryptServiceConfig {
  std::string label = "dnscrypt-resolver";
  /// Provider name whose TXT carries the certificate.
  std::string provider_name = "2.dnscrypt-cert.example.com";
  std::shared_ptr<resolver::DnsBackend> backend;
  /// Short-term resolver secret key (public key is derived).
  std::uint64_t resolver_secret_key = 0x5EC0DE;
  util::Date cert_start{2019, 1, 1};
  util::Date cert_end{2019, 12, 31};
  std::uint32_t cert_serial = 1;
  /// Defect knobs for tests/world: serve an expired or missigned cert.
  bool cert_signature_valid = true;
  bool sign_with_wrong_key = false;
};

class DnscryptService final : public net::Service {
 public:
  explicit DnscryptService(DnscryptServiceConfig config);

  [[nodiscard]] std::string label() const override { return config_.label; }
  [[nodiscard]] bool accepts(std::uint16_t port, net::Transport transport) const override;
  [[nodiscard]] net::WireReply handle(const net::WireRequest& request) override;

  /// The certificate as currently served.
  [[nodiscard]] Certificate certificate() const;
  [[nodiscard]] std::uint64_t resolver_public_key() const noexcept {
    return resolver_public_key_;
  }

 private:
  DnscryptServiceConfig config_;
  std::uint64_t resolver_public_key_;
  std::uint64_t rng_salt_;  // per-request rng: replies are pure functions
                            // of the request (stateless, thread-safe)

  [[nodiscard]] util::Rng request_rng(const net::WireRequest& request) const;

  [[nodiscard]] net::WireReply handle_cert_query(const net::WireRequest& request);
  [[nodiscard]] net::WireReply handle_sealed_query(const net::WireRequest& request);
};

inline constexpr std::uint16_t kDnscryptPort = 443;

}  // namespace encdns::dnscrypt
