#include "dnscrypt/service.hpp"

#include <string_view>

#include "dns/query.hpp"
#include "dns/types.hpp"
#include "util/rng.hpp"

namespace encdns::dnscrypt {

DnscryptService::DnscryptService(DnscryptServiceConfig config)
    : config_(std::move(config)),
      resolver_public_key_(util::mix64(config_.resolver_secret_key)),
      rng_salt_(util::fnv1a(config_.label) ^ 0xDC2ULL) {}

util::Rng DnscryptService::request_rng(const net::WireRequest& request) const {
  const std::string_view payload(
      reinterpret_cast<const char*>(request.payload.data()),
      request.payload.size());
  return util::Rng(util::mix64(rng_salt_ ^ util::fnv1a(payload) ^
                               static_cast<std::uint64_t>(request.date.to_days()) ^
                               (static_cast<std::uint64_t>(request.port) << 48)));
}

bool DnscryptService::accepts(std::uint16_t port, net::Transport) const {
  // Plain DNS for the certificate bootstrap; 443 for sealed queries.
  return port == dns::kDnsPort || port == kDnscryptPort;
}

Certificate DnscryptService::certificate() const {
  Certificate cert;
  cert.serial = config_.cert_serial;
  cert.ts_start = config_.cert_start;
  cert.ts_end = config_.cert_end;
  cert.resolver_public_key = resolver_public_key_;
  const auto provider = ProviderKey::derive(config_.provider_name);
  cert.signer_public_key =
      config_.sign_with_wrong_key ? util::mix64(0xBAD) : provider.public_key;
  cert.signature_valid = config_.cert_signature_valid;
  return cert;
}

net::WireReply DnscryptService::handle(const net::WireRequest& request) {
  if (request.port == dns::kDnsPort) return handle_cert_query(request);
  if (request.port == kDnscryptPort) return handle_sealed_query(request);
  return net::WireReply::none();
}

net::WireReply DnscryptService::handle_cert_query(const net::WireRequest& request) {
  const auto query = dns::Message::decode(request.payload);
  if (!query || query->questions.empty()) return net::WireReply::none();
  const auto& question = query->questions.front();
  const auto cert_name = dns::Name::parse(config_.provider_name);
  if (question.type != dns::RrType::kTxt || !cert_name ||
      !(question.name == *cert_name)) {
    return net::WireReply::of(
        dns::make_response(*query, dns::RCode::kRefused).encode(),
        sim::Millis{0.2});
  }
  auto response = dns::make_response(*query, dns::RCode::kNoError);
  response.answers.push_back(
      dns::ResourceRecord::txt(question.name, {certificate().to_txt()}, 3600));
  util::Rng rng = request_rng(request);
  return net::WireReply::of(response.encode(), sim::Millis{rng.uniform(0.2, 0.8)});
}

net::WireReply DnscryptService::handle_sealed_query(const net::WireRequest& request) {
  if (config_.backend == nullptr) return net::WireReply::none();
  const auto client_key = peek_client_key(request.payload);
  if (!client_key) return net::WireReply::none();
  const std::uint64_t secret =
      shared_secret(config_.resolver_secret_key, *client_key);
  std::uint64_t nonce = 0;
  const auto plain = open(request.payload, secret, nullptr, &nonce);
  if (!plain) return net::WireReply::none();  // tampered or wrong keys
  const auto query = dns::Message::decode(*plain);
  if (!query) return net::WireReply::none();

  util::Rng rng = request_rng(request);
  auto result = config_.backend->resolve(*query, request.pop, request.date, rng);
  // Response box: server nonce derived from the client nonce, resolver key
  // in the sender slot.
  const auto sealed = seal(result.response.encode(), util::mix64(nonce ^ 1),
                           resolver_public_key_, secret);
  // Symmetric-crypto cost is negligible; add the usual small server time.
  result.processing += sim::Millis{rng.uniform(0.3, 1.5)};
  return net::WireReply::of(sealed, result.processing);
}

}  // namespace encdns::dnscrypt
