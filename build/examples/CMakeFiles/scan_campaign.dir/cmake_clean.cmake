file(REMOVE_RECURSE
  "CMakeFiles/scan_campaign.dir/scan_campaign.cpp.o"
  "CMakeFiles/scan_campaign.dir/scan_campaign.cpp.o.d"
  "scan_campaign"
  "scan_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
