# Empty compiler generated dependencies file for reachability_probe.
# This may be replaced when dependencies are built.
