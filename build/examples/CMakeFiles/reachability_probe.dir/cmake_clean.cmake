file(REMOVE_RECURSE
  "CMakeFiles/reachability_probe.dir/reachability_probe.cpp.o"
  "CMakeFiles/reachability_probe.dir/reachability_probe.cpp.o.d"
  "reachability_probe"
  "reachability_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachability_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
