# Empty compiler generated dependencies file for encdns_resolver.
# This may be replaced when dependencies are built.
