file(REMOVE_RECURSE
  "libencdns_resolver.a"
)
