file(REMOVE_RECURSE
  "CMakeFiles/encdns_resolver.dir/backend.cpp.o"
  "CMakeFiles/encdns_resolver.dir/backend.cpp.o.d"
  "CMakeFiles/encdns_resolver.dir/recursive.cpp.o"
  "CMakeFiles/encdns_resolver.dir/recursive.cpp.o.d"
  "CMakeFiles/encdns_resolver.dir/services.cpp.o"
  "CMakeFiles/encdns_resolver.dir/services.cpp.o.d"
  "CMakeFiles/encdns_resolver.dir/universe.cpp.o"
  "CMakeFiles/encdns_resolver.dir/universe.cpp.o.d"
  "libencdns_resolver.a"
  "libencdns_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
