
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolver/backend.cpp" "src/resolver/CMakeFiles/encdns_resolver.dir/backend.cpp.o" "gcc" "src/resolver/CMakeFiles/encdns_resolver.dir/backend.cpp.o.d"
  "/root/repo/src/resolver/recursive.cpp" "src/resolver/CMakeFiles/encdns_resolver.dir/recursive.cpp.o" "gcc" "src/resolver/CMakeFiles/encdns_resolver.dir/recursive.cpp.o.d"
  "/root/repo/src/resolver/services.cpp" "src/resolver/CMakeFiles/encdns_resolver.dir/services.cpp.o" "gcc" "src/resolver/CMakeFiles/encdns_resolver.dir/services.cpp.o.d"
  "/root/repo/src/resolver/universe.cpp" "src/resolver/CMakeFiles/encdns_resolver.dir/universe.cpp.o" "gcc" "src/resolver/CMakeFiles/encdns_resolver.dir/universe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/encdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/encdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/encdns_http.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/encdns_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/encdns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/encdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
