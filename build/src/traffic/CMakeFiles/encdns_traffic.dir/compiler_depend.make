# Empty compiler generated dependencies file for encdns_traffic.
# This may be replaced when dependencies are built.
