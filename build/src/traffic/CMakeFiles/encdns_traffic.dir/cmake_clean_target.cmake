file(REMOVE_RECURSE
  "libencdns_traffic.a"
)
