file(REMOVE_RECURSE
  "CMakeFiles/encdns_traffic.dir/backbone.cpp.o"
  "CMakeFiles/encdns_traffic.dir/backbone.cpp.o.d"
  "CMakeFiles/encdns_traffic.dir/netflow.cpp.o"
  "CMakeFiles/encdns_traffic.dir/netflow.cpp.o.d"
  "CMakeFiles/encdns_traffic.dir/netflow_study.cpp.o"
  "CMakeFiles/encdns_traffic.dir/netflow_study.cpp.o.d"
  "CMakeFiles/encdns_traffic.dir/netflow_v5.cpp.o"
  "CMakeFiles/encdns_traffic.dir/netflow_v5.cpp.o.d"
  "CMakeFiles/encdns_traffic.dir/passive_dns.cpp.o"
  "CMakeFiles/encdns_traffic.dir/passive_dns.cpp.o.d"
  "CMakeFiles/encdns_traffic.dir/scan_detector.cpp.o"
  "CMakeFiles/encdns_traffic.dir/scan_detector.cpp.o.d"
  "libencdns_traffic.a"
  "libencdns_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
