file(REMOVE_RECURSE
  "CMakeFiles/encdns_client.dir/do53.cpp.o"
  "CMakeFiles/encdns_client.dir/do53.cpp.o.d"
  "CMakeFiles/encdns_client.dir/doh.cpp.o"
  "CMakeFiles/encdns_client.dir/doh.cpp.o.d"
  "CMakeFiles/encdns_client.dir/dot.cpp.o"
  "CMakeFiles/encdns_client.dir/dot.cpp.o.d"
  "CMakeFiles/encdns_client.dir/outcome.cpp.o"
  "CMakeFiles/encdns_client.dir/outcome.cpp.o.d"
  "libencdns_client.a"
  "libencdns_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
