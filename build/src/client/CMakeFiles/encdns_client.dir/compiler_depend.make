# Empty compiler generated dependencies file for encdns_client.
# This may be replaced when dependencies are built.
