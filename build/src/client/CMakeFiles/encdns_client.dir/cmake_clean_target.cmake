file(REMOVE_RECURSE
  "libencdns_client.a"
)
