# Empty compiler generated dependencies file for encdns_sim.
# This may be replaced when dependencies are built.
