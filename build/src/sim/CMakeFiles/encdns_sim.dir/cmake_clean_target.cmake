file(REMOVE_RECURSE
  "libencdns_sim.a"
)
