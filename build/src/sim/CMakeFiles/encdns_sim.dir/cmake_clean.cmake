file(REMOVE_RECURSE
  "CMakeFiles/encdns_sim.dir/duration.cpp.o"
  "CMakeFiles/encdns_sim.dir/duration.cpp.o.d"
  "CMakeFiles/encdns_sim.dir/event_queue.cpp.o"
  "CMakeFiles/encdns_sim.dir/event_queue.cpp.o.d"
  "libencdns_sim.a"
  "libencdns_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
