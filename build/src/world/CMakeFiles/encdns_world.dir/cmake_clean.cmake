file(REMOVE_RECURSE
  "CMakeFiles/encdns_world.dir/countries.cpp.o"
  "CMakeFiles/encdns_world.dir/countries.cpp.o.d"
  "CMakeFiles/encdns_world.dir/middleboxes.cpp.o"
  "CMakeFiles/encdns_world.dir/middleboxes.cpp.o.d"
  "CMakeFiles/encdns_world.dir/providers.cpp.o"
  "CMakeFiles/encdns_world.dir/providers.cpp.o.d"
  "CMakeFiles/encdns_world.dir/world.cpp.o"
  "CMakeFiles/encdns_world.dir/world.cpp.o.d"
  "libencdns_world.a"
  "libencdns_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
