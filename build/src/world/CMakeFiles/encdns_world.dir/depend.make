# Empty dependencies file for encdns_world.
# This may be replaced when dependencies are built.
