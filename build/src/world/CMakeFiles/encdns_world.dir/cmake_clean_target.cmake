file(REMOVE_RECURSE
  "libencdns_world.a"
)
