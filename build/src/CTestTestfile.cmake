# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("dns")
subdirs("sim")
subdirs("net")
subdirs("tls")
subdirs("http")
subdirs("resolver")
subdirs("client")
subdirs("dnscrypt")
subdirs("doq")
subdirs("world")
subdirs("scan")
subdirs("proxy")
subdirs("measure")
subdirs("traffic")
subdirs("core")
