# Empty compiler generated dependencies file for encdns_net.
# This may be replaced when dependencies are built.
