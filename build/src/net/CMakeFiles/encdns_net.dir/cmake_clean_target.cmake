file(REMOVE_RECURSE
  "libencdns_net.a"
)
