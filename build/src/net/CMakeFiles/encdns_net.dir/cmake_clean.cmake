file(REMOVE_RECURSE
  "CMakeFiles/encdns_net.dir/connection.cpp.o"
  "CMakeFiles/encdns_net.dir/connection.cpp.o.d"
  "CMakeFiles/encdns_net.dir/geo.cpp.o"
  "CMakeFiles/encdns_net.dir/geo.cpp.o.d"
  "CMakeFiles/encdns_net.dir/network.cpp.o"
  "CMakeFiles/encdns_net.dir/network.cpp.o.d"
  "libencdns_net.a"
  "libencdns_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
