file(REMOVE_RECURSE
  "libencdns_scan.a"
)
