file(REMOVE_RECURSE
  "CMakeFiles/encdns_scan.dir/doh_prober.cpp.o"
  "CMakeFiles/encdns_scan.dir/doh_prober.cpp.o.d"
  "CMakeFiles/encdns_scan.dir/dot_prober.cpp.o"
  "CMakeFiles/encdns_scan.dir/dot_prober.cpp.o.d"
  "CMakeFiles/encdns_scan.dir/permutation.cpp.o"
  "CMakeFiles/encdns_scan.dir/permutation.cpp.o.d"
  "CMakeFiles/encdns_scan.dir/scanner.cpp.o"
  "CMakeFiles/encdns_scan.dir/scanner.cpp.o.d"
  "CMakeFiles/encdns_scan.dir/space.cpp.o"
  "CMakeFiles/encdns_scan.dir/space.cpp.o.d"
  "libencdns_scan.a"
  "libencdns_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
