# Empty dependencies file for encdns_scan.
# This may be replaced when dependencies are built.
