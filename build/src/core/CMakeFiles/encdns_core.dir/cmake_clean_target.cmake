file(REMOVE_RECURSE
  "libencdns_core.a"
)
