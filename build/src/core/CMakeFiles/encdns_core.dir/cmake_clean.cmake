file(REMOVE_RECURSE
  "CMakeFiles/encdns_core.dir/experiments.cpp.o"
  "CMakeFiles/encdns_core.dir/experiments.cpp.o.d"
  "CMakeFiles/encdns_core.dir/implementation_survey.cpp.o"
  "CMakeFiles/encdns_core.dir/implementation_survey.cpp.o.d"
  "CMakeFiles/encdns_core.dir/protocol_matrix.cpp.o"
  "CMakeFiles/encdns_core.dir/protocol_matrix.cpp.o.d"
  "CMakeFiles/encdns_core.dir/report.cpp.o"
  "CMakeFiles/encdns_core.dir/report.cpp.o.d"
  "CMakeFiles/encdns_core.dir/study.cpp.o"
  "CMakeFiles/encdns_core.dir/study.cpp.o.d"
  "CMakeFiles/encdns_core.dir/timeline.cpp.o"
  "CMakeFiles/encdns_core.dir/timeline.cpp.o.d"
  "libencdns_core.a"
  "libencdns_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
