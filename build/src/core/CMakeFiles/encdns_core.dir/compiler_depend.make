# Empty compiler generated dependencies file for encdns_core.
# This may be replaced when dependencies are built.
