# Empty dependencies file for encdns_measure.
# This may be replaced when dependencies are built.
