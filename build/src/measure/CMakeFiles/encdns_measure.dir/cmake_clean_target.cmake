file(REMOVE_RECURSE
  "libencdns_measure.a"
)
