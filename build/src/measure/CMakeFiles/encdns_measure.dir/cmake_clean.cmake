file(REMOVE_RECURSE
  "CMakeFiles/encdns_measure.dir/local_probe.cpp.o"
  "CMakeFiles/encdns_measure.dir/local_probe.cpp.o.d"
  "CMakeFiles/encdns_measure.dir/performance.cpp.o"
  "CMakeFiles/encdns_measure.dir/performance.cpp.o.d"
  "CMakeFiles/encdns_measure.dir/reachability.cpp.o"
  "CMakeFiles/encdns_measure.dir/reachability.cpp.o.d"
  "CMakeFiles/encdns_measure.dir/targets.cpp.o"
  "CMakeFiles/encdns_measure.dir/targets.cpp.o.d"
  "libencdns_measure.a"
  "libencdns_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
