file(REMOVE_RECURSE
  "libencdns_proxy.a"
)
