# Empty compiler generated dependencies file for encdns_proxy.
# This may be replaced when dependencies are built.
