file(REMOVE_RECURSE
  "CMakeFiles/encdns_proxy.dir/proxy.cpp.o"
  "CMakeFiles/encdns_proxy.dir/proxy.cpp.o.d"
  "libencdns_proxy.a"
  "libencdns_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
