
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tls/certificate.cpp" "src/tls/CMakeFiles/encdns_tls.dir/certificate.cpp.o" "gcc" "src/tls/CMakeFiles/encdns_tls.dir/certificate.cpp.o.d"
  "/root/repo/src/tls/handshake.cpp" "src/tls/CMakeFiles/encdns_tls.dir/handshake.cpp.o" "gcc" "src/tls/CMakeFiles/encdns_tls.dir/handshake.cpp.o.d"
  "/root/repo/src/tls/intercept.cpp" "src/tls/CMakeFiles/encdns_tls.dir/intercept.cpp.o" "gcc" "src/tls/CMakeFiles/encdns_tls.dir/intercept.cpp.o.d"
  "/root/repo/src/tls/serialize.cpp" "src/tls/CMakeFiles/encdns_tls.dir/serialize.cpp.o" "gcc" "src/tls/CMakeFiles/encdns_tls.dir/serialize.cpp.o.d"
  "/root/repo/src/tls/trust_store.cpp" "src/tls/CMakeFiles/encdns_tls.dir/trust_store.cpp.o" "gcc" "src/tls/CMakeFiles/encdns_tls.dir/trust_store.cpp.o.d"
  "/root/repo/src/tls/verify.cpp" "src/tls/CMakeFiles/encdns_tls.dir/verify.cpp.o" "gcc" "src/tls/CMakeFiles/encdns_tls.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/encdns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/encdns_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
