file(REMOVE_RECURSE
  "libencdns_tls.a"
)
