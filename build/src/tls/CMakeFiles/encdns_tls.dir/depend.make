# Empty dependencies file for encdns_tls.
# This may be replaced when dependencies are built.
