file(REMOVE_RECURSE
  "CMakeFiles/encdns_tls.dir/certificate.cpp.o"
  "CMakeFiles/encdns_tls.dir/certificate.cpp.o.d"
  "CMakeFiles/encdns_tls.dir/handshake.cpp.o"
  "CMakeFiles/encdns_tls.dir/handshake.cpp.o.d"
  "CMakeFiles/encdns_tls.dir/intercept.cpp.o"
  "CMakeFiles/encdns_tls.dir/intercept.cpp.o.d"
  "CMakeFiles/encdns_tls.dir/serialize.cpp.o"
  "CMakeFiles/encdns_tls.dir/serialize.cpp.o.d"
  "CMakeFiles/encdns_tls.dir/trust_store.cpp.o"
  "CMakeFiles/encdns_tls.dir/trust_store.cpp.o.d"
  "CMakeFiles/encdns_tls.dir/verify.cpp.o"
  "CMakeFiles/encdns_tls.dir/verify.cpp.o.d"
  "libencdns_tls.a"
  "libencdns_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
