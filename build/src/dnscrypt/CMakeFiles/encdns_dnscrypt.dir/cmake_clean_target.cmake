file(REMOVE_RECURSE
  "libencdns_dnscrypt.a"
)
