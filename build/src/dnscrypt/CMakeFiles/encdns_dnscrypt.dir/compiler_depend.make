# Empty compiler generated dependencies file for encdns_dnscrypt.
# This may be replaced when dependencies are built.
