file(REMOVE_RECURSE
  "CMakeFiles/encdns_dnscrypt.dir/cert.cpp.o"
  "CMakeFiles/encdns_dnscrypt.dir/cert.cpp.o.d"
  "CMakeFiles/encdns_dnscrypt.dir/client.cpp.o"
  "CMakeFiles/encdns_dnscrypt.dir/client.cpp.o.d"
  "CMakeFiles/encdns_dnscrypt.dir/crypto.cpp.o"
  "CMakeFiles/encdns_dnscrypt.dir/crypto.cpp.o.d"
  "CMakeFiles/encdns_dnscrypt.dir/service.cpp.o"
  "CMakeFiles/encdns_dnscrypt.dir/service.cpp.o.d"
  "libencdns_dnscrypt.a"
  "libencdns_dnscrypt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_dnscrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
