# Empty compiler generated dependencies file for encdns_http.
# This may be replaced when dependencies are built.
