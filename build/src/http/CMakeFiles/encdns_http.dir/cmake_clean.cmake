file(REMOVE_RECURSE
  "CMakeFiles/encdns_http.dir/message.cpp.o"
  "CMakeFiles/encdns_http.dir/message.cpp.o.d"
  "CMakeFiles/encdns_http.dir/url.cpp.o"
  "CMakeFiles/encdns_http.dir/url.cpp.o.d"
  "libencdns_http.a"
  "libencdns_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
