file(REMOVE_RECURSE
  "libencdns_http.a"
)
