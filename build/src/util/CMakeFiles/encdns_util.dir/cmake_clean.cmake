file(REMOVE_RECURSE
  "CMakeFiles/encdns_util.dir/base64.cpp.o"
  "CMakeFiles/encdns_util.dir/base64.cpp.o.d"
  "CMakeFiles/encdns_util.dir/date.cpp.o"
  "CMakeFiles/encdns_util.dir/date.cpp.o.d"
  "CMakeFiles/encdns_util.dir/ipv4.cpp.o"
  "CMakeFiles/encdns_util.dir/ipv4.cpp.o.d"
  "CMakeFiles/encdns_util.dir/rng.cpp.o"
  "CMakeFiles/encdns_util.dir/rng.cpp.o.d"
  "CMakeFiles/encdns_util.dir/stats.cpp.o"
  "CMakeFiles/encdns_util.dir/stats.cpp.o.d"
  "CMakeFiles/encdns_util.dir/strings.cpp.o"
  "CMakeFiles/encdns_util.dir/strings.cpp.o.d"
  "CMakeFiles/encdns_util.dir/table.cpp.o"
  "CMakeFiles/encdns_util.dir/table.cpp.o.d"
  "libencdns_util.a"
  "libencdns_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
