file(REMOVE_RECURSE
  "libencdns_util.a"
)
