# Empty compiler generated dependencies file for encdns_util.
# This may be replaced when dependencies are built.
