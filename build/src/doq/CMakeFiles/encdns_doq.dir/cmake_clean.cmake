file(REMOVE_RECURSE
  "CMakeFiles/encdns_doq.dir/doq.cpp.o"
  "CMakeFiles/encdns_doq.dir/doq.cpp.o.d"
  "libencdns_doq.a"
  "libencdns_doq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_doq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
