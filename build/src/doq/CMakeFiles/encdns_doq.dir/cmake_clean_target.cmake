file(REMOVE_RECURSE
  "libencdns_doq.a"
)
