# Empty compiler generated dependencies file for encdns_doq.
# This may be replaced when dependencies are built.
