file(REMOVE_RECURSE
  "CMakeFiles/encdns_dns.dir/edns.cpp.o"
  "CMakeFiles/encdns_dns.dir/edns.cpp.o.d"
  "CMakeFiles/encdns_dns.dir/message.cpp.o"
  "CMakeFiles/encdns_dns.dir/message.cpp.o.d"
  "CMakeFiles/encdns_dns.dir/name.cpp.o"
  "CMakeFiles/encdns_dns.dir/name.cpp.o.d"
  "CMakeFiles/encdns_dns.dir/query.cpp.o"
  "CMakeFiles/encdns_dns.dir/query.cpp.o.d"
  "CMakeFiles/encdns_dns.dir/types.cpp.o"
  "CMakeFiles/encdns_dns.dir/types.cpp.o.d"
  "CMakeFiles/encdns_dns.dir/wire.cpp.o"
  "CMakeFiles/encdns_dns.dir/wire.cpp.o.d"
  "libencdns_dns.a"
  "libencdns_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
