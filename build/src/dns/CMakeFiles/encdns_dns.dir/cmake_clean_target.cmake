file(REMOVE_RECURSE
  "libencdns_dns.a"
)
