# Empty compiler generated dependencies file for encdns_dns.
# This may be replaced when dependencies are built.
