file(REMOVE_RECURSE
  "CMakeFiles/encdns_study.dir/encdns_study.cpp.o"
  "CMakeFiles/encdns_study.dir/encdns_study.cpp.o.d"
  "encdns_study"
  "encdns_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
