# Empty compiler generated dependencies file for encdns_study.
# This may be replaced when dependencies are built.
