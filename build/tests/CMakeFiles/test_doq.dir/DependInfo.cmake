
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/doq/test_doq.cpp" "tests/CMakeFiles/test_doq.dir/doq/test_doq.cpp.o" "gcc" "tests/CMakeFiles/test_doq.dir/doq/test_doq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/encdns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/encdns_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/encdns_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/encdns_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/proxy/CMakeFiles/encdns_proxy.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/encdns_world.dir/DependInfo.cmake"
  "/root/repo/build/src/dnscrypt/CMakeFiles/encdns_dnscrypt.dir/DependInfo.cmake"
  "/root/repo/build/src/doq/CMakeFiles/encdns_doq.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/encdns_client.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/encdns_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/encdns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/encdns_http.dir/DependInfo.cmake"
  "/root/repo/build/src/tls/CMakeFiles/encdns_tls.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/encdns_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/encdns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/encdns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
