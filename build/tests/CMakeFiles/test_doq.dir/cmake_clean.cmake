file(REMOVE_RECURSE
  "CMakeFiles/test_doq.dir/doq/test_doq.cpp.o"
  "CMakeFiles/test_doq.dir/doq/test_doq.cpp.o.d"
  "test_doq"
  "test_doq.pdb"
  "test_doq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
