# Empty dependencies file for test_doq.
# This may be replaced when dependencies are built.
