file(REMOVE_RECURSE
  "CMakeFiles/test_dns.dir/dns/test_edns.cpp.o"
  "CMakeFiles/test_dns.dir/dns/test_edns.cpp.o.d"
  "CMakeFiles/test_dns.dir/dns/test_message.cpp.o"
  "CMakeFiles/test_dns.dir/dns/test_message.cpp.o.d"
  "CMakeFiles/test_dns.dir/dns/test_name.cpp.o"
  "CMakeFiles/test_dns.dir/dns/test_name.cpp.o.d"
  "CMakeFiles/test_dns.dir/dns/test_query.cpp.o"
  "CMakeFiles/test_dns.dir/dns/test_query.cpp.o.d"
  "CMakeFiles/test_dns.dir/dns/test_wire.cpp.o"
  "CMakeFiles/test_dns.dir/dns/test_wire.cpp.o.d"
  "test_dns"
  "test_dns.pdb"
  "test_dns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
