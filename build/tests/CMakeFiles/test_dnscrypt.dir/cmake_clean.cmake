file(REMOVE_RECURSE
  "CMakeFiles/test_dnscrypt.dir/dnscrypt/test_dnscrypt.cpp.o"
  "CMakeFiles/test_dnscrypt.dir/dnscrypt/test_dnscrypt.cpp.o.d"
  "test_dnscrypt"
  "test_dnscrypt.pdb"
  "test_dnscrypt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnscrypt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
