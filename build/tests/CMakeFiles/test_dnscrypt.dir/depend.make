# Empty dependencies file for test_dnscrypt.
# This may be replaced when dependencies are built.
