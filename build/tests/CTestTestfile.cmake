# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_dns[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_tls[1]_include.cmake")
include("/root/repo/build/tests/test_http[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_resolver[1]_include.cmake")
include("/root/repo/build/tests/test_client[1]_include.cmake")
include("/root/repo/build/tests/test_dnscrypt[1]_include.cmake")
include("/root/repo/build/tests/test_doq[1]_include.cmake")
include("/root/repo/build/tests/test_world[1]_include.cmake")
include("/root/repo/build/tests/test_scan[1]_include.cmake")
include("/root/repo/build/tests/test_proxy[1]_include.cmake")
include("/root/repo/build/tests/test_measure[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
