# Empty dependencies file for bench_micro_tls.
# This may be replaced when dependencies are built.
