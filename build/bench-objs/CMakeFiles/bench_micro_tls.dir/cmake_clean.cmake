file(REMOVE_RECURSE
  "../bench/bench_micro_tls"
  "../bench/bench_micro_tls.pdb"
  "CMakeFiles/bench_micro_tls.dir/bench_micro_tls.cpp.o"
  "CMakeFiles/bench_micro_tls.dir/bench_micro_tls.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
