file(REMOVE_RECURSE
  "../bench/bench_fig13_doh_passivedns"
  "../bench/bench_fig13_doh_passivedns.pdb"
  "CMakeFiles/bench_fig13_doh_passivedns.dir/bench_fig13_doh_passivedns.cpp.o"
  "CMakeFiles/bench_fig13_doh_passivedns.dir/bench_fig13_doh_passivedns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_doh_passivedns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
