# Empty dependencies file for bench_fig13_doh_passivedns.
# This may be replaced when dependencies are built.
