file(REMOVE_RECURSE
  "libencdns_bench_common.a"
)
