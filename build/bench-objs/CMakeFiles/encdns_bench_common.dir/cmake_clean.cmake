file(REMOVE_RECURSE
  "CMakeFiles/encdns_bench_common.dir/common.cpp.o"
  "CMakeFiles/encdns_bench_common.dir/common.cpp.o.d"
  "libencdns_bench_common.a"
  "libencdns_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encdns_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
