# Empty dependencies file for encdns_bench_common.
# This may be replaced when dependencies are built.
