file(REMOVE_RECURSE
  "../bench/bench_table6_tls_interception"
  "../bench/bench_table6_tls_interception.pdb"
  "CMakeFiles/bench_table6_tls_interception.dir/bench_table6_tls_interception.cpp.o"
  "CMakeFiles/bench_table6_tls_interception.dir/bench_table6_tls_interception.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_tls_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
