# Empty compiler generated dependencies file for bench_table6_tls_interception.
# This may be replaced when dependencies are built.
