# Empty compiler generated dependencies file for bench_fig3_dot_resolvers.
# This may be replaced when dependencies are built.
