file(REMOVE_RECURSE
  "../bench/bench_fig3_dot_resolvers"
  "../bench/bench_fig3_dot_resolvers.pdb"
  "CMakeFiles/bench_fig3_dot_resolvers.dir/bench_fig3_dot_resolvers.cpp.o"
  "CMakeFiles/bench_fig3_dot_resolvers.dir/bench_fig3_dot_resolvers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_dot_resolvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
