# Empty compiler generated dependencies file for bench_micro_netflow.
# This may be replaced when dependencies are built.
