file(REMOVE_RECURSE
  "../bench/bench_micro_netflow"
  "../bench/bench_micro_netflow.pdb"
  "CMakeFiles/bench_micro_netflow.dir/bench_micro_netflow.cpp.o"
  "CMakeFiles/bench_micro_netflow.dir/bench_micro_netflow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
