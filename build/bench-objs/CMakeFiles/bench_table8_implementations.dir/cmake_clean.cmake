file(REMOVE_RECURSE
  "../bench/bench_table8_implementations"
  "../bench/bench_table8_implementations.pdb"
  "CMakeFiles/bench_table8_implementations.dir/bench_table8_implementations.cpp.o"
  "CMakeFiles/bench_table8_implementations.dir/bench_table8_implementations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_implementations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
