file(REMOVE_RECURSE
  "../bench/bench_fig11_dot_netflow"
  "../bench/bench_fig11_dot_netflow.pdb"
  "CMakeFiles/bench_fig11_dot_netflow.dir/bench_fig11_dot_netflow.cpp.o"
  "CMakeFiles/bench_fig11_dot_netflow.dir/bench_fig11_dot_netflow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dot_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
