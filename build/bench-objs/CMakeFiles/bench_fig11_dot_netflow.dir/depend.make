# Empty dependencies file for bench_fig11_dot_netflow.
# This may be replaced when dependencies are built.
