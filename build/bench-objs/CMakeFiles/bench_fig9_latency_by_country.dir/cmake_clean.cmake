file(REMOVE_RECURSE
  "../bench/bench_fig9_latency_by_country"
  "../bench/bench_fig9_latency_by_country.pdb"
  "CMakeFiles/bench_fig9_latency_by_country.dir/bench_fig9_latency_by_country.cpp.o"
  "CMakeFiles/bench_fig9_latency_by_country.dir/bench_fig9_latency_by_country.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_latency_by_country.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
