# Empty compiler generated dependencies file for bench_table2_dot_countries.
# This may be replaced when dependencies are built.
