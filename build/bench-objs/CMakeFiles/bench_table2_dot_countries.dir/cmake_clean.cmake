file(REMOVE_RECURSE
  "../bench/bench_table2_dot_countries"
  "../bench/bench_table2_dot_countries.pdb"
  "CMakeFiles/bench_table2_dot_countries.dir/bench_table2_dot_countries.cpp.o"
  "CMakeFiles/bench_table2_dot_countries.dir/bench_table2_dot_countries.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dot_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
