file(REMOVE_RECURSE
  "../bench/bench_table3_vantage_points"
  "../bench/bench_table3_vantage_points.pdb"
  "CMakeFiles/bench_table3_vantage_points.dir/bench_table3_vantage_points.cpp.o"
  "CMakeFiles/bench_table3_vantage_points.dir/bench_table3_vantage_points.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_vantage_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
