file(REMOVE_RECURSE
  "../bench/bench_local_resolver_dot"
  "../bench/bench_local_resolver_dot.pdb"
  "CMakeFiles/bench_local_resolver_dot.dir/bench_local_resolver_dot.cpp.o"
  "CMakeFiles/bench_local_resolver_dot.dir/bench_local_resolver_dot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_resolver_dot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
