# Empty dependencies file for bench_local_resolver_dot.
# This may be replaced when dependencies are built.
