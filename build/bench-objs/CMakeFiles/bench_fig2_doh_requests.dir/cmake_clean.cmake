file(REMOVE_RECURSE
  "../bench/bench_fig2_doh_requests"
  "../bench/bench_fig2_doh_requests.pdb"
  "CMakeFiles/bench_fig2_doh_requests.dir/bench_fig2_doh_requests.cpp.o"
  "CMakeFiles/bench_fig2_doh_requests.dir/bench_fig2_doh_requests.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_doh_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
