# Empty dependencies file for bench_fig2_doh_requests.
# This may be replaced when dependencies are built.
