# Empty dependencies file for bench_table5_conflict_ports.
# This may be replaced when dependencies are built.
