file(REMOVE_RECURSE
  "../bench/bench_fig12_dot_netblocks"
  "../bench/bench_fig12_dot_netblocks.pdb"
  "CMakeFiles/bench_fig12_dot_netblocks.dir/bench_fig12_dot_netblocks.cpp.o"
  "CMakeFiles/bench_fig12_dot_netblocks.dir/bench_fig12_dot_netblocks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dot_netblocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
