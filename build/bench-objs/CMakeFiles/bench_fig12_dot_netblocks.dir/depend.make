# Empty dependencies file for bench_fig12_dot_netblocks.
# This may be replaced when dependencies are built.
