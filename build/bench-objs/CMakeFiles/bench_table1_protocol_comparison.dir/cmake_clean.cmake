file(REMOVE_RECURSE
  "../bench/bench_table1_protocol_comparison"
  "../bench/bench_table1_protocol_comparison.pdb"
  "CMakeFiles/bench_table1_protocol_comparison.dir/bench_table1_protocol_comparison.cpp.o"
  "CMakeFiles/bench_table1_protocol_comparison.dir/bench_table1_protocol_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_protocol_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
