# Empty dependencies file for bench_doh_discovery.
# This may be replaced when dependencies are built.
