file(REMOVE_RECURSE
  "../bench/bench_doh_discovery"
  "../bench/bench_doh_discovery.pdb"
  "CMakeFiles/bench_doh_discovery.dir/bench_doh_discovery.cpp.o"
  "CMakeFiles/bench_doh_discovery.dir/bench_doh_discovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_doh_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
