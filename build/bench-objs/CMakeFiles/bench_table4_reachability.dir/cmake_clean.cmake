file(REMOVE_RECURSE
  "../bench/bench_table4_reachability"
  "../bench/bench_table4_reachability.pdb"
  "CMakeFiles/bench_table4_reachability.dir/bench_table4_reachability.cpp.o"
  "CMakeFiles/bench_table4_reachability.dir/bench_table4_reachability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
