# Empty dependencies file for bench_micro_scanner.
# This may be replaced when dependencies are built.
