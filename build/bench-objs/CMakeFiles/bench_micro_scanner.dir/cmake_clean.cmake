file(REMOVE_RECURSE
  "../bench/bench_micro_scanner"
  "../bench/bench_micro_scanner.pdb"
  "CMakeFiles/bench_micro_scanner.dir/bench_micro_scanner.cpp.o"
  "CMakeFiles/bench_micro_scanner.dir/bench_micro_scanner.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
