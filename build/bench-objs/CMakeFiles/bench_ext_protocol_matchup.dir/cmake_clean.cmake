file(REMOVE_RECURSE
  "../bench/bench_ext_protocol_matchup"
  "../bench/bench_ext_protocol_matchup.pdb"
  "CMakeFiles/bench_ext_protocol_matchup.dir/bench_ext_protocol_matchup.cpp.o"
  "CMakeFiles/bench_ext_protocol_matchup.dir/bench_ext_protocol_matchup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_protocol_matchup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
