# Empty compiler generated dependencies file for bench_ext_protocol_matchup.
# This may be replaced when dependencies are built.
