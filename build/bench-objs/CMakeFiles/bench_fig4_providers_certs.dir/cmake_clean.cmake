file(REMOVE_RECURSE
  "../bench/bench_fig4_providers_certs"
  "../bench/bench_fig4_providers_certs.pdb"
  "CMakeFiles/bench_fig4_providers_certs.dir/bench_fig4_providers_certs.cpp.o"
  "CMakeFiles/bench_fig4_providers_certs.dir/bench_fig4_providers_certs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_providers_certs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
