# Empty dependencies file for bench_fig4_providers_certs.
# This may be replaced when dependencies are built.
