# Empty compiler generated dependencies file for bench_table7_no_reuse.
# This may be replaced when dependencies are built.
