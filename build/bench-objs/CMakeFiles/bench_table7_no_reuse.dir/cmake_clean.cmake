file(REMOVE_RECURSE
  "../bench/bench_table7_no_reuse"
  "../bench/bench_table7_no_reuse.pdb"
  "CMakeFiles/bench_table7_no_reuse.dir/bench_table7_no_reuse.cpp.o"
  "CMakeFiles/bench_table7_no_reuse.dir/bench_table7_no_reuse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_no_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
