// Boundary behavior of fault::RetryPolicy's backoff schedule — the edges
// where an off-by-one either burns a whole extra timeout or skips a retry
// the budget allowed.
#include "fault/retry.hpp"

#include <gtest/gtest.h>

#include "sim/duration.hpp"
#include "util/rng.hpp"

namespace encdns::fault {
namespace {

RetryPolicy jitterless() {
  RetryPolicy policy;
  policy.base_backoff = sim::Millis{200.0};
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = sim::Millis{5000.0};
  policy.jitter = 0.0;
  return policy;
}

TEST(RetryPolicy, FirstDelayIsExactlyTheBase) {
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay(jitterless(), 0, rng).value, 200.0);
}

TEST(RetryPolicy, CapBindsAtTheExactCrossingAttempt) {
  // 200 * 2^k: 3200 at k=4, 6400 at k=5 — the cap must bind first at k=5
  // and the delay below the crossing must be untouched.
  util::Rng rng(1);
  const RetryPolicy policy = jitterless();
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 4, rng).value, 3200.0);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 5, rng).value, 5000.0);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 50, rng).value, 5000.0);
}

TEST(RetryPolicy, JitterIsCenteredAndBounded) {
  RetryPolicy policy = jitterless();
  policy.jitter = 0.5;  // +/- 25% of the capped delay
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double delay = backoff_delay(policy, 5, rng).value;
    EXPECT_GE(delay, 5000.0 * 0.75);
    EXPECT_LE(delay, 5000.0 * 1.25);
  }
}

TEST(RetryPolicy, ExtremeJitterNeverGoesNegative) {
  RetryPolicy policy = jitterless();
  policy.jitter = 4.0;  // spread far wider than the delay itself
  util::Rng rng(11);
  for (int i = 0; i < 200; ++i)
    EXPECT_GE(backoff_delay(policy, 2, rng).value, 0.0);
}

TEST(RetryPolicy, DelayIsAPureFunctionOfSeedAndAttempt) {
  RetryPolicy policy = jitterless();
  policy.jitter = 0.5;
  util::Rng a(99), b(99);
  for (int attempt = 0; attempt < 8; ++attempt)
    EXPECT_DOUBLE_EQ(backoff_delay(policy, attempt, a).value,
                     backoff_delay(policy, attempt, b).value)
        << "attempt " << attempt;
}

TEST(RetryPolicy, EachDelayConsumesExactlyOneDraw) {
  // The retry loop interleaves backoff draws with other per-session draws;
  // if backoff_delay ever consumed a different number of rng tokens the
  // whole session stream (and the golden corpus) would shift.
  RetryPolicy policy = jitterless();
  policy.jitter = 0.5;
  util::Rng a(123), b(123);
  (void)backoff_delay(policy, 0, a);
  (void)b.uniform(-1.0, 1.0);
  EXPECT_EQ(a.next(), b.next());
}

TEST(RetryPolicy, PersistentStatusesNeverRetry) {
  // A certificate rejection cannot change on attempt 2: the classifier is
  // what stops the loop from burning its remaining budget.
  EXPECT_FALSE(should_retry(client::QueryStatus::kOk));
  EXPECT_FALSE(should_retry(client::QueryStatus::kConnectFailed));
  EXPECT_FALSE(should_retry(client::QueryStatus::kTlsFailed));
  EXPECT_FALSE(should_retry(client::QueryStatus::kCertRejected));
  EXPECT_TRUE(should_retry(client::QueryStatus::kTimeout));
  EXPECT_TRUE(should_retry(client::QueryStatus::kBootstrapFailed));
}

}  // namespace
}  // namespace encdns::fault
