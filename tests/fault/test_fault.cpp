// Unit tests for the deterministic fault-injection layer: profile/env
// parsing, draw determinism, the retry/backoff/circuit-breaker helpers, and
// the rate-1.0 behavior of every Network transport hook.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "client/do53.hpp"
#include "client/dot.hpp"
#include "dns/query.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "world/world.hpp"

namespace encdns::fault {
namespace {

const util::Date kDay{2019, 3, 10};
const util::Ipv4 kDst{9, 9, 9, 9};

TEST(FaultProfile, DefaultIsOffCanonicalIsOn) {
  EXPECT_FALSE(FaultProfile{}.enabled());
  EXPECT_TRUE(FaultProfile::canonical().enabled());
  // Every fault class participates in the canonical profile.
  const FaultProfile c = FaultProfile::canonical();
  EXPECT_GT(c.syn_drop, 0.0);
  EXPECT_GT(c.connect_reset, 0.0);
  EXPECT_GT(c.exchange_reset, 0.0);
  EXPECT_GT(c.exchange_garble, 0.0);
  EXPECT_GT(c.servfail, 0.0);
  EXPECT_GT(c.tls_stall, 0.0);
  EXPECT_GT(c.udp_drop, 0.0);
  EXPECT_GT(c.latency_spike, 0.0);
  EXPECT_GT(c.flap_rate, 0.0);
  EXPECT_GT(c.exit_death, 0.0);
}

TEST(FaultProfile, EnvOverrideWins) {
  FaultProfile fallback;
  fallback.syn_drop = 0.25;

  ::setenv("ENCDNS_FAULTS", "canonical", 1);
  EXPECT_DOUBLE_EQ(FaultProfile::from_env(fallback).syn_drop,
                   FaultProfile::canonical().syn_drop);
  ::setenv("ENCDNS_FAULTS", "off", 1);
  EXPECT_FALSE(FaultProfile::from_env(fallback).enabled());
  ::setenv("ENCDNS_FAULTS", "ON", 1);  // case-insensitive
  EXPECT_TRUE(FaultProfile::from_env(fallback).enabled());
  ::unsetenv("ENCDNS_FAULTS");
  EXPECT_DOUBLE_EQ(FaultProfile::from_env(fallback).syn_drop, 0.25);
}

TEST(FaultInjector, DisabledConsumesNoRngTokens) {
  const FaultInjector injector(FaultProfile{}, 42);
  util::Rng rng(7);
  util::Rng untouched(7);
  const auto decision =
      injector.decide(Channel::kConnect, kDst, 853, kDay, rng);
  EXPECT_EQ(decision.kind, Decision::Kind::kNone);
  EXPECT_DOUBLE_EQ(decision.extra_latency.value, 0.0);
  EXPECT_FALSE(injector.exit_node_dies(1, rng));
  // Fault-free runs must stay byte-identical to the pre-hook build: the
  // caller's stream advanced by exactly zero tokens.
  EXPECT_EQ(rng.next(), untouched.next());
}

TEST(FaultInjector, EnabledConsumesExactlyOneToken) {
  const FaultInjector injector(FaultProfile::canonical(), 42);
  util::Rng rng(7);
  util::Rng mirror(7);
  (void)injector.decide(Channel::kUdp, kDst, 53, kDay, rng);
  (void)mirror.next();
  EXPECT_EQ(rng.next(), mirror.next());
}

TEST(FaultInjector, DecisionIsAFunctionOfSeedTargetAndToken) {
  const FaultInjector a(FaultProfile::canonical(), 42);
  const FaultInjector b(FaultProfile::canonical(), 42);
  for (int i = 0; i < 200; ++i) {
    util::Rng ra(static_cast<std::uint64_t>(i) + 1);
    util::Rng rb(static_cast<std::uint64_t>(i) + 1);
    const auto da = a.decide(Channel::kExchange, kDst, 853, kDay, ra);
    const auto db = b.decide(Channel::kExchange, kDst, 853, kDay, rb);
    EXPECT_EQ(da.kind, db.kind);
    EXPECT_DOUBLE_EQ(da.extra_latency.value, db.extra_latency.value);
  }
}

TEST(FaultInjector, RateOneAlwaysFires) {
  FaultProfile profile;
  profile.syn_drop = 1.0;
  const FaultInjector injector(profile, 1);
  util::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(injector.decide(Channel::kConnect, kDst, 853, kDay, rng).kind,
              Decision::Kind::kDrop);
    EXPECT_EQ(injector.decide(Channel::kProbe, kDst, 853, kDay, rng).kind,
              Decision::Kind::kDrop);
  }
  EXPECT_EQ(injector.counters().connect, 20u);
  EXPECT_EQ(injector.counters().probe, 20u);
  EXPECT_EQ(injector.counters().total(), 40u);
}

TEST(FaultInjector, ServfailFiresOnlyOnDnsPorts) {
  FaultProfile profile;
  profile.servfail = 1.0;
  const FaultInjector injector(profile, 1);
  util::Rng rng(3);
  EXPECT_EQ(injector.decide(Channel::kUdp, kDst, 53, kDay, rng).kind,
            Decision::Kind::kServfail);
  EXPECT_EQ(injector.decide(Channel::kExchange, kDst, 853, kDay, rng).kind,
            Decision::Kind::kServfail);
  // Port 443 carries HTTP framing, not bare DNS: no SERVFAIL patching there.
  EXPECT_EQ(injector.decide(Channel::kExchange, kDst, 443, kDay, rng).kind,
            Decision::Kind::kNone);
}

TEST(FaultInjector, LatencySpikeStaysWithinConfiguredBand) {
  FaultProfile profile;
  profile.latency_spike = 1.0;
  profile.spike_min = sim::Millis{100.0};
  profile.spike_max = sim::Millis{200.0};
  const FaultInjector injector(profile, 9);
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto d = injector.decide(Channel::kConnect, kDst, 443, kDay, rng);
    ASSERT_EQ(d.kind, Decision::Kind::kSpike);
    EXPECT_GE(d.extra_latency.value, 100.0);
    EXPECT_LE(d.extra_latency.value, 200.0);
  }
}

TEST(FaultInjector, FlappingWindowsAreStablePerDay) {
  FaultProfile profile;
  profile.flap_rate = 0.5;
  const FaultInjector injector(profile, 11);
  int flapping = 0;
  for (std::uint32_t host = 0; host < 400; ++host) {
    const util::Ipv4 addr{host * 2654435761u + 17u};
    const bool now = injector.flapping(addr, kDay);
    // Stateless keying: every query against this host today agrees.
    EXPECT_EQ(now, injector.flapping(addr, kDay));
    if (now) ++flapping;
  }
  // Roughly half the (host, day) windows flap at rate 0.5.
  EXPECT_GT(flapping, 120);
  EXPECT_LT(flapping, 280);
}

TEST(FaultInjector, ExitDeathAtRateOne) {
  FaultProfile profile;
  profile.exit_death = 1.0;
  const FaultInjector injector(profile, 2);
  util::Rng rng(8);
  EXPECT_TRUE(injector.exit_node_dies(123, rng));
}

TEST(ServfailReply, MatchesQueryAndCarriesServfail) {
  const auto query =
      dns::make_query(*dns::Name::parse("probe.example"), dns::RrType::kA, 77);
  for (const bool framed : {false, true}) {
    auto wire = query.encode();
    if (framed) {
      std::vector<std::uint8_t> tcp = {
          static_cast<std::uint8_t>(wire.size() >> 8),
          static_cast<std::uint8_t>(wire.size() & 0xFF)};
      tcp.insert(tcp.end(), wire.begin(), wire.end());
      wire = std::move(tcp);
    }
    const auto reply = make_servfail_reply(wire, framed);
    const std::size_t offset = framed ? 2 : 0;
    const auto message = dns::Message::decode(
        {reply.data() + offset, reply.size() - offset});
    ASSERT_TRUE(message);
    EXPECT_TRUE(dns::response_matches(query, *message));
    EXPECT_EQ(message->header.rcode, dns::RCode::kServFail);
    EXPECT_TRUE(message->answers.empty());
  }
}

TEST(Garble, CorruptsAndTruncates) {
  std::vector<std::uint8_t> payload(64, 0xAA);
  const auto original = payload;
  garble(payload);
  EXPECT_LT(payload.size(), original.size());
  EXPECT_NE(payload, std::vector<std::uint8_t>(payload.size(), 0xAA));
}

TEST(Retry, TransientClassificationIsExhaustive) {
  using client::QueryStatus;
  EXPECT_FALSE(is_transient(QueryStatus::kOk));
  EXPECT_TRUE(is_transient(QueryStatus::kTimeout));
  EXPECT_FALSE(is_transient(QueryStatus::kConnectFailed));
  EXPECT_TRUE(is_transient(QueryStatus::kConnectionReset));
  EXPECT_FALSE(is_transient(QueryStatus::kTlsFailed));
  EXPECT_FALSE(is_transient(QueryStatus::kCertRejected));
  EXPECT_TRUE(is_transient(QueryStatus::kBootstrapFailed));
  EXPECT_TRUE(is_transient(QueryStatus::kHttpError));
  EXPECT_TRUE(is_transient(QueryStatus::kProtocolError));
  // should_retry is is_transient minus success.
  EXPECT_FALSE(should_retry(QueryStatus::kOk));
  EXPECT_TRUE(should_retry(QueryStatus::kTimeout));
  EXPECT_FALSE(should_retry(QueryStatus::kCertRejected));
}

TEST(Retry, BackoffGrowsAndCaps) {
  RetryPolicy policy;
  policy.base_backoff = sim::Millis{100.0};
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = sim::Millis{500.0};
  policy.jitter = 0.0;  // isolate the exponential part
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 0, rng).value, 100.0);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 1, rng).value, 200.0);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 2, rng).value, 400.0);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 3, rng).value, 500.0);  // capped
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 9, rng).value, 500.0);
}

TEST(Retry, JitterIsBoundedAndDeterministic) {
  RetryPolicy policy;
  policy.base_backoff = sim::Millis{100.0};
  policy.jitter = 0.5;
  util::Rng a(33);
  util::Rng b(33);
  for (int i = 0; i < 50; ++i) {
    const double delay = backoff_delay(policy, 0, a).value;
    EXPECT_GE(delay, 75.0);
    EXPECT_LE(delay, 125.0);
    EXPECT_DOUBLE_EQ(delay, backoff_delay(policy, 0, b).value);
  }
}

TEST(CircuitBreaker, OpensAfterThresholdAndClearsOnSuccess) {
  CircuitBreaker breaker(3);
  EXPECT_FALSE(breaker.open(5));
  breaker.record_failure(5);
  breaker.record_failure(5);
  EXPECT_FALSE(breaker.open(5));
  breaker.record_failure(5);
  EXPECT_TRUE(breaker.open(5));
  EXPECT_EQ(breaker.open_count(), 1u);
  // One success closes the breaker and resets the strikes.
  breaker.record_success(5);
  EXPECT_FALSE(breaker.open(5));
  EXPECT_EQ(breaker.open_count(), 0u);
  // Keys are independent.
  breaker.record_failure(6);
  EXPECT_FALSE(breaker.open(6));
}

TEST(RobustnessReport, TalliesAccumulateAndPrint) {
  RobustnessReport report;
  report.client = {10, 8, 2};
  report.scanner = {4, 4, 0};
  report.proxy = {3, 2, 1};
  const LayerTally total = report.total();
  EXPECT_EQ(total.injected, 17u);
  EXPECT_EQ(total.recovered, 14u);
  EXPECT_EQ(total.surfaced, 3u);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("client"), std::string::npos);
  EXPECT_NE(text.find("scanner"), std::string::npos);
  EXPECT_NE(text.find("proxy"), std::string::npos);
  EXPECT_NE(text.find("17"), std::string::npos);
}

TEST(Channel, NamesAreDistinct) {
  std::set<std::string> names;
  for (const Channel channel :
       {Channel::kConnect, Channel::kProbe, Channel::kUdp, Channel::kExchange,
        Channel::kTls}) {
    names.insert(to_string(channel));
  }
  EXPECT_EQ(names.size(), 5u);
  EXPECT_EQ(names.count("unknown"), 0u);
}

// --- transport-hook behavior at rate 1.0 -----------------------------------
// A world whose profile forces one fault class lets us pin the exact
// QueryStatus each hook surfaces, without any statistical slack.

world::WorldConfig config_with(FaultProfile profile) {
  world::WorldConfig config;
  config.fault_profile = profile;
  return config;
}

TEST(NetworkHooks, SynDropTimesOutConnectAndFiltersProbe) {
  FaultProfile profile;
  profile.syn_drop = 1.0;
  world::World world(config_with(profile));
  const auto vantage = world.make_clean_vantage("US");
  util::Rng rng(4);

  const auto connect = world.network().tcp_connect(
      vantage.context, rng, world::addrs::kCloudflarePrimary, 853, kDay,
      sim::Millis{30000.0});
  EXPECT_EQ(connect.status, net::Network::ConnectResult::Status::kTimeout);
  EXPECT_DOUBLE_EQ(connect.latency.value, 30000.0);  // caller's deadline

  const auto probe = world.network().probe_tcp(
      vantage.context, rng, world::addrs::kCloudflarePrimary, 853, kDay);
  EXPECT_EQ(probe.status, net::Network::ProbeStatus::kFiltered);
}

TEST(NetworkHooks, ConnectResetSurfacesAsConnectionReset) {
  FaultProfile profile;
  profile.connect_reset = 1.0;
  world::World world(config_with(profile));
  const auto vantage = world.make_clean_vantage("US");
  util::Rng rng(4);
  client::Do53Client client(world.network(), vantage.context, 1);
  const auto outcome =
      client.query_tcp(world::addrs::kCloudflarePrimary,
                       world.unique_probe_name(rng), dns::RrType::kA, kDay);
  EXPECT_EQ(outcome.status, client::QueryStatus::kConnectionReset);
}

TEST(NetworkHooks, ExchangeResetTearsDownEstablishedStream) {
  FaultProfile profile;
  profile.exchange_reset = 1.0;
  world::World world(config_with(profile));
  const auto vantage = world.make_clean_vantage("US");
  util::Rng rng(4);
  client::Do53Client client(world.network(), vantage.context, 1);
  const auto outcome =
      client.query_tcp(world::addrs::kCloudflarePrimary,
                       world.unique_probe_name(rng), dns::RrType::kA, kDay);
  EXPECT_EQ(outcome.status, client::QueryStatus::kConnectionReset);
}

TEST(NetworkHooks, TlsStallSurfacesAsTransientTimeout) {
  FaultProfile profile;
  profile.tls_stall = 1.0;
  world::World world(config_with(profile));
  const auto vantage = world.make_clean_vantage("US");
  util::Rng rng(4);
  client::DotClient client(world.network(), vantage.context, 1);
  client::DotClient::Options options;
  options.profile = client::PrivacyProfile::kOpportunistic;
  const auto outcome =
      client.query(world::addrs::kCloudflarePrimary,
                   world.unique_probe_name(rng), dns::RrType::kA, kDay, options);
  // kTimeout (transient, retryable), NOT kTlsFailed (persistent): a stalled
  // handshake against a known-good endpoint deserves another attempt.
  EXPECT_EQ(outcome.status, client::QueryStatus::kTimeout);
  EXPECT_TRUE(is_transient(outcome.status));
}

TEST(NetworkHooks, ServfailBurstYieldsWellFormedServfail) {
  FaultProfile profile;
  profile.servfail = 1.0;
  world::World world(config_with(profile));
  const auto vantage = world.make_clean_vantage("US");
  util::Rng rng(4);
  client::Do53Client client(world.network(), vantage.context, 1);
  const auto outcome =
      client.query_udp(world::addrs::kGooglePrimary,
                       world.unique_probe_name(rng), dns::RrType::kA, kDay);
  // The response parses and matches the query — the paper's "Incorrect"
  // bucket — rather than failing at the transport.
  ASSERT_EQ(outcome.status, client::QueryStatus::kOk);
  ASSERT_TRUE(outcome.response);
  EXPECT_EQ(outcome.response->header.rcode, dns::RCode::kServFail);
  EXPECT_FALSE(outcome.answered());
}

TEST(NetworkHooks, GarbledExchangeSurfacesAsProtocolError) {
  FaultProfile profile;
  profile.exchange_garble = 1.0;
  world::World world(config_with(profile));
  const auto vantage = world.make_clean_vantage("US");
  util::Rng rng(4);
  client::Do53Client client(world.network(), vantage.context, 1);
  const auto outcome =
      client.query_tcp(world::addrs::kCloudflarePrimary,
                       world.unique_probe_name(rng), dns::RrType::kA, kDay);
  EXPECT_EQ(outcome.status, client::QueryStatus::kProtocolError);
  EXPECT_TRUE(is_transient(outcome.status));
}

TEST(NetworkHooks, UdpDropTimesOut) {
  FaultProfile profile;
  profile.udp_drop = 1.0;
  world::World world(config_with(profile));
  const auto vantage = world.make_clean_vantage("US");
  util::Rng rng(4);
  client::Do53Client client(world.network(), vantage.context, 1);
  client::Do53Client::Options options;
  options.retry_tcp_on_truncation = false;
  const auto outcome =
      client.query_udp(world::addrs::kGooglePrimary,
                       world.unique_probe_name(rng), dns::RrType::kA, kDay,
                       options);
  EXPECT_EQ(outcome.status, client::QueryStatus::kTimeout);
}

TEST(NetworkHooks, DisabledInjectionMatchesSeedBehavior) {
  // Two worlds, one with the hooks explicitly disabled mid-flight: byte-for-
  // byte identical outcomes, because decide() never touches the caller's rng
  // stream when the profile is off.
  world::World baseline;
  world::World hooked;
  hooked.disable_fault_injection();
  util::Rng rng_a(6);
  util::Rng rng_b(6);
  const auto va = baseline.make_clean_vantage("DE");
  const auto vb = hooked.make_clean_vantage("DE");
  client::DotClient ca(baseline.network(), va.context, 9);
  client::DotClient cb(hooked.network(), vb.context, 9);
  const auto qa = baseline.unique_probe_name(rng_a);
  const auto qb = hooked.unique_probe_name(rng_b);
  const auto oa =
      ca.query(world::addrs::kCloudflarePrimary, qa, dns::RrType::kA, kDay);
  const auto ob =
      cb.query(world::addrs::kCloudflarePrimary, qb, dns::RrType::kA, kDay);
  EXPECT_EQ(oa.status, ob.status);
  EXPECT_DOUBLE_EQ(oa.latency.value, ob.latency.value);
}

}  // namespace
}  // namespace encdns::fault
