#include <gtest/gtest.h>

#include "dnscrypt/cert.hpp"
#include "dnscrypt/client.hpp"
#include "dnscrypt/crypto.hpp"
#include "dnscrypt/service.hpp"
#include "world/world.hpp"

namespace encdns::dnscrypt {
namespace {

const util::Date kDay{2019, 3, 10};

TEST(DnscryptCert, TxtRoundTrip) {
  Certificate cert;
  cert.serial = 42;
  cert.ts_start = {2019, 2, 1};
  cert.ts_end = {2019, 8, 1};
  cert.resolver_public_key = 0xAABBCCDDEEFF0011ULL;
  cert.signer_public_key = 0x1122334455667788ULL;
  const auto parsed = Certificate::from_txt(cert.to_txt());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->serial, 42u);
  EXPECT_EQ(parsed->ts_start, cert.ts_start);
  EXPECT_EQ(parsed->ts_end, cert.ts_end);
  EXPECT_EQ(parsed->resolver_public_key, cert.resolver_public_key);
  EXPECT_EQ(parsed->signer_public_key, cert.signer_public_key);
  EXPECT_TRUE(parsed->signature_valid);
}

TEST(DnscryptCert, RejectsGarbageTxt) {
  EXPECT_FALSE(Certificate::from_txt(""));
  EXPECT_FALSE(Certificate::from_txt("v=spf1 include:_spf.example.com ~all"));
  EXPECT_FALSE(Certificate::from_txt("DNSC|es=1|serial=x"));
}

TEST(DnscryptCert, VerificationMatrix) {
  const auto provider = ProviderKey::derive("2.dnscrypt-cert.opendns.com");
  Certificate cert;
  cert.ts_start = {2019, 1, 1};
  cert.ts_end = {2019, 12, 31};
  cert.resolver_public_key = 7;
  cert.signer_public_key = provider.public_key;
  EXPECT_EQ(verify(cert, provider, kDay), CertVerdict::kValid);

  auto expired = cert;
  expired.ts_end = {2019, 2, 1};
  EXPECT_EQ(verify(expired, provider, kDay), CertVerdict::kExpired);

  auto future = cert;
  future.ts_start = {2019, 6, 1};
  EXPECT_EQ(verify(future, provider, kDay), CertVerdict::kNotYetValid);

  auto missigned = cert;
  missigned.signer_public_key ^= 1;
  EXPECT_EQ(verify(missigned, provider, kDay), CertVerdict::kWrongSigner);

  auto broken = cert;
  broken.signature_valid = false;
  EXPECT_EQ(verify(broken, provider, kDay), CertVerdict::kBadSignature);

  auto vnext = cert;
  vnext.es_version = 9;
  EXPECT_EQ(verify(vnext, provider, kDay), CertVerdict::kUnsupportedVersion);
}

TEST(DnscryptCrypto, SharedSecretIsCommutative) {
  const std::uint64_t client_sk = 111, resolver_sk = 222;
  const std::uint64_t client_pk = util::mix64(client_sk);
  const std::uint64_t resolver_pk = util::mix64(resolver_sk);
  EXPECT_EQ(shared_secret(client_sk, resolver_pk),
            shared_secret(resolver_sk, client_pk));
  EXPECT_NE(shared_secret(client_sk, resolver_pk),
            shared_secret(client_sk + 1, resolver_pk));
}

TEST(DnscryptCrypto, SealOpenRoundTrip) {
  const std::vector<std::uint8_t> plain = {1, 2, 3, 4, 5};
  const std::uint64_t secret = 0xFEED;
  const auto boxed = seal(plain, /*nonce=*/99, /*client_pk=*/7, secret);
  EXPECT_EQ(boxed.size() % kPadBlock, 24u);  // header + padded blocks
  std::uint64_t sender = 0, nonce = 0;
  const auto opened = open(boxed, secret, &sender, &nonce);
  ASSERT_TRUE(opened);
  EXPECT_EQ(*opened, plain);
  EXPECT_EQ(sender, 7u);
  EXPECT_EQ(nonce, 99u);
}

TEST(DnscryptCrypto, PaddingHidesLength) {
  const std::uint64_t secret = 1;
  const auto a = seal(std::vector<std::uint8_t>(10, 0xAA), 1, 2, secret);
  const auto b = seal(std::vector<std::uint8_t>(40, 0xBB), 1, 2, secret);
  EXPECT_EQ(a.size(), b.size());  // both inside one 64-byte block
}

TEST(DnscryptCrypto, TamperDetection) {
  const std::vector<std::uint8_t> plain = {9, 9, 9};
  auto boxed = seal(plain, 5, 6, 0xABC);
  boxed[30] ^= 1;  // flip a ciphertext bit
  EXPECT_FALSE(open(boxed, 0xABC));
  // Wrong secret also fails the MAC.
  const auto intact = seal(plain, 5, 6, 0xABC);
  EXPECT_FALSE(open(intact, 0xABD));
  // Truncated input.
  EXPECT_FALSE(open(std::vector<std::uint8_t>(10), 0xABC));
}

TEST(DnscryptCrypto, PeekClientKey) {
  const auto boxed = seal(std::vector<std::uint8_t>{1}, 2, 0xC11E57, 3);
  EXPECT_EQ(*peek_client_key(boxed), 0xC11E57u);
  EXPECT_FALSE(peek_client_key(std::vector<std::uint8_t>(4)));
}

// --- end-to-end through the world --------------------------------------------

world::World& shared_world() {
  static world::World world;
  return world;
}

TEST(DnscryptEndToEnd, OpenDnsResolvesProbeName) {
  world::World& world = shared_world();
  const auto vantage = world.make_clean_vantage("US");
  DnscryptClient client(world.network(), vantage.context, 71);
  const auto provider = ProviderKey::derive("2.dnscrypt-cert.opendns.com");
  util::Rng rng(72);
  const auto outcome =
      client.query(util::Ipv4{208, 67, 220, 220}, provider,
                   world.unique_probe_name(rng), dns::RrType::kA, kDay);
  ASSERT_TRUE(outcome.answered()) << to_string(outcome.status);
  EXPECT_EQ(*outcome.response->first_a(), world.probe_answer());
}

TEST(DnscryptEndToEnd, CertificateCachedAcrossQueries) {
  world::World& world = shared_world();
  const auto vantage = world.make_clean_vantage("US");
  DnscryptClient client(world.network(), vantage.context, 73);
  const auto provider = ProviderKey::derive("2.dnscrypt-cert.opendns.com");
  util::Rng rng(74);
  const auto first = client.query(util::Ipv4{208, 67, 220, 220}, provider,
                                  world.unique_probe_name(rng), dns::RrType::kA,
                                  kDay);
  const auto second = client.query(util::Ipv4{208, 67, 220, 220}, provider,
                                   world.unique_probe_name(rng), dns::RrType::kA,
                                   kDay);
  ASSERT_TRUE(first.answered());
  ASSERT_TRUE(second.answered());
  // The second query skips the TXT bootstrap: only the sealed exchange.
  EXPECT_DOUBLE_EQ(second.latency.value, second.transaction_latency.value);
  EXPECT_GT(first.latency.value, first.transaction_latency.value);
}

TEST(DnscryptEndToEnd, WrongProviderKeyRejected) {
  world::World& world = shared_world();
  const auto vantage = world.make_clean_vantage("US");
  DnscryptClient client(world.network(), vantage.context, 75);
  // The right provider name (so the TXT bootstrap succeeds) but a different
  // long-term key than the certificate is signed with.
  auto wrong = ProviderKey::derive("2.dnscrypt-cert.opendns.com");
  wrong.public_key ^= 0xBAD;
  util::Rng rng(76);
  const auto outcome =
      client.query(util::Ipv4{208, 67, 220, 220}, wrong,
                   world.unique_probe_name(rng), dns::RrType::kA, kDay);
  EXPECT_EQ(outcome.status, client::QueryStatus::kCertRejected);
}

TEST(DnscryptEndToEnd, YandexDeploymentServes) {
  world::World& world = shared_world();
  ASSERT_GE(world.dnscrypt_deployments().size(), 3u);
  const auto vantage = world.make_clean_vantage("RU");
  DnscryptClient client(world.network(), vantage.context, 77);
  const auto provider = ProviderKey::derive("2.dnscrypt-cert.browser.yandex.net");
  util::Rng rng(78);
  const auto outcome =
      client.query(util::Ipv4{77, 88, 8, 88}, provider,
                   world.unique_probe_name(rng), dns::RrType::kA, kDay);
  EXPECT_TRUE(outcome.answered());
}

TEST(DnscryptService, ExpiredCertificateAborts) {
  resolver::AuthoritativeUniverse universe;
  DnscryptServiceConfig config;
  config.provider_name = "2.dnscrypt-cert.stale.example";
  config.backend = std::make_shared<resolver::ServfailBackend>();
  config.cert_end = {2018, 6, 1};  // long expired
  auto service = std::make_shared<DnscryptService>(config);

  net::Network network;
  net::Pop pop;
  pop.location = net::Location{{39, -98}, "US", 1};
  pop.service = service;
  network.bind(net::Binding{util::Ipv4{10, 0, 0, 1}, {pop}});

  net::ClientContext context;
  context.location = pop.location;
  DnscryptClient client(network, context, 79);
  util::Rng rng(80);
  const auto outcome = client.query(
      util::Ipv4{10, 0, 0, 1}, ProviderKey::derive(config.provider_name),
      *dns::Name::parse("x.example"), dns::RrType::kA, kDay);
  EXPECT_EQ(outcome.status, client::QueryStatus::kCertRejected);
}

}  // namespace
}  // namespace encdns::dnscrypt
