// The multi-year adoption trend engine (DESIGN.md §16): rate-model
// semantics (launch gating, event multipliers), the dynamics visible in the
// monthly series, thread-count invariance of the full result bytes,
// cancellation on a shard prefix, checkpoint save/resume equality, and the
// fixed-memory property the day-retirement design exists for.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/checkpoint_hook.hpp"
#include "traffic/codec.hpp"
#include "traffic/trend_study.hpp"
#include "util/bytes.hpp"

namespace encdns::traffic {
namespace {

std::vector<std::uint8_t> result_bytes(const TrendStudyResults& results) {
  util::ByteWriter w;
  encode_trend_results(w, results);
  return w.take();
}

TrendStudyConfig quick_config() {
  TrendStudyConfig config;
  config.scale = 0.02;
  return config;
}

// A single-provider model with flat growth and no churn, so the only
// rate-shaping inputs are launch gating and the event list under test.
TrendProvider flat_provider() {
  TrendProvider provider;
  provider.name = "flat";
  provider.resolver = util::Ipv4{192, 0, 2, 1};
  provider.launch = util::Date{2019, 1, 1};
  provider.base_daily_flows = 1000.0;
  provider.monthly_growth = 1.0;
  provider.client_space = 10000;
  provider.address_base = util::Ipv4{10, 0, 0, 0}.value();
  return provider;
}

TEST(TrendStudy, RateIsZeroBeforeLaunchAndPositiveAfter) {
  const TrendStudy study(quick_config());
  for (const auto& provider : study.providers()) {
    EXPECT_EQ(study.daily_rate(provider, provider.launch.plus_days(-1)), 0.0)
        << provider.name;
    EXPECT_GT(study.daily_rate(provider, provider.launch), 0.0)
        << provider.name;
  }
}

TEST(TrendStudy, EventMultiplierScalesTheRateExactly) {
  // Same provider, same seed, same day: the day-noise factor is a pure
  // function of (seed, provider, day), so the rate ratio between a config
  // with a x0.45 window and one with a x1.0 marker is exactly 0.45.
  const util::Date day{2019, 6, 15};
  AdoptionEvent window;
  window.kind = AdoptionEvent::Kind::kCensorship;
  window.from = util::Date{2019, 6, 1};
  window.to = util::Date{2019, 7, 1};
  window.multiplier = 0.45;
  window.label = "test window";

  TrendStudyConfig treated;
  treated.providers = {flat_provider()};
  treated.events = {window};
  TrendStudyConfig control = treated;
  control.events[0].multiplier = 1.0;

  const TrendStudy treated_study(treated);
  const TrendStudy control_study(control);
  const double treated_rate =
      treated_study.daily_rate(treated_study.providers()[0], day);
  const double control_rate =
      control_study.daily_rate(control_study.providers()[0], day);
  ASSERT_GT(control_rate, 0.0);
  EXPECT_DOUBLE_EQ(treated_rate, control_rate * 0.45);
  // Outside the window the two models agree.
  const util::Date outside{2019, 8, 1};
  EXPECT_DOUBLE_EQ(treated_study.daily_rate(treated_study.providers()[0], outside),
                   control_study.daily_rate(control_study.providers()[0], outside));
}

TEST(TrendStudy, EventWithProviderAppliesOnlyToThatProvider) {
  TrendProvider other = flat_provider();
  other.name = "other";
  other.resolver = util::Ipv4{192, 0, 2, 2};
  other.address_base = util::Ipv4{11, 0, 0, 0}.value();
  AdoptionEvent flip;
  flip.kind = AdoptionEvent::Kind::kBrowserDefault;
  flip.provider = "flat";
  flip.from = util::Date{2019, 6, 1};
  flip.multiplier = 2.0;
  flip.label = "default flip";
  TrendStudyConfig config;
  config.providers = {flat_provider(), other};
  config.events = {flip};
  TrendStudyConfig baseline = config;
  baseline.events[0].multiplier = 1.0;

  const TrendStudy with(config), without(baseline);
  const util::Date day{2019, 9, 1};
  EXPECT_DOUBLE_EQ(with.daily_rate(with.providers()[0], day),
                   2.0 * without.daily_rate(without.providers()[0], day));
  EXPECT_DOUBLE_EQ(with.daily_rate(with.providers()[1], day),
                   without.daily_rate(without.providers()[1], day));
}

TEST(TrendStudy, MonthlySeriesShowsLaunchGrowthDipAndFlip) {
  TrendStudyResults results = TrendStudy(quick_config()).run();
  ASSERT_EQ(results.days_processed, results.days_planned);

  const TrendProviderSeries* cloudflare = results.provider("cloudflare");
  ASSERT_NE(cloudflare, nullptr);
  // No months before the provider existed.
  ASSERT_FALSE(cloudflare->monthly.empty());
  EXPECT_EQ(cloudflare->monthly.front().month, (util::Date{2018, 4, 1}));
  // The censorship window (Nov 2019 – Feb 2020) dips below the preceding
  // summer despite compounding growth.
  const TrendMonth* before = cloudflare->month(util::Date{2019, 7, 1});
  const TrendMonth* dipped = cloudflare->month(util::Date{2020, 1, 1});
  ASSERT_NE(before, nullptr);
  ASSERT_NE(dipped, nullptr);
  EXPECT_LT(dipped->records, before->records);
  // The Firefox default flip (Feb 2020) more than recovers it.
  const TrendMonth* flipped = cloudflare->month(util::Date{2020, 7, 1});
  ASSERT_NE(flipped, nullptr);
  EXPECT_GT(flipped->records, 3 * dipped->records);

  // Distinct clients: month estimates are positive and the all-time merge
  // is at least any single month (a union can only grow).
  std::uint64_t max_month = 0;
  for (const auto& month : cloudflare->monthly)
    max_month = std::max(max_month, month.clients_estimated);
  EXPECT_GT(max_month, 0u);
  EXPECT_GE(cloudflare->clients_estimated, max_month / 2);
  EXPECT_GT(results.clients_estimated_total(), 0u);
  EXPECT_EQ(results.sample.size(), quick_config().sample_rows);
}

TEST(TrendStudy, HllTracksExactClientCountsAtValidationScale) {
  TrendStudyConfig config = quick_config();
  config.validate_exact = true;
  TrendStudyResults results = TrendStudy(config).run();
  for (const auto& provider : results.providers) {
    ASSERT_GT(provider.clients_exact, 0u) << provider.name;
    const double rel_error =
        std::abs(static_cast<double>(provider.clients_estimated) -
                 static_cast<double>(provider.clients_exact)) /
        static_cast<double>(provider.clients_exact);
    EXPECT_LE(rel_error, 3.0 * Hll(config.hll_precision).relative_error_bound())
        << provider.name;
  }
}

TEST(TrendStudy, NetflowThreadCountInvariance) {
  // The determinism contract: ENCDNS_THREADS must not leak into any result
  // byte — counters, month series, sample rows, or sketch registers.
  std::optional<std::vector<std::uint8_t>> reference;
  for (const char* threads : {"1", "2", "8"}) {
    setenv("ENCDNS_THREADS", threads, 1);
    TrendStudyConfig config = quick_config();
    config.thread_count = 0;  // resolve through the env knob
    const auto bytes = result_bytes(TrendStudy(config).run());
    if (!reference) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, *reference) << "ENCDNS_THREADS=" << threads;
    }
  }
  unsetenv("ENCDNS_THREADS");
}

TEST(TrendStudy, PreTrippedCancelProcessesNothing) {
  exec::CancelToken cancel;
  cancel.cancel("test");
  TrendStudyConfig config = quick_config();
  config.cancel = &cancel;
  TrendStudyResults results = TrendStudy(config).run();
  EXPECT_EQ(results.days_processed, 0u);
  EXPECT_EQ(results.total_records, 0u);
  EXPECT_GT(results.days_planned, 0u);
}

class MemoryHook : public exec::CheckpointHook {
 public:
  std::optional<std::vector<std::uint8_t>> load() override { return state_; }
  void save(const std::vector<std::uint8_t>& state) override {
    state_ = state;
    ++saves_;
  }
  std::optional<std::vector<std::uint8_t>> state_;
  int saves_ = 0;
};

TEST(TrendStudy, ResumeFromGroupCheckpointMatchesUninterruptedRun) {
  const auto uninterrupted = result_bytes(TrendStudy(quick_config()).run());

  // First run: save at every group boundary (3 saves for 4 groups).
  MemoryHook hook;
  TrendStudyConfig first = quick_config();
  first.checkpoint = &hook;
  const auto with_hook = result_bytes(TrendStudy(first).run());
  EXPECT_EQ(with_hook, uninterrupted);
  EXPECT_EQ(hook.saves_, 3);
  ASSERT_TRUE(hook.state_.has_value());

  // Second run resumes from the last saved group boundary — as after a
  // SIGKILL — and must land on the identical bytes.
  MemoryHook resume;
  resume.state_ = hook.state_;
  TrendStudyConfig second = quick_config();
  second.checkpoint = &resume;
  EXPECT_EQ(result_bytes(TrendStudy(second).run()), uninterrupted);
}

TEST(TrendStudy, CorruptCheckpointFailsClosed) {
  MemoryHook hook;
  TrendStudyConfig first = quick_config();
  first.checkpoint = &hook;
  (void)TrendStudy(first).run();
  ASSERT_TRUE(hook.state_.has_value());
  (*hook.state_)[hook.state_->size() / 2] ^= 0xFF;
  MemoryHook corrupted;
  corrupted.state_ = hook.state_;
  TrendStudyConfig second = quick_config();
  second.checkpoint = &corrupted;
  EXPECT_THROW((void)TrendStudy(second).run(), util::CodecError);
}

TEST(TrendStudy, PeakTrackedBytesStaysFlatAsScaleGrows) {
  // Day retirement bounds live state by the staging batch plus the month
  // tables: quadrupling the flow volume must not move the high-water mark
  // by more than the sketch/accumulator slack.
  TrendStudyConfig small = quick_config();
  TrendStudyConfig large = quick_config();
  large.scale = 4 * small.scale;
  const auto small_peak = TrendStudy(small).run().peak_tracked_bytes;
  const auto large_run = TrendStudy(large).run();
  ASSERT_GT(large_run.total_records, 0u);
  EXPECT_GT(small_peak, 0u);
  EXPECT_LE(large_run.peak_tracked_bytes, small_peak + small_peak / 2)
      << "4x the volume should not grow live state by more than 50%";
}

}  // namespace
}  // namespace encdns::traffic
