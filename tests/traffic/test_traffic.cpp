#include <gtest/gtest.h>

#include "traffic/backbone.hpp"
#include "traffic/netflow.hpp"
#include "traffic/netflow_study.hpp"
#include "traffic/passive_dns.hpp"
#include "traffic/scan_detector.hpp"

namespace encdns::traffic {
namespace {

RawFlow dot_flow(util::Ipv4 src, util::Ipv4 dst, std::uint32_t packets,
                 util::Date date = {2018, 8, 1}) {
  RawFlow flow;
  flow.src = src;
  flow.dst = dst;
  flow.src_port = 40000;
  flow.dst_port = 853;
  flow.packets = packets;
  flow.bytes = packets * 110ULL;
  flow.complete_session = true;
  flow.date = date;
  return flow;
}

TEST(NetflowCollector, SamplingRateApproximatelyHonored) {
  NetflowCollector collector(1.0 / 100.0, 1);
  int exported = 0;
  const int flows = 20000;
  for (int i = 0; i < flows; ++i) {
    if (collector.observe(dot_flow(util::Ipv4{114, 0, 0, 1},
                                   util::Ipv4{1, 1, 1, 1}, 20)))
      ++exported;
  }
  // P(export) ~= 1 - (1-rate)^packets ~= 18%.
  EXPECT_NEAR(exported / static_cast<double>(flows), 0.18, 0.03);
  EXPECT_EQ(collector.flows_seen(), static_cast<std::uint64_t>(flows));
}

TEST(NetflowCollector, FullSamplingExportsEverything) {
  NetflowCollector collector(1.0, 2);
  const auto record = collector.observe(
      dot_flow(util::Ipv4{114, 0, 0, 1}, util::Ipv4{1, 1, 1, 1}, 10));
  ASSERT_TRUE(record);
  EXPECT_EQ(record->dst_port, 853);
  EXPECT_TRUE(record->tcp_flags & tcpflags::kSyn);
  EXPECT_TRUE(record->tcp_flags & tcpflags::kAck);
  EXPECT_TRUE(record->tcp_flags & tcpflags::kFin);
  EXPECT_FALSE(record->single_syn());
}

TEST(NetflowCollector, LoneSynProbeExportsAsSingleSyn) {
  NetflowCollector collector(1.0, 3);
  RawFlow probe = dot_flow(util::Ipv4{162, 142, 125, 7}, util::Ipv4{1, 1, 1, 1}, 1);
  probe.complete_session = false;
  const auto record = collector.observe(probe);
  ASSERT_TRUE(record);
  EXPECT_TRUE(record->single_syn());
  EXPECT_EQ(record->tcp_flags, tcpflags::kSyn);
}

TEST(NetflowCollector, SampledBytesScale) {
  NetflowCollector collector(1.0, 4);
  const auto record = collector.observe(
      dot_flow(util::Ipv4{114, 0, 0, 1}, util::Ipv4{1, 1, 1, 1}, 20));
  ASSERT_TRUE(record);
  EXPECT_EQ(record->bytes, 20 * 110ULL * record->packets / 20);
}

TEST(NetflowCollector, UdpSinglePacket) {
  NetflowCollector collector(1.0, 5);
  RawFlow udp;
  udp.src = util::Ipv4{114, 0, 0, 2};
  udp.dst = util::Ipv4{8, 8, 8, 8};
  udp.dst_port = 53;
  udp.protocol = kProtoUdp;
  udp.packets = 1;
  udp.bytes = 80;
  udp.date = {2018, 8, 1};
  const auto record = collector.observe(udp);
  ASSERT_TRUE(record);
  EXPECT_EQ(record->tcp_flags, 0);
  EXPECT_FALSE(record->single_syn());  // UDP is never a SYN probe
}

TEST(AdoptionCurve, CloudflareGrowsQuad9Fluctuates) {
  AdoptionCurve curve(7);
  EXPECT_EQ(curve.daily_raw_flows("cloudflare", {2018, 3, 1}), 0.0);
  const double jul = curve.daily_raw_flows("cloudflare", {2018, 7, 15});
  const double dec = curve.daily_raw_flows("cloudflare", {2018, 12, 15});
  EXPECT_GT(jul, 0.0);
  EXPECT_GT(dec / jul, 1.3);  // ~+56% Jul->Dec
  EXPECT_LT(dec / jul, 1.9);
  EXPECT_GT(curve.daily_raw_flows("quad9", {2018, 1, 1}), 0.0);
  EXPECT_EQ(curve.daily_raw_flows("quad9", {2017, 10, 1}), 0.0);
  EXPECT_EQ(curve.daily_raw_flows("unknown", {2018, 7, 1}), 0.0);
}

TEST(BackboneModel, NetblockPopulationShape) {
  BackboneConfig config;
  const BackboneModel model(config);
  const auto& blocks = model.netblocks();
  EXPECT_EQ(blocks.size(), config.heavy_blocks + config.mid_blocks +
                               config.medium_blocks + config.tail_blocks);
  std::size_t heavy = 0, short_lived = 0;
  for (const auto& nb : blocks) {
    if (nb.heavy) ++heavy;
    if (util::days_between(nb.active_from, nb.active_to) < 7) ++short_lived;
  }
  EXPECT_EQ(heavy, config.heavy_blocks);
  // ~96% of blocks are the short-lived tail.
  EXPECT_GT(static_cast<double>(short_lived) / blocks.size(), 0.9);
}

TEST(ScanDetector, FlagsScannersNotClients) {
  ScanDetector detector;
  util::Rng rng(11);
  // A DoT client: many flows to one resolver, all complete.
  const util::Ipv4 client{114, 0, 0, 1};
  for (int i = 0; i < 500; ++i)
    detector.observe(dot_flow(client, util::Ipv4{1, 1, 1, 1}, 20));
  EXPECT_FALSE(detector.is_scanner(client));

  // A scanner: lone SYNs to many destinations.
  const util::Ipv4 scanner{162, 142, 125, 7};
  for (int i = 0; i < 500; ++i) {
    RawFlow probe = dot_flow(scanner,
                             util::Ipv4{static_cast<std::uint32_t>(rng.next())}, 1);
    probe.complete_session = false;
    detector.observe(probe);
  }
  EXPECT_TRUE(detector.is_scanner(scanner));
  EXPECT_EQ(detector.scanners().size(), 1u);
}

TEST(ScanDetector, FanoutAloneIsOnlySuspicious) {
  ScanDetector detector;
  util::Rng rng(12);
  const util::Ipv4 cdn{114, 0, 5, 1};
  for (int i = 0; i < 500; ++i)
    detector.observe(dot_flow(cdn, util::Ipv4{static_cast<std::uint32_t>(rng.next())},
                              20));
  EXPECT_EQ(detector.state_of(cdn), ScanDetector::State::kSuspicious);
  EXPECT_FALSE(detector.is_scanner(cdn));
}

struct NetflowStudyFixture : ::testing::Test {
  static const NetflowStudyResults& results() {
    static const NetflowStudyResults value = [] {
      NetflowStudyConfig config;
      config.backbone.tail_blocks = 1500;  // keep the test quick
      config.backbone.medium_blocks = 80;
      NetflowStudy study(config, big_resolver_address_list());
      return study.run();
    }();
    return value;
  }
};

TEST_F(NetflowStudyFixture, CloudflareGrowthJulToDec2018) {
  const auto& r = results();
  const auto jul = r.cloudflare_monthly.find(util::Date{2018, 7, 1});
  const auto dec = r.cloudflare_monthly.find(util::Date{2018, 12, 1});
  ASSERT_NE(jul, r.cloudflare_monthly.end());
  ASSERT_NE(dec, r.cloudflare_monthly.end());
  const double growth =
      static_cast<double>(dec->second) / static_cast<double>(jul->second);
  EXPECT_GT(growth, 1.3);  // paper: +56%
  EXPECT_LT(growth, 1.9);
  // No Cloudflare DoT traffic before the Apr 2018 launch.
  EXPECT_EQ(r.cloudflare_monthly.count(util::Date{2018, 2, 1}), 0u);
}

TEST_F(NetflowStudyFixture, DotIsOrdersOfMagnitudeBelowDo53) {
  const auto& r = results();
  const auto dec = r.cloudflare_monthly.find(util::Date{2018, 12, 1});
  const auto est = r.do53_monthly_estimate.find(util::Date{2018, 12, 1});
  ASSERT_NE(dec, r.cloudflare_monthly.end());
  ASSERT_NE(est, r.do53_monthly_estimate.end());
  const double ratio = est->second / static_cast<double>(dec->second);
  EXPECT_GT(ratio, 80.0);     // "2-3 orders of magnitude"
  EXPECT_LT(ratio, 5000.0);
}

TEST_F(NetflowStudyFixture, HeavyHittersAndShortTail) {
  const auto& r = results();
  EXPECT_GT(r.top_share(5), 0.30);    // paper: 44%
  EXPECT_LT(r.top_share(5), 0.80);
  EXPECT_GT(r.top_share(20), r.top_share(5));
  EXPECT_GT(r.short_lived_block_fraction(7), 0.80);  // paper: 96%
  EXPECT_LT(r.short_lived_traffic_share(7), 0.45);   // paper: 25%
}

TEST_F(NetflowStudyFixture, SingleSynExcludedAndNoScannerClients) {
  const auto& r = results();
  EXPECT_GT(r.excluded_single_syn, 0u);
  EXPECT_EQ(r.flagged_client_blocks, 0u);  // paper: no scan alerts
  EXPECT_GT(r.total_dot_records, 1000u);
}

// The day-sharded aggregation's contract: identical results for every thread
// count, and repeated parallel runs agree.
TEST(NetflowStudy, ResultsAreThreadCountInvariant) {
  const auto run_with_threads = [](unsigned threads) {
    NetflowStudyConfig config;
    config.backbone.tail_blocks = 300;  // keep the test quick
    config.backbone.medium_blocks = 30;
    config.thread_count = threads;
    NetflowStudy study(config, big_resolver_address_list());
    return study.run();
  };
  const auto serial = run_with_threads(1);
  const auto parallel_a = run_with_threads(8);
  const auto parallel_b = run_with_threads(8);

  const auto equal = [](const NetflowStudyResults& a,
                        const NetflowStudyResults& b) {
    if (a.cloudflare_monthly != b.cloudflare_monthly) return false;
    if (a.quad9_monthly != b.quad9_monthly) return false;
    if (a.total_dot_records != b.total_dot_records) return false;
    if (a.excluded_single_syn != b.excluded_single_syn) return false;
    if (a.unmatched_853_records != b.unmatched_853_records) return false;
    if (a.flagged_client_blocks != b.flagged_client_blocks) return false;
    if (a.netblocks.size() != b.netblocks.size()) return false;
    for (std::size_t i = 0; i < a.netblocks.size(); ++i) {
      const auto& x = a.netblocks[i];
      const auto& y = b.netblocks[i];
      if (x.slash24 != y.slash24 || x.records != y.records ||
          x.active_days != y.active_days || !(x.first_seen == y.first_seen) ||
          !(x.last_seen == y.last_seen))
        return false;
    }
    return true;
  };
  EXPECT_TRUE(equal(serial, parallel_a));
  EXPECT_TRUE(equal(parallel_a, parallel_b));
}

TEST(PassiveDns, AggregateStoreSemantics) {
  AggregatePassiveDns db;
  db.record("a.example", {2018, 3, 1}, 10);
  db.record("a.example", {2018, 1, 1}, 5);
  db.record("a.example", {2018, 6, 1}, 1);
  const auto agg = db.lookup("a.example");
  ASSERT_TRUE(agg);
  EXPECT_EQ(agg->first_seen, (util::Date{2018, 1, 1}));
  EXPECT_EQ(agg->last_seen, (util::Date{2018, 6, 1}));
  EXPECT_EQ(agg->total_count, 16u);
  EXPECT_FALSE(db.lookup("missing"));
  db.record("zero.example", {2018, 1, 1}, 0);
  EXPECT_FALSE(db.lookup("zero.example"));
}

TEST(PassiveDns, DailyStoreMonthlySeries) {
  DailyPassiveDns db;
  db.record("d.example", {2018, 9, 1}, 3);
  db.record("d.example", {2018, 9, 20}, 4);
  db.record("d.example", {2018, 10, 2}, 5);
  const auto series = db.monthly_series("d.example");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series.at(util::Date{2018, 9, 1}), 7u);
  EXPECT_EQ(series.at(util::Date{2018, 10, 1}), 5u);
  EXPECT_TRUE(db.monthly_series("missing").empty());
}

TEST(PassiveDnsStudy, Figure13Shapes) {
  const auto results = run_passive_dns_study();
  // Only a handful of domains exceed 10K total lookups (paper: 4).
  const auto popular = results.popular_domains(10000);
  EXPECT_GE(popular.size(), 3u);
  EXPECT_LE(popular.size(), 6u);
  EXPECT_NE(std::find(popular.begin(), popular.end(), "dns.google.com"),
            popular.end());

  // Google dwarfs CleanBrowsing by orders of magnitude.
  const auto google = results.daily_db.monthly_series("dns.google.com");
  const auto clean = results.daily_db.monthly_series("doh.cleanbrowsing.org");
  ASSERT_FALSE(google.empty());
  ASSERT_FALSE(clean.empty());
  EXPECT_GT(google.at(util::Date{2019, 3, 1}),
            50 * clean.at(util::Date{2019, 3, 1}));

  // CleanBrowsing grows ~10x from Sep 2018 to Mar 2019.
  const double growth = static_cast<double>(clean.at(util::Date{2019, 3, 1})) /
                        static_cast<double>(clean.at(util::Date{2018, 9, 1}));
  EXPECT_GT(growth, 5.0);
  EXPECT_LT(growth, 20.0);

  // Google has the longest history (first seen 2016).
  const auto agg = results.aggregate_db.lookup("dns.google.com");
  ASSERT_TRUE(agg);
  EXPECT_EQ(agg->first_seen.year, 2016);
  const auto cf = results.aggregate_db.lookup("mozilla.cloudflare-dns.com");
  ASSERT_TRUE(cf);
  EXPECT_GE(cf->first_seen.year, 2018);
}

}  // namespace
}  // namespace encdns::traffic
