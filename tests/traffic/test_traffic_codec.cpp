// Round-trip and fail-closed fuzzing for the checksummed adoption-scale
// codecs (DESIGN.md §16): HLL sketches, columnar flow batches, and trend
// results. The envelope — version byte, FNV-1a payload checksum, payload
// blob — must make EVERY truncation, EVERY single-byte corruption, and any
// version skew throw util::CodecError rather than resurrect an almost-right
// sketch or column. The fuzz loops literally enumerate all of them.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "traffic/codec.hpp"
#include "traffic/flow_batch.hpp"
#include "traffic/hll.hpp"
#include "traffic/trend_study.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace encdns::traffic {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::CodecError;

Hll sample_hll() {
  Hll sketch(12, 77);
  for (std::uint64_t i = 0; i < 5000; ++i)
    sketch.add(util::mix64(0xABCDULL + i));
  return sketch;
}

FlowBatch sample_batch() {
  FlowBatch batch;
  util::Rng rng(4242);
  for (int i = 0; i < 57; ++i) {
    RawFlow flow;
    flow.src = util::Ipv4{static_cast<std::uint32_t>(rng.below(1u << 31))};
    flow.dst = util::Ipv4{1, 1, 1, 1};
    flow.src_port = static_cast<std::uint16_t>(20000 + rng.below(40000));
    flow.dst_port = (i % 2) == 0 ? 853 : 443;
    flow.protocol = 6;
    flow.packets = static_cast<std::uint32_t>(1 + rng.below(60));
    flow.bytes = flow.packets * 110ULL;
    flow.complete_session = (i % 3) != 0;
    flow.date = util::Date{2019, 3, 1}.plus_days(i % 28);
    batch.push(flow);
  }
  return batch;
}

TrendStudyResults sample_trend_results() {
  TrendStudyConfig config;
  config.start = util::Date{2018, 1, 1};
  config.end = util::Date{2018, 5, 1};
  config.seed = 11;
  config.scale = 0.01;
  config.validate_exact = true;
  config.sample_rows = 8;
  return TrendStudy(config).run();
}

template <typename T>
std::vector<std::uint8_t> encode_bytes(void (*encode)(ByteWriter&, const T&),
                                       const T& value) {
  ByteWriter w;
  encode(w, value);
  return w.take();
}

// Assert that every strict prefix and every single-byte corruption of
// `bytes` fails closed, and that an unknown version byte is rejected.
template <typename Decode>
void expect_fail_closed(const std::vector<std::uint8_t>& bytes,
                        Decode decode) {
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + len);
    ByteReader r(truncated);
    EXPECT_THROW((void)decode(r), CodecError) << "prefix length " << len;
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[i] ^= 0xFF;
    ByteReader r(flipped);
    EXPECT_THROW((void)decode(r), CodecError) << "byte " << i << " corrupted";
  }
  for (const std::uint8_t version : {0, 2, 3, 255}) {
    std::vector<std::uint8_t> skewed = bytes;
    skewed[0] = version;
    ByteReader r(skewed);
    EXPECT_THROW((void)decode(r), CodecError) << "version " << int(version);
  }
}

TEST(TrafficCodec, HllRoundTripsExactly) {
  const Hll sketch = sample_hll();
  const auto bytes = encode_bytes<Hll>(&encode_hll, sketch);
  ByteReader r(bytes);
  const Hll decoded = decode_hll(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded, sketch);
  EXPECT_EQ(decoded.estimate_u64(), sketch.estimate_u64());
}

TEST(TrafficCodec, EmptyHllRoundTrips) {
  const Hll sketch;
  const auto bytes = encode_bytes<Hll>(&encode_hll, sketch);
  ByteReader r(bytes);
  EXPECT_EQ(decode_hll(r), sketch);
}

TEST(TrafficCodec, HllFailsClosedOnAnyCorruption) {
  expect_fail_closed(encode_bytes<Hll>(&encode_hll, sample_hll()),
                     [](ByteReader& r) { return decode_hll(r); });
}

TEST(TrafficCodec, FlowBatchRoundTripsExactly) {
  const FlowBatch batch = sample_batch();
  const auto bytes = encode_bytes<FlowBatch>(&encode_flow_batch, batch);
  ByteReader r(bytes);
  const FlowBatch decoded = decode_flow_batch(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(decoded, batch);
  ASSERT_EQ(decoded.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const RawFlow a = decoded.row(i), b = batch.row(i);
    EXPECT_EQ(a.src.value(), b.src.value());
    EXPECT_EQ(a.bytes, b.bytes);
    EXPECT_EQ(a.complete_session, b.complete_session);
    EXPECT_EQ(a.date, b.date);
  }
}

TEST(TrafficCodec, EmptyFlowBatchRoundTrips) {
  const FlowBatch batch;
  const auto bytes = encode_bytes<FlowBatch>(&encode_flow_batch, batch);
  ByteReader r(bytes);
  EXPECT_EQ(decode_flow_batch(r), batch);
}

TEST(TrafficCodec, FlowBatchFailsClosedOnAnyCorruption) {
  expect_fail_closed(encode_bytes<FlowBatch>(&encode_flow_batch, sample_batch()),
                     [](ByteReader& r) { return decode_flow_batch(r); });
}

TEST(TrafficCodec, TrendResultsRoundTripExactly) {
  const TrendStudyResults results = sample_trend_results();
  ASSERT_GT(results.total_records, 0u);
  ASSERT_FALSE(results.providers.empty());

  const auto bytes =
      encode_bytes<TrendStudyResults>(&encode_trend_results, results);
  ByteReader r(bytes);
  const TrendStudyResults decoded = decode_trend_results(r);
  EXPECT_TRUE(r.done());

  // Field-level spot checks, then the decisive identity: re-encoding the
  // decoded value must reproduce the original bytes exactly.
  EXPECT_EQ(decoded.total_records, results.total_records);
  EXPECT_EQ(decoded.total_bytes, results.total_bytes);
  EXPECT_EQ(decoded.hll_precision, results.hll_precision);
  EXPECT_EQ(decoded.days_processed, results.days_processed);
  EXPECT_EQ(decoded.peak_tracked_bytes, results.peak_tracked_bytes);
  EXPECT_EQ(decoded.sample, results.sample);
  ASSERT_EQ(decoded.providers.size(), results.providers.size());
  for (std::size_t i = 0; i < results.providers.size(); ++i) {
    EXPECT_EQ(decoded.providers[i].name, results.providers[i].name);
    EXPECT_EQ(decoded.providers[i].monthly.size(),
              results.providers[i].monthly.size());
    EXPECT_EQ(decoded.providers[i].clients_estimated,
              results.providers[i].clients_estimated);
    EXPECT_EQ(decoded.providers[i].clients_exact,
              results.providers[i].clients_exact);
  }
  ASSERT_EQ(decoded.events.size(), results.events.size());
  EXPECT_EQ(encode_bytes<TrendStudyResults>(&encode_trend_results, decoded),
            bytes);
}

TEST(TrafficCodec, TrendResultsFailClosedOnAnyCorruption) {
  // A smaller horizon keeps the encoded record compact enough to fuzz every
  // byte position while still exercising providers, months and the sample.
  TrendStudyConfig config;
  config.start = util::Date{2018, 4, 1};
  config.end = util::Date{2018, 6, 1};
  config.seed = 5;
  config.scale = 0.005;
  config.sample_rows = 4;
  const TrendStudyResults results = TrendStudy(config).run();
  expect_fail_closed(
      encode_bytes<TrendStudyResults>(&encode_trend_results, results),
      [](ByteReader& r) { return decode_trend_results(r); });
}

TEST(TrafficCodec, HllDecodeRejectsImpossibleRegisterRank) {
  // A register claiming a rank beyond 64-precision+1 cannot arise from any
  // add(); the decoder must reject it even when the checksum is rewritten
  // to match (a bug upstream of the checksum, not wire corruption).
  Hll sketch(4, 9);
  auto registers = sketch.registers();
  registers[0] = 64;  // max legal rank at p=4 is 61
  ByteWriter payload;
  payload.u8(4);
  payload.u64(9);
  payload.blob(registers);
  ByteWriter w;
  w.u8(kHllCodecVersion);
  w.u64(util::fnv1a_bytes(payload.data().data(), payload.size()));
  w.blob(payload.data());
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW((void)decode_hll(r), CodecError);
}

}  // namespace
}  // namespace encdns::traffic
