#include "traffic/netflow_v5.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace encdns::traffic {
namespace {

FlowRecord sample_record(std::uint32_t i) {
  FlowRecord record;
  record.src = util::Ipv4{0x72000000u + i};
  record.dst = util::Ipv4{1, 1, 1, 1};
  record.src_port = static_cast<std::uint16_t>(40000 + i);
  record.dst_port = 853;
  record.protocol = kProtoTcp;
  record.packets = 3 + i;
  record.bytes = 300 + i * 10;
  record.tcp_flags = tcpflags::kSyn | tcpflags::kAck | tcpflags::kPsh;
  record.date = {2018, 8, 15};
  return record;
}

TEST(NetflowV5, SizesMatchTheSpec) {
  std::vector<FlowRecord> records = {sample_record(0), sample_record(1)};
  const auto packet = encode_v5_packet(records, 100, 3000);
  EXPECT_EQ(packet.size(), kV5HeaderSize + 2 * kV5RecordSize);
  EXPECT_EQ(packet[0], 0);
  EXPECT_EQ(packet[1], 5);  // version field
}

TEST(NetflowV5, RoundTripPreservesFields) {
  std::vector<FlowRecord> records;
  for (std::uint32_t i = 0; i < 7; ++i) records.push_back(sample_record(i));
  const auto packet = encode_v5_packet(records, 424242, 3000);
  const auto decoded = decode_v5_packet(packet);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->info.count, 7);
  EXPECT_EQ(decoded->info.flow_sequence, 424242u);
  EXPECT_EQ(decoded->info.sampling_interval, 3000);
  ASSERT_EQ(decoded->records.size(), 7u);
  for (std::uint32_t i = 0; i < 7; ++i) {
    const auto& original = records[i];
    const auto& copy = decoded->records[i];
    EXPECT_EQ(copy.src, original.src);
    EXPECT_EQ(copy.dst, original.dst);
    EXPECT_EQ(copy.src_port, original.src_port);
    EXPECT_EQ(copy.dst_port, original.dst_port);
    EXPECT_EQ(copy.protocol, original.protocol);
    EXPECT_EQ(copy.packets, original.packets);
    EXPECT_EQ(copy.bytes, original.bytes);
    EXPECT_EQ(copy.tcp_flags, original.tcp_flags);
    EXPECT_EQ(copy.date, original.date);
  }
}

TEST(NetflowV5, EmptyPacketRoundTrips) {
  const auto packet = encode_v5_packet({}, 0, 3000);
  EXPECT_EQ(packet.size(), kV5HeaderSize);
  const auto decoded = decode_v5_packet(packet);
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->records.empty());
}

TEST(NetflowV5, RejectsOversizedBatch) {
  std::vector<FlowRecord> records;
  for (std::uint32_t i = 0; i < kV5MaxRecords + 1; ++i)
    records.push_back(sample_record(i));
  EXPECT_THROW((void)encode_v5_packet(records, 0, 3000), std::length_error);
}

TEST(NetflowV5, RejectsMalformedPackets) {
  EXPECT_FALSE(decode_v5_packet(std::vector<std::uint8_t>(10)));  // short header
  std::vector<FlowRecord> one = {sample_record(0)};
  auto packet = encode_v5_packet(one, 0, 3000);
  packet[1] = 9;  // wrong version
  EXPECT_FALSE(decode_v5_packet(packet));
  packet[1] = 5;
  packet.pop_back();  // size/count mismatch
  EXPECT_FALSE(decode_v5_packet(packet));
  // Count larger than the size allows.
  auto truncated = encode_v5_packet(one, 0, 3000);
  truncated[3] = 2;
  EXPECT_FALSE(decode_v5_packet(truncated));
}

TEST(NetflowV5, SingleSynSurvivesTheCodec) {
  FlowRecord probe = sample_record(0);
  probe.tcp_flags = tcpflags::kSyn;
  probe.packets = 1;
  const auto decoded = decode_v5_packet(
      encode_v5_packet(std::vector<FlowRecord>{probe}, 0, 3000));
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->records[0].single_syn());
}

}  // namespace
}  // namespace encdns::traffic
