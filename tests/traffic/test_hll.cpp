// Accuracy and algebra properties of the HyperLogLog sketch that replaced
// exact client-set tracking in the traffic studies (DESIGN.md §16). The
// sweep checks the textbook 1.04/sqrt(m) relative-error bound across five
// decades of cardinality and five seeds; the algebra tests pin the merge
// laws (commutativity, associativity, idempotence) the sharded studies rely
// on for thread-count-invariant results.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "traffic/hll.hpp"
#include "util/rng.hpp"

namespace encdns::traffic {
namespace {

// Distinct synthetic keys: mix64 is a bijection on 64-bit space, so
// mix64(base + i) yields exactly `n` distinct values.
std::uint64_t key_at(std::uint64_t base, std::uint64_t i) {
  return util::mix64(base + 0x9E3779B97F4A7C15ULL * i);
}

TEST(Hll, EmptySketchEstimatesZero) {
  Hll sketch;
  EXPECT_EQ(sketch.estimate_u64(), 0u);
  EXPECT_EQ(sketch.register_count(), 1u << Hll::kDefaultPrecision);
}

TEST(Hll, RejectsOutOfRangePrecision) {
  EXPECT_THROW(Hll(Hll::kMinPrecision - 1), std::invalid_argument);
  EXPECT_THROW(Hll(Hll::kMaxPrecision + 1), std::invalid_argument);
}

TEST(Hll, DuplicateAddsDoNotInflateTheEstimate) {
  Hll sketch;
  for (int round = 0; round < 50; ++round)
    for (std::uint64_t i = 0; i < 100; ++i) sketch.add(key_at(7, i));
  const double estimate = sketch.estimate();
  EXPECT_NEAR(estimate, 100.0, 100.0 * 3.0 * sketch.relative_error_bound());
}

// The headline property: estimates stay within the 1.04/sqrt(m) standard
// error across cardinalities 10..10^7, for five independent seeds. Each
// individual run is held to 3 sigma; the mean relative error across seeds
// must fall within 1.5 sigma (E|N(0,s)| is ~0.8s and a five-sample mean
// fluctuates around it), which catches a systematically biased
// implementation that per-run tolerances would let through.
TEST(Hll, RelativeErrorWithinBoundAcrossCardinalitiesAndSeeds) {
  const std::vector<std::uint64_t> cardinalities{10,     100,     1000,
                                                 10000,  100000,  1000000,
                                                 10000000};
  const std::vector<std::uint64_t> seeds{
      Hll::kDefaultSeed, 0x1ULL, 0xDEADBEEFULL, 0xA5A5A5A5A5A5A5A5ULL,
      0x123456789ABCDEFULL};
  for (const std::uint64_t n : cardinalities) {
    const double sigma = Hll().relative_error_bound();  // 1.04/sqrt(m)
    // Small cardinalities resolve through linear counting where the
    // relative spread is wider in absolute sketch terms; allow a floor of
    // a couple of items so n=10 does not demand sub-item resolution.
    const double tolerance_floor = 2.0 / static_cast<double>(n);
    double total_rel_error = 0.0;
    for (const std::uint64_t seed : seeds) {
      Hll sketch(Hll::kDefaultPrecision, seed);
      for (std::uint64_t i = 0; i < n; ++i) sketch.add(key_at(seed, i));
      const double rel_error =
          std::abs(sketch.estimate() - static_cast<double>(n)) /
          static_cast<double>(n);
      EXPECT_LE(rel_error, std::max(3.0 * sigma, tolerance_floor))
          << "cardinality " << n << " seed " << seed;
      total_rel_error += rel_error;
    }
    const double mean_rel_error = total_rel_error / seeds.size();
    EXPECT_LE(mean_rel_error, std::max(1.5 * sigma, tolerance_floor))
        << "cardinality " << n;
  }
}

TEST(Hll, AccuracyHoldsAtLowerPrecisions) {
  for (const int precision : {8, 10, 12}) {
    Hll sketch(precision);
    const std::uint64_t n = 50000;
    for (std::uint64_t i = 0; i < n; ++i) sketch.add(key_at(precision, i));
    const double rel_error =
        std::abs(sketch.estimate() - static_cast<double>(n)) /
        static_cast<double>(n);
    EXPECT_LE(rel_error, 3.0 * sketch.relative_error_bound())
        << "precision " << precision;
  }
}

TEST(Hll, MergeIsCommutative) {
  Hll a, b;
  for (std::uint64_t i = 0; i < 5000; ++i) a.add(key_at(1, i));
  for (std::uint64_t i = 0; i < 5000; ++i) b.add(key_at(2, i));
  Hll ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.estimate_u64(), ba.estimate_u64());
}

TEST(Hll, MergeIsAssociative) {
  Hll a, b, c;
  for (std::uint64_t i = 0; i < 3000; ++i) a.add(key_at(10, i));
  for (std::uint64_t i = 0; i < 3000; ++i) b.add(key_at(20, i));
  for (std::uint64_t i = 0; i < 3000; ++i) c.add(key_at(30, i));
  Hll left = a;   // (a ∪ b) ∪ c
  left.merge(b);
  left.merge(c);
  Hll bc = b;     // a ∪ (b ∪ c)
  bc.merge(c);
  Hll right = a;
  right.merge(bc);
  EXPECT_EQ(left, right);
}

TEST(Hll, SelfMergeIsIdempotent) {
  Hll sketch;
  for (std::uint64_t i = 0; i < 10000; ++i) sketch.add(key_at(3, i));
  Hll merged = sketch;
  merged.merge(sketch);
  EXPECT_EQ(merged, sketch);
}

// The property the sharded studies depend on: splitting a stream across
// shards and register-maxing the shard sketches yields the *identical*
// register file — not merely a close estimate — as one sketch fed serially.
TEST(Hll, ShardedMergeMatchesSerialRegisters) {
  const std::uint64_t n = 100000;
  Hll serial;
  for (std::uint64_t i = 0; i < n; ++i) serial.add(key_at(4, i));
  for (const std::size_t shards : {2u, 8u, 16u}) {
    std::vector<Hll> parts(shards);
    for (std::uint64_t i = 0; i < n; ++i) parts[i % shards].add(key_at(4, i));
    Hll merged = parts[0];
    for (std::size_t s = 1; s < shards; ++s) merged.merge(parts[s]);
    EXPECT_EQ(merged, serial) << shards << " shards";
  }
}

TEST(Hll, MergeRejectsMismatchedPrecisionOrSeed) {
  Hll base(14, 1);
  EXPECT_THROW(base.merge(Hll(12, 1)), std::invalid_argument);
  EXPECT_THROW(base.merge(Hll(14, 2)), std::invalid_argument);
  EXPECT_NO_THROW(base.merge(Hll(14, 1)));
}

TEST(Hll, EstimateAgreesWithExactSetOnClientLikeStream) {
  // The shape the trend study feeds it: bounded client ids with heavy
  // repetition, hashed through the same seed-keyed path.
  util::Rng rng(99);
  Hll sketch;
  std::unordered_set<std::uint32_t> exact;
  for (int i = 0; i < 200000; ++i) {
    const auto client = static_cast<std::uint32_t>(rng.below(30000));
    sketch.add(client);
    exact.insert(client);
  }
  const double rel_error =
      std::abs(sketch.estimate() - static_cast<double>(exact.size())) /
      static_cast<double>(exact.size());
  EXPECT_LE(rel_error, 3.0 * sketch.relative_error_bound());
}

TEST(Hll, ClearResetsToEmpty) {
  Hll sketch;
  for (std::uint64_t i = 0; i < 1000; ++i) sketch.add(key_at(5, i));
  sketch.clear();
  EXPECT_EQ(sketch, Hll());
  EXPECT_EQ(sketch.estimate_u64(), 0u);
}

}  // namespace
}  // namespace encdns::traffic
