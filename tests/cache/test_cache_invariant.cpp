// CacheThreadCountInvariant: the resolver record caches behind a real
// reachability run must produce bit-identical tallies (hits, misses, stale
// answers, upstream faults, evictions, live entries) at 1, 2 and 8 worker
// threads — the same contract the exec/measure/scan layers already pin with
// their *ThreadCountInvariant suites (DESIGN.md §6/§7).
#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "measure/reachability.hpp"
#include "proxy/proxy.hpp"
#include "world/world.hpp"

namespace encdns::cache {
namespace {

using world::World;

[[nodiscard]] World::ResolverCacheTally run_reachability(
    unsigned threads, const world::WorldConfig& world_config) {
  // A fresh world per run: measurements warm the resolver caches, so the
  // tally is a function of (config, thread count) only.
  World world(world_config);
  proxy::ProxyNetwork platform(world, proxy::ProxyConfig{}, 27);
  measure::ReachabilityConfig config;
  config.client_count = 120;
  config.thread_count = threads;
  measure::ReachabilityTest test(world, platform, config);
  (void)test.run();
  return world.resolver_cache_tally();
}

void expect_tally_eq(const World::ResolverCacheTally& a,
                     const World::ResolverCacheTally& b) {
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.stale_served, b.stale_served);
  EXPECT_EQ(a.upstream_faults, b.upstream_faults);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.entries, b.entries);
}

TEST(CacheThreadCountInvariant, ReachabilityTalliesMatchAt128Threads) {
  const world::WorldConfig config;
  const auto serial = run_reachability(1, config);
  const auto two = run_reachability(2, config);
  const auto eight = run_reachability(8, config);

  // The run actually exercised the caches before we compare them.
  EXPECT_GT(serial.hits, 0u);
  EXPECT_GT(serial.misses, 0u);
  EXPECT_GT(serial.entries, 0u);

  expect_tally_eq(serial, two);
  expect_tally_eq(serial, eight);
}

// Same invariant with the canonical fault profile active: upstream-recursion
// faults (Channel::kRecursion) are drawn on per-request rng streams, so the
// fault and serve-stale tallies are schedule-independent too.
TEST(CacheThreadCountInvariant, FaultyReachabilityTalliesMatch) {
  world::WorldConfig config;
  config.fault_profile = fault::FaultProfile::canonical();
  // Crank the upstream failure rate so the channel demonstrably fires even
  // in this small run, and enable serve-stale so the recovery path runs.
  config.fault_profile.upstream_fail = 0.05;
  config.resolver_serve_stale = true;

  const auto serial = run_reachability(1, config);
  const auto two = run_reachability(2, config);
  const auto eight = run_reachability(8, config);

  EXPECT_GT(serial.upstream_faults, 0u);
  expect_tally_eq(serial, two);
  expect_tally_eq(serial, eight);
}

}  // namespace
}  // namespace encdns::cache
