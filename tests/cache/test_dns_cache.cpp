// Unit tests for the sharded TTL-aware DNS record cache (DESIGN.md §10):
// exact-second TTL boundaries, RFC 2308 negative caching (and SERVFAIL
// rejection), shard distribution, deterministic LRU eviction, the
// no-flush-on-full guarantee, RFC 8767 serve-stale, and the ENCDNS_CACHE_*
// environment overrides.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "cache/dns_cache.hpp"
#include "dns/message.hpp"
#include "util/env.hpp"
#include "dns/name.hpp"

namespace encdns::cache {
namespace {

[[nodiscard]] CachedAnswer a_answer(const std::string& name,
                                    std::uint32_t ttl = 300) {
  // Cache keys carry a "/<type>" suffix that is not part of the owner name.
  const auto parsed = dns::Name::parse(name.substr(0, name.find('/')));
  CachedAnswer answer;
  answer.answers.push_back(
      dns::ResourceRecord::a(parsed ? *parsed : *dns::Name::parse("rr.test"),
                             util::Ipv4(192, 0, 2, 1), ttl));
  return answer;
}

[[nodiscard]] CachedAnswer nxdomain_answer() {
  CachedAnswer answer;
  answer.rcode = dns::RCode::kNxDomain;
  return answer;
}

TEST(CachedAnswer, NegativeClassification) {
  EXPECT_FALSE(a_answer("a.test").negative());
  EXPECT_TRUE(nxdomain_answer().negative());  // RFC 2308 name error
  CachedAnswer nodata;                        // NOERROR + empty answer section
  EXPECT_TRUE(nodata.negative());
}

TEST(DnsCache, HitWithinTtlMissAtExactExpiry) {
  DnsCache cache;
  ASSERT_TRUE(cache.store("a.test/1", a_answer("a.test", 300), 1000));
  // Fresh until the last second of the TTL...
  EXPECT_TRUE(cache.lookup("a.test/1", 1000).has_value());
  EXPECT_TRUE(cache.lookup("a.test/1", 1299).has_value());
  // ...and expired at exactly store-time + TTL, not one second later.
  EXPECT_FALSE(cache.lookup("a.test/1", 1300).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(DnsCache, TtlIsMinAcrossRecordsClampedToConfig) {
  CacheConfig config;
  config.min_ttl_s = 60;
  config.max_ttl_s = 3600;
  DnsCache cache(config);

  CachedAnswer mixed = a_answer("m.test", 7200);
  mixed.answers.push_back(dns::ResourceRecord::a(
      *dns::Name::parse("m.test"), util::Ipv4(192, 0, 2, 2), 300));
  EXPECT_EQ(cache.ttl_for(mixed), 300u);  // min across records

  EXPECT_EQ(cache.ttl_for(a_answer("hi.test", 86400)), 3600u);  // clamped down
  EXPECT_EQ(cache.ttl_for(a_answer("lo.test", 1)), 60u);        // clamped up
}

TEST(DnsCache, NegativeEntriesUseBoundedNegativeTtl) {
  CacheConfig config;
  config.negative_ttl_s = 900;
  DnsCache cache(config);

  ASSERT_TRUE(cache.store("gone.test/1", nxdomain_answer(), 0));
  const auto hit = cache.lookup("gone.test/1", 899);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->answer.rcode, dns::RCode::kNxDomain);
  EXPECT_FALSE(cache.lookup("gone.test/1", 900).has_value());

  // NODATA (NOERROR, empty answers) is the other RFC 2308 negative form.
  ASSERT_TRUE(cache.store("empty.test/28", CachedAnswer{}, 0));
  EXPECT_TRUE(cache.lookup("empty.test/28", 899).has_value());
  EXPECT_FALSE(cache.lookup("empty.test/28", 900).has_value());

  EXPECT_EQ(cache.stats().negative_hits, 2u);
}

TEST(DnsCache, ServfailIsNeverStored) {
  DnsCache cache;
  CachedAnswer servfail;
  servfail.rcode = dns::RCode::kServFail;
  EXPECT_FALSE(DnsCache::cacheable(dns::RCode::kServFail));
  EXPECT_FALSE(cache.store("down.test/1", servfail, 0));
  EXPECT_FALSE(cache.lookup("down.test/1", 0).has_value());
  EXPECT_EQ(cache.size(), 0u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.stores, 0u);
}

TEST(DnsCache, ShardCountClampsToPowerOfTwo) {
  CacheConfig config;
  config.shards = 13;
  EXPECT_EQ(DnsCache(config).shard_count(), 8u);
  config.shards = 0;
  EXPECT_EQ(DnsCache(config).shard_count(), 1u);
  config.shards = 4096;
  EXPECT_EQ(DnsCache(config).shard_count(), 256u);
}

TEST(DnsCache, KeysSpreadAcrossAllShards) {
  CacheConfig config;
  config.shards = 16;
  config.max_entries = 1 << 20;  // no eviction during this test
  DnsCache cache(config);
  constexpr int kKeys = 8192;
  for (int i = 0; i < kKeys; ++i) {
    const std::string name = "host" + std::to_string(i) + ".example/1";
    ASSERT_TRUE(cache.store(name, a_answer(name), 0));
  }
  const auto sizes = cache.shard_sizes();
  ASSERT_EQ(sizes.size(), 16u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
            static_cast<std::size_t>(kKeys));
  const double mean = static_cast<double>(kKeys) / 16.0;
  for (const std::size_t size : sizes) {
    EXPECT_GT(size, 0u);  // fnv1a reaches every shard
    EXPECT_LT(static_cast<double>(size), 2.0 * mean);
    EXPECT_GT(static_cast<double>(size), 0.5 * mean);
  }
}

TEST(DnsCache, EvictionIsLruAndDeterministic) {
  CacheConfig config;
  config.shards = 1;  // single shard: global LRU order
  config.max_entries = 3;
  DnsCache cache(config);

  ASSERT_TRUE(cache.store("a/1", a_answer("a"), 0));
  ASSERT_TRUE(cache.store("b/1", a_answer("b"), 0));
  ASSERT_TRUE(cache.store("c/1", a_answer("c"), 0));
  // Touch `a`: it becomes most-recent, `b` is now the LRU victim.
  ASSERT_TRUE(cache.lookup("a/1", 1).has_value());
  ASSERT_TRUE(cache.store("d/1", a_answer("d"), 1));

  EXPECT_FALSE(cache.lookup("b/1", 2).has_value());  // evicted
  EXPECT_TRUE(cache.lookup("a/1", 2).has_value());
  EXPECT_TRUE(cache.lookup("c/1", 2).has_value());
  EXPECT_TRUE(cache.lookup("d/1", 2).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 3u);

  // The eviction order is a pure function of the operation sequence: a
  // second cache driven identically ends in the same state.
  DnsCache replay(config);
  ASSERT_TRUE(replay.store("a/1", a_answer("a"), 0));
  ASSERT_TRUE(replay.store("b/1", a_answer("b"), 0));
  ASSERT_TRUE(replay.store("c/1", a_answer("c"), 0));
  ASSERT_TRUE(replay.lookup("a/1", 1).has_value());
  ASSERT_TRUE(replay.store("d/1", a_answer("d"), 1));
  EXPECT_EQ(replay.shard_sizes(), cache.shard_sizes());
  EXPECT_FALSE(replay.lookup("b/1", 2).has_value());
  EXPECT_EQ(replay.stats().evictions, cache.stats().evictions);
}

// The regression the old map could not pass: at the capacity boundary it
// flushed *everything*, so a hot key's hit rate collapsed to zero right
// after. With incremental LRU eviction the hot key stays resident through
// an arbitrarily long stream of cold inserts.
TEST(DnsCache, HotKeySurvivesCapacityBoundary) {
  CacheConfig config;
  config.shards = 4;
  config.max_entries = 64;
  DnsCache cache(config);

  // A TTL longer than the whole run, so only eviction could drop the key.
  ASSERT_TRUE(cache.store("hot.test/1", a_answer("hot.test", 86400), 0));
  std::uint64_t hot_hits = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::string cold = "cold" + std::to_string(i) + ".test/1";
    ASSERT_TRUE(cache.store(cold, a_answer(cold, 86400), i));
    if (cache.lookup("hot.test/1", i).has_value()) ++hot_hits;
  }
  // Far past the capacity boundary (1000 inserts into 64 slots), every
  // hot-key lookup still hit: each hit re-marks it most-recently-used.
  EXPECT_EQ(hot_hits, 1000u);
  EXPECT_GT(cache.stats().evictions, 900u);
  EXPECT_LE(cache.size(), 64u);
}

TEST(DnsCache, ServeStaleDisabledNeverAnswers) {
  DnsCache cache;  // serve_stale defaults off
  ASSERT_TRUE(cache.store("s.test/1", a_answer("s.test", 300), 0));
  EXPECT_FALSE(cache.lookup_stale("s.test/1", 100).has_value());
}

TEST(DnsCache, ServeStaleAnswersWithinWindowOnly) {
  CacheConfig config;
  config.serve_stale = true;
  config.max_stale_s = 3600;
  DnsCache cache(config);
  ASSERT_TRUE(cache.store("s.test/1", a_answer("s.test", 300), 0));

  // Still fresh: answered, but not counted (or flagged) as stale.
  const auto fresh = cache.lookup_stale("s.test/1", 299);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(fresh->stale);
  EXPECT_EQ(cache.stats().stale_served, 0u);

  // Expired but within the RFC 8767 window: served and flagged stale.
  const auto stale = cache.lookup_stale("s.test/1", 300);
  ASSERT_TRUE(stale.has_value());
  EXPECT_TRUE(stale->stale);
  const auto late = cache.lookup_stale("s.test/1", 300 + 3599);
  ASSERT_TRUE(late.has_value());
  EXPECT_TRUE(late->stale);
  EXPECT_EQ(cache.stats().stale_served, 2u);

  // Lapsed past expiry + max_stale_s: too stale even for serve-stale.
  EXPECT_FALSE(cache.lookup_stale("s.test/1", 300 + 3600).has_value());
}

TEST(DnsCache, StoreRefreshesExistingEntry) {
  CacheConfig config;
  config.shards = 1;
  config.max_entries = 2;
  DnsCache cache(config);
  ASSERT_TRUE(cache.store("a/1", a_answer("a", 100), 0));
  ASSERT_TRUE(cache.store("b/1", a_answer("b", 100), 0));
  // Re-storing `a` refreshes in place (no eviction) and restarts its TTL.
  ASSERT_TRUE(cache.store("a/1", a_answer("a", 100), 50));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_TRUE(cache.lookup("a/1", 149).has_value());
  EXPECT_FALSE(cache.lookup("b/1", 100).has_value());
}

TEST(DnsCache, ClearEmptiesEveryShard) {
  DnsCache cache;
  for (int i = 0; i < 100; ++i) {
    const std::string name = "c" + std::to_string(i) + ".test/1";
    ASSERT_TRUE(cache.store(name, a_answer(name), 0));
  }
  ASSERT_EQ(cache.size(), 100u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  for (const std::size_t size : cache.shard_sizes()) EXPECT_EQ(size, 0u);
}

TEST(CacheConfig, EnvironmentOverrides) {
  CacheConfig fallback;
  fallback.max_entries = 1000;
  fallback.negative_ttl_s = 900;
  fallback.serve_stale = false;

  ::setenv("ENCDNS_CACHE_ENTRIES", "5000", 1);
  ::setenv("ENCDNS_CACHE_NEG_TTL", "60", 1);
  ::setenv("ENCDNS_CACHE_SERVE_STALE", "on", 1);
  const CacheConfig overridden = CacheConfig::from_env(fallback);
  EXPECT_EQ(overridden.max_entries, 5000u);
  EXPECT_EQ(overridden.negative_ttl_s, 60u);
  EXPECT_TRUE(overridden.serve_stale);

  // Garbage values abort loudly (DESIGN.md §13) instead of poisoning the
  // config or being silently ignored.
  ::setenv("ENCDNS_CACHE_ENTRIES", "-3", 1);
  EXPECT_THROW((void)CacheConfig::from_env(fallback), util::EnvError);
  ::unsetenv("ENCDNS_CACHE_ENTRIES");
  ::setenv("ENCDNS_CACHE_NEG_TTL", "junk", 1);
  EXPECT_THROW((void)CacheConfig::from_env(fallback), util::EnvError);
  ::unsetenv("ENCDNS_CACHE_NEG_TTL");
  ::setenv("ENCDNS_CACHE_SERVE_STALE", "maybe", 1);
  EXPECT_THROW((void)CacheConfig::from_env(fallback), util::EnvError);

  ::unsetenv("ENCDNS_CACHE_ENTRIES");
  ::unsetenv("ENCDNS_CACHE_NEG_TTL");
  ::unsetenv("ENCDNS_CACHE_SERVE_STALE");
  const CacheConfig untouched = CacheConfig::from_env(fallback);
  EXPECT_EQ(untouched.max_entries, 1000u);
  EXPECT_FALSE(untouched.serve_stale);
}

}  // namespace
}  // namespace encdns::cache
