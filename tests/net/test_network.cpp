#include "net/network.hpp"

#include <gtest/gtest.h>

#include "net/geo.hpp"
#include "tls/trust_store.hpp"
#include "tls/verify.hpp"

namespace encdns::net {
namespace {

const util::Date kDay{2019, 3, 1};

/// Echo service: answers every TCP request with its payload reversed; has a
/// TLS certificate on port 853 and a webpage on 80.
class EchoService final : public Service {
 public:
  EchoService()
      : chain_(tls::make_chain("echo.example", tls::kLetsEncryptCa, {2019, 1, 1},
                               {2019, 12, 1})) {}
  std::string label() const override { return "echo"; }
  bool accepts(std::uint16_t port, Transport transport) const override {
    if (transport == Transport::kUdp) return port == 53;
    return port == 53 || port == 80 || port == 853;
  }
  const tls::CertificateChain* certificate(std::uint16_t port, const std::string&,
                                           const util::Date&) const override {
    return port == 853 ? &chain_ : nullptr;
  }
  WireReply handle(const WireRequest& request) override {
    last_pop_country = request.pop.country;
    std::vector<std::uint8_t> reversed(request.payload.rbegin(),
                                       request.payload.rend());
    return WireReply::of(std::move(reversed), sim::Millis{1.0});
  }
  std::string webpage(std::uint16_t port) const override {
    return port == 80 ? "echo home page" : "";
  }

  std::string last_pop_country;

 private:
  tls::CertificateChain chain_;
};

class DropBox final : public Middlebox {
 public:
  std::string label() const override { return "drop"; }
  TcpVerdict on_tcp_syn(util::Ipv4, std::uint16_t port,
                        const util::Date&) const override {
    TcpVerdict v;
    if (port == 53) v.action = TcpVerdict::Action::kDrop;
    return v;
  }
  UdpVerdict on_udp(util::Ipv4, std::uint16_t port, std::span<const std::uint8_t>,
                    const util::Date&) const override {
    UdpVerdict v;
    if (port == 53) v.action = UdpVerdict::Action::kDrop;
    return v;
  }
};

class InterceptAllBox final : public Middlebox {
 public:
  InterceptAllBox() : interceptor_("Evil CA", "dpi-box") {}
  std::string label() const override { return "intercept"; }
  const tls::TlsInterceptor* tls_interceptor(util::Ipv4,
                                             std::uint16_t) const override {
    return &interceptor_;
  }

 private:
  tls::TlsInterceptor interceptor_;
};

ClientContext make_client(double lat = 40.0, double lon = -100.0) {
  ClientContext ctx;
  ctx.location.geo = {lat, lon};
  ctx.location.country = "US";
  ctx.link.last_mile = sim::Millis{5.0};
  ctx.link.loss_rate = 0.0;
  ctx.link.jitter_sigma = 0.01;
  return ctx;
}

struct NetFixture : ::testing::Test {
  Network network;
  std::shared_ptr<EchoService> service = std::make_shared<EchoService>();
  util::Rng rng{123};
  ClientContext client = make_client();
  util::Ipv4 addr{10, 1, 1, 1};

  void SetUp() override {
    Pop us_pop{Location{{39.0, -98.0}, "US", 1}, service, sim::Millis{0.1}};
    Pop eu_pop{Location{{51.0, 9.0}, "DE", 2}, service, sim::Millis{0.1}};
    network.bind(Binding{addr, {us_pop, eu_pop}, {2019, 1, 1}, {2019, 6, 1}});
  }
};

TEST_F(NetFixture, RoutesToNearestPop) {
  const Pop* pop = network.route(addr, client.location, kDay);
  ASSERT_NE(pop, nullptr);
  EXPECT_EQ(pop->location.country, "US");

  Location eu_client{{48.0, 11.0}, "DE", 3};
  EXPECT_EQ(network.route(addr, eu_client, kDay)->location.country, "DE");
}

TEST_F(NetFixture, ActivationWindowRespected) {
  EXPECT_NE(network.route(addr, client.location, kDay), nullptr);
  EXPECT_EQ(network.route(addr, client.location, {2018, 12, 31}), nullptr);
  EXPECT_EQ(network.route(addr, client.location, {2019, 6, 1}), nullptr);
}

TEST_F(NetFixture, OverlappingWindowsSelectByDate) {
  auto later = std::make_shared<EchoService>();
  network.bind(Binding{addr,
                       {Pop{Location{{39.0, -98.0}, "US", 1}, later, {}}},
                       {2019, 6, 1},
                       {2020, 1, 1}});
  EXPECT_EQ(network.route(addr, client.location, {2019, 7, 1})->service.get(),
            later.get());
}

TEST_F(NetFixture, ProbeOpenClosed) {
  EXPECT_EQ(network.probe_tcp(client, rng, addr, 853, kDay).status,
            Network::ProbeStatus::kOpen);
  EXPECT_EQ(network.probe_tcp(client, rng, addr, 22, kDay).status,
            Network::ProbeStatus::kClosed);
  EXPECT_EQ(network.probe_tcp(client, rng, util::Ipv4{10, 2, 2, 2}, 853, kDay).status,
            Network::ProbeStatus::kClosed);
}

TEST_F(NetFixture, UdpExchangeEcho) {
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  const auto result = network.udp_exchange(client, rng, addr, 53, payload, kDay, sim::Millis{5000.0});
  ASSERT_EQ(result.status, Network::UdpResult::Status::kOk);
  EXPECT_EQ(result.payload, (std::vector<std::uint8_t>{3, 2, 1}));
  EXPECT_GT(result.latency.value, 0.0);
  EXPECT_FALSE(result.spoofed);
  EXPECT_EQ(service->last_pop_country, "US");
}

TEST_F(NetFixture, UdpToClosedPortTimesOut) {
  const auto result = network.udp_exchange(client, rng, addr, 123, {}, kDay,
                                           sim::Millis{700.0});
  EXPECT_EQ(result.status, Network::UdpResult::Status::kTimeout);
  EXPECT_EQ(result.latency.value, 700.0);
}

TEST_F(NetFixture, TcpConnectAndExchange) {
  auto connect = network.tcp_connect(client, rng, addr, 853, kDay, sim::Millis{5000.0});
  ASSERT_EQ(connect.status, Network::ConnectResult::Status::kConnected);
  ASSERT_TRUE(connect.connection);
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  auto exchange = connect.connection->exchange(payload, sim::Millis{5000.0});
  ASSERT_EQ(exchange.status, net::TcpConnection::ExchangeResult::Status::kOk);
  EXPECT_EQ(exchange.payload, (std::vector<std::uint8_t>{7, 8, 9}));
  EXPECT_FALSE(connect.connection->hijacked());
}

TEST_F(NetFixture, TcpConnectRefusedOnClosedPort) {
  auto connect = network.tcp_connect(client, rng, addr, 4444, kDay, sim::Millis{5000.0});
  EXPECT_EQ(connect.status, Network::ConnectResult::Status::kRefused);
}

TEST_F(NetFixture, TcpConnectHonorsCallerDeadline) {
  // A client on the other side of the planet needs more than 100 ms for the
  // handshake RTT; the caller's deadline must win and be surfaced as a
  // Timeout whose reported latency is exactly the deadline (the caller
  // waited that long, no longer).
  ClientContext far_client = make_client(-33.9, 151.2);  // Sydney
  far_client.location.country = "AU";
  auto connect =
      network.tcp_connect(far_client, rng, addr, 853, kDay, sim::Millis{100.0});
  EXPECT_EQ(connect.status, Network::ConnectResult::Status::kTimeout);
  EXPECT_EQ(connect.latency.value, 100.0);
  EXPECT_FALSE(connect.connection.has_value());
  // The same path connects fine when the caller allows a realistic deadline,
  // proving the timeout above came from the deadline and not the route.
  auto patient =
      network.tcp_connect(far_client, rng, addr, 853, kDay, sim::Millis{5000.0});
  EXPECT_EQ(patient.status, Network::ConnectResult::Status::kConnected);
}

TEST_F(NetFixture, DroppedSynSurfacesDeadlineAsTimeout) {
  // When a middlebox blackholes the SYN there is no answer at all: the
  // caller's 100 ms deadline is the only thing that ends the wait.
  DropBox box;
  client.path.push_back(&box);
  auto connect =
      network.tcp_connect(client, rng, addr, 53, kDay, sim::Millis{100.0});
  EXPECT_EQ(connect.status, Network::ConnectResult::Status::kTimeout);
  EXPECT_EQ(connect.latency.value, 100.0);
}

TEST_F(NetFixture, ExchangeHonorsCallerDeadline) {
  auto connect =
      network.tcp_connect(client, rng, addr, 853, kDay, sim::Millis{5000.0});
  ASSERT_TRUE(connect.connection);
  // The established connection's RTT dwarfs a 1 ms per-request deadline.
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  auto exchange = connect.connection->exchange(payload, sim::Millis{1.0});
  EXPECT_EQ(exchange.status, TcpConnection::ExchangeResult::Status::kTimeout);
  EXPECT_EQ(exchange.latency.value, 1.0);
}

TEST_F(NetFixture, TlsHandshakeCollectsChain) {
  auto connect = network.tcp_connect(client, rng, addr, 853, kDay, sim::Millis{5000.0});
  ASSERT_TRUE(connect.connection);
  auto tls = connect.connection->tls_handshake("echo.example");
  ASSERT_EQ(tls.status, TcpConnection::TlsResult::Status::kEstablished);
  EXPECT_FALSE(tls.intercepted);
  ASSERT_NE(tls.chain, nullptr);
  EXPECT_EQ(tls.chain->leaf_cn(), "echo.example");
  EXPECT_TRUE(connect.connection->tls_established());
  EXPECT_EQ(tls::verify_path(*tls.chain, tls::TrustStore::mozilla(), kDay),
            tls::CertStatus::kValid);
}

TEST_F(NetFixture, TlsHandshakeFailsOnPlainPort) {
  auto connect = network.tcp_connect(client, rng, addr, 80, kDay, sim::Millis{5000.0});
  ASSERT_TRUE(connect.connection);
  auto tls = connect.connection->tls_handshake("echo.example");
  EXPECT_EQ(tls.status, TcpConnection::TlsResult::Status::kNoTls);
}

TEST_F(NetFixture, MiddleboxDropsPort53) {
  DropBox box;
  client.path.push_back(&box);
  EXPECT_EQ(network.probe_tcp(client, rng, addr, 53, kDay).status,
            Network::ProbeStatus::kFiltered);
  EXPECT_EQ(network.udp_exchange(client, rng, addr, 53, {}, kDay, sim::Millis{5000.0}).status,
            Network::UdpResult::Status::kTimeout);
  EXPECT_EQ(network.tcp_connect(client, rng, addr, 53, kDay, sim::Millis{5000.0}).status,
            Network::ConnectResult::Status::kTimeout);
  // Other ports unaffected.
  EXPECT_EQ(network.probe_tcp(client, rng, addr, 853, kDay).status,
            Network::ProbeStatus::kOpen);
}

TEST_F(NetFixture, HijackTerminatesAtDevice) {
  EchoService device;
  class HijackBox final : public Middlebox {
   public:
    explicit HijackBox(Service* device) : device_(device) {}
    std::string label() const override { return "hijack"; }
    TcpVerdict on_tcp_syn(util::Ipv4, std::uint16_t,
                          const util::Date&) const override {
      return TcpVerdict{TcpVerdict::Action::kHijack, device_};
    }

   private:
    Service* device_;
  } box(&device);
  client.path.push_back(&box);
  auto connect = network.tcp_connect(client, rng, addr, 80, kDay, sim::Millis{5000.0});
  ASSERT_EQ(connect.status, Network::ConnectResult::Status::kConnected);
  EXPECT_TRUE(connect.connection->hijacked());
  EXPECT_EQ(&connect.connection->endpoint(), &device);
}

TEST_F(NetFixture, InterceptionResignsChain) {
  InterceptAllBox box;
  client.path.push_back(&box);
  auto connect = network.tcp_connect(client, rng, addr, 853, kDay, sim::Millis{5000.0});
  ASSERT_TRUE(connect.connection);
  auto tls = connect.connection->tls_handshake("echo.example");
  ASSERT_EQ(tls.status, TcpConnection::TlsResult::Status::kEstablished);
  EXPECT_TRUE(tls.intercepted);
  ASSERT_NE(tls.chain, nullptr);
  EXPECT_EQ(tls.chain->leaf().issuer_cn, "Evil CA");
  EXPECT_EQ(tls.chain->leaf().subject_cn, "echo.example");  // subject preserved
  // Exchanges still reach the origin (proxied).
  const std::vector<std::uint8_t> payload = {5, 6};
  auto exchange = connect.connection->exchange(payload, sim::Millis{5000.0});
  ASSERT_EQ(exchange.status, TcpConnection::ExchangeResult::Status::kOk);
  EXPECT_EQ(exchange.payload, (std::vector<std::uint8_t>{6, 5}));
}

TEST_F(NetFixture, BackgroundHostsAcceptButDontSpeak) {
  network.set_background([](util::Ipv4 a, std::uint16_t port, const util::Date&) {
    return a == util::Ipv4{10, 99, 99, 99} && port == 853;
  });
  EXPECT_EQ(network.probe_tcp(client, rng, util::Ipv4{10, 99, 99, 99}, 853, kDay)
                .status,
            Network::ProbeStatus::kOpen);
  auto connect =
      network.tcp_connect(client, rng, util::Ipv4{10, 99, 99, 99}, 853, kDay,
                          sim::Millis{5000.0});
  ASSERT_EQ(connect.status, Network::ConnectResult::Status::kConnected);
  auto tls = connect.connection->tls_handshake("x");
  EXPECT_EQ(tls.status, TcpConnection::TlsResult::Status::kNoTls);
  // Other addresses stay closed.
  EXPECT_EQ(network.probe_tcp(client, rng, util::Ipv4{10, 99, 99, 98}, 853, kDay)
                .status,
            Network::ProbeStatus::kClosed);
}

TEST_F(NetFixture, LatencyGrowsWithDistance) {
  ClientContext nearby = make_client(39.0, -98.0);
  ClientContext far = make_client(-35.0, 149.0);  // Australia
  double near_sum = 0, far_sum = 0;
  for (int i = 0; i < 30; ++i) {
    near_sum += network.probe_tcp(nearby, rng, addr, 853, kDay).latency.value;
    far_sum += network.probe_tcp(far, rng, addr, 853, kDay).latency.value;
  }
  EXPECT_GT(far_sum, near_sum * 2);
}

TEST(Geo, KnownDistances) {
  const GeoPoint beijing{39.9, 116.4};
  const GeoPoint virginia{38.9, -77.0};
  const double km = great_circle_km(beijing, virginia);
  EXPECT_NEAR(km, 11150, 300);  // great-circle Beijing - DC
  EXPECT_NEAR(great_circle_km(beijing, beijing), 0.0, 1e-9);
}

TEST(Geo, RttMonotoneInDistance) {
  const GeoPoint origin{0, 0};
  double prev = 0.0;
  for (double lon = 0; lon <= 180; lon += 20) {
    const double rtt = propagation_rtt(origin, GeoPoint{0, lon}).value;
    EXPECT_GE(rtt, prev);
    prev = rtt;
  }
  EXPECT_GT(propagation_rtt(origin, origin).value, 0.0);  // floor
}

}  // namespace
}  // namespace encdns::net
