// Stub-resolver clients exercised against a full World.
#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <string>

#include "client/do53.hpp"
#include "client/doh.hpp"
#include "client/dot.hpp"
#include "http/url.hpp"
#include "world/world.hpp"

namespace encdns::client {
namespace {

const util::Date kDay{2019, 3, 10};

struct ClientFixture : ::testing::Test {
  static world::World& shared_world() {
    static world::World world;
    return world;
  }
  world::World& world = shared_world();
  world::Vantage vantage = world.make_clean_vantage("US");
  util::Rng rng{991};
};

TEST_F(ClientFixture, Do53UdpResolvesProbeName) {
  Do53Client client(world.network(), vantage.context, 1);
  const auto outcome = client.query_udp(world::addrs::kGooglePrimary,
                                        world.unique_probe_name(rng),
                                        dns::RrType::kA, kDay);
  ASSERT_TRUE(outcome.answered());
  EXPECT_EQ(*outcome.response->first_a(), world.probe_answer());
}

TEST_F(ClientFixture, Do53TcpReusesConnections) {
  Do53Client client(world.network(), vantage.context, 2);
  const auto first = client.query_tcp(world::addrs::kCloudflarePrimary,
                                      world.unique_probe_name(rng),
                                      dns::RrType::kA, kDay);
  ASSERT_TRUE(first.answered());
  EXPECT_FALSE(first.reused_connection);
  const auto second = client.query_tcp(world::addrs::kCloudflarePrimary,
                                       world.unique_probe_name(rng),
                                       dns::RrType::kA, kDay);
  ASSERT_TRUE(second.answered());
  EXPECT_TRUE(second.reused_connection);
  // The reused query pays no connection setup: its total equals its
  // transaction time, while the first query's total exceeds it.
  EXPECT_DOUBLE_EQ(second.latency.value, second.transaction_latency.value);
  EXPECT_GT(first.latency.value, first.transaction_latency.value);
  client.reset_pool();
  const auto third = client.query_tcp(world::addrs::kCloudflarePrimary,
                                      world.unique_probe_name(rng),
                                      dns::RrType::kA, kDay);
  EXPECT_FALSE(third.reused_connection);
}

TEST_F(ClientFixture, Do53TcpToUnboundAddressFails) {
  Do53Client client(world.network(), vantage.context, 3);
  const auto outcome = client.query_tcp(util::Ipv4{192, 0, 2, 1},
                                        world.unique_probe_name(rng),
                                        dns::RrType::kA, kDay);
  EXPECT_EQ(outcome.status, QueryStatus::kConnectFailed);
}

TEST_F(ClientFixture, DotOpportunisticCollectsValidCert) {
  DotClient client(world.network(), vantage.context, 4);
  DotClient::Options options;
  options.profile = PrivacyProfile::kOpportunistic;
  const auto outcome = client.query(world::addrs::kCloudflarePrimary,
                                    world.unique_probe_name(rng), dns::RrType::kA,
                                    kDay, options);
  ASSERT_TRUE(outcome.answered());
  ASSERT_TRUE(outcome.cert_status);
  EXPECT_EQ(*outcome.cert_status, tls::CertStatus::kValid);
  EXPECT_EQ(outcome.presented_chain.leaf_cn(), "cloudflare-dns.com");
}

TEST_F(ClientFixture, DotStrictValidatesName) {
  DotClient client(world.network(), vantage.context, 5);
  DotClient::Options options;
  options.profile = PrivacyProfile::kStrict;
  options.auth_name = "cloudflare-dns.com";
  EXPECT_TRUE(client.query(world::addrs::kCloudflarePrimary,
                           world.unique_probe_name(rng), dns::RrType::kA, kDay,
                           options)
                  .answered());
  // Strict with the wrong authentication name must abort.
  options.auth_name = "wrong.example";
  client.reset_pool();
  const auto rejected = client.query(world::addrs::kCloudflarePrimary,
                                     world.unique_probe_name(rng), dns::RrType::kA,
                                     kDay, options);
  EXPECT_EQ(rejected.status, QueryStatus::kCertRejected);
  EXPECT_EQ(*rejected.cert_status, tls::CertStatus::kHostnameMismatch);
}

TEST_F(ClientFixture, DotStrictRejectsSelfSignedProvider) {
  // Find a self-signed deployment from the catalogue ground truth.
  const world::DotDeployment* self_signed = nullptr;
  for (const auto& d : world.deployments().dot) {
    if (d.cert_kind == world::CertKind::kSelfSigned &&
        kDay.in_window(d.active_from, d.active_to)) {
      self_signed = &d;
      break;
    }
  }
  ASSERT_NE(self_signed, nullptr);
  DotClient client(world.network(), vantage.context, 6);
  DotClient::Options options;
  options.profile = PrivacyProfile::kStrict;
  options.auth_name = self_signed->cert_cn;
  const auto strict = client.query(self_signed->address,
                                   world.unique_probe_name(rng), dns::RrType::kA,
                                   kDay, options);
  EXPECT_EQ(strict.status, QueryStatus::kCertRejected);

  // Opportunistic proceeds and records the invalid status.
  options.profile = PrivacyProfile::kOpportunistic;
  options.auth_name.clear();
  client.reset_pool();
  const auto opportunistic = client.query(self_signed->address,
                                          world.unique_probe_name(rng),
                                          dns::RrType::kA, kDay, options);
  ASSERT_TRUE(opportunistic.answered());
  EXPECT_TRUE(tls::is_invalid(*opportunistic.cert_status));
}

TEST_F(ClientFixture, DohStrictAgainstCloudflare) {
  DohClient client(world.network(), vantage.context, 7);
  const auto tmpl =
      *http::UriTemplate::parse("https://mozilla.cloudflare-dns.com/dns-query{?dns}");
  DohClient::Options options;
  options.bootstrap_resolver = world.bootstrap_resolver("US");
  const auto outcome = client.query(tmpl, world.unique_probe_name(rng),
                                    dns::RrType::kA, kDay, options);
  ASSERT_TRUE(outcome.answered());
  EXPECT_EQ(outcome.http_status, 200);
  EXPECT_EQ(*outcome.response->first_a(), world.probe_answer());
}

TEST_F(ClientFixture, DohPostWorksToo) {
  DohClient client(world.network(), vantage.context, 8);
  const auto tmpl = *http::UriTemplate::parse(world::kSelfBuiltDohTemplate);
  DohClient::Options options;
  options.method = http::Method::kPost;
  options.server_address = world::addrs::kSelfBuilt;
  const auto outcome = client.query(tmpl, world.unique_probe_name(rng),
                                    dns::RrType::kA, kDay, options);
  ASSERT_TRUE(outcome.answered());
}

TEST_F(ClientFixture, DohBootstrapFailureSurfaces) {
  DohClient client(world.network(), vantage.context, 9);
  const auto tmpl = *http::UriTemplate::parse("https://doh.example.invalid/dns-query{?dns}");
  DohClient::Options options;
  // No bootstrap resolver configured at all:
  const auto no_bootstrap = client.query(tmpl, world.unique_probe_name(rng),
                                         dns::RrType::kA, kDay, options);
  EXPECT_EQ(no_bootstrap.status, QueryStatus::kBootstrapFailed);
  // With bootstrap, the unknown host synthesizes an address with no service:
  options.bootstrap_resolver = world.bootstrap_resolver("US");
  const auto no_service = client.query(tmpl, world.unique_probe_name(rng),
                                       dns::RrType::kA, kDay, options);
  EXPECT_EQ(no_service.status, QueryStatus::kConnectFailed);
}

TEST_F(ClientFixture, DohWrongHostCertRejected) {
  DohClient client(world.network(), vantage.context, 10);
  // Point a template with the wrong hostname at Cloudflare's DoH address:
  // strict validation must reject the mismatching certificate.
  const auto tmpl = *http::UriTemplate::parse("https://evil.example/dns-query{?dns}");
  DohClient::Options options;
  options.server_address = world::addrs::kCloudflareDohA;
  const auto outcome = client.query(tmpl, world.unique_probe_name(rng),
                                    dns::RrType::kA, kDay, options);
  EXPECT_EQ(outcome.status, QueryStatus::kCertRejected);
  EXPECT_EQ(*outcome.cert_status, tls::CertStatus::kHostnameMismatch);
}

TEST_F(ClientFixture, DotCleartextFallback) {
  // Self-built resolver: TLS is available, so no fallback; for a port with
  // TLS unavailable, opportunistic+fallback downgrades to Do53/TCP.
  DotClient client(world.network(), vantage.context, 11);
  DotClient::Options options;
  options.profile = PrivacyProfile::kOpportunistic;
  options.allow_cleartext_fallback = true;
  // Google serves Do53 but not DoT: the DoT connect is refused, and the
  // fallback succeeds over clear-text TCP/53.
  const auto outcome = client.query(world::addrs::kGooglePrimary,
                                    world.unique_probe_name(rng), dns::RrType::kA,
                                    kDay, options);
  EXPECT_TRUE(outcome.answered());
}

TEST_F(ClientFixture, SessionResumptionShortensReconnects) {
  DotClient client(world.network(), vantage.context, 13);
  DotClient::Options options;
  options.reuse_connection = false;  // force a new connection per query
  options.use_session_resumption = true;
  options.tls_version = tls::TlsVersion::kTls12;  // full handshake = 2 RTTs
  const auto first = client.query(world::addrs::kCloudflarePrimary,
                                  world.unique_probe_name(rng), dns::RrType::kA,
                                  kDay, options);
  ASSERT_TRUE(first.answered());
  EXPECT_FALSE(first.resumed_session);  // no ticket yet
  const auto second = client.query(world::addrs::kCloudflarePrimary,
                                   world.unique_probe_name(rng), dns::RrType::kA,
                                   kDay, options);
  ASSERT_TRUE(second.answered());
  EXPECT_TRUE(second.resumed_session);
  // Resumption is off by default (the paper's Table 7 methodology).
  DotClient fresh_client(world.network(), vantage.context, 14);
  DotClient::Options defaults;
  defaults.reuse_connection = false;
  (void)fresh_client.query(world::addrs::kCloudflarePrimary,
                           world.unique_probe_name(rng), dns::RrType::kA, kDay,
                           defaults);
  const auto still_full = fresh_client.query(world::addrs::kCloudflarePrimary,
                                             world.unique_probe_name(rng),
                                             dns::RrType::kA, kDay, defaults);
  EXPECT_FALSE(still_full.resumed_session);
}

TEST_F(ClientFixture, PaddingAppliedToEncryptedQueries) {
  DotClient client(world.network(), vantage.context, 12);
  DotClient::Options options;
  options.padding_block = 128;
  const auto outcome = client.query(world::addrs::kCloudflarePrimary,
                                    world.unique_probe_name(rng), dns::RrType::kA,
                                    kDay, options);
  ASSERT_TRUE(outcome.answered());  // server handles padded queries fine
}

TEST(QueryStatusNames, ToStringCoversEveryStatus) {
  const QueryStatus all[] = {
      QueryStatus::kOk,           QueryStatus::kTimeout,
      QueryStatus::kConnectFailed, QueryStatus::kConnectionReset,
      QueryStatus::kTlsFailed,    QueryStatus::kCertRejected,
      QueryStatus::kBootstrapFailed, QueryStatus::kHttpError,
      QueryStatus::kProtocolError};
  std::set<std::string> names;
  for (const QueryStatus status : all) {
    const std::string name = to_string(status);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown") << "unhandled enumerator";
    names.insert(name);
  }
  EXPECT_EQ(names.size(), std::size(all)) << "two statuses share a name";
}

// --- middlebox verdict matrix ----------------------------------------------
// Exhaustive kDrop / kReset / kHijack x Do53-TCP / DoT / DoH: pins which
// QueryStatus each client surfaces for each in-path TCP verdict, so the
// transient-vs-persistent retry classification rests on tested ground.

using TcpAction = net::Middlebox::TcpVerdict::Action;

/// Returns one fixed TCP verdict for every destination.
class FixedVerdictBox final : public net::Middlebox {
 public:
  FixedVerdictBox(TcpAction action, net::Service* service = nullptr)
      : action_(action), service_(service) {}
  [[nodiscard]] std::string label() const override { return "fixed-verdict"; }
  [[nodiscard]] TcpVerdict on_tcp_syn(util::Ipv4, std::uint16_t,
                                      const util::Date&) const override {
    return {action_, service_};
  }

 private:
  TcpAction action_;
  net::Service* service_;
};

struct VerdictMatrixFixture : ClientFixture {
  // The hijacking device answers SYNs on the DNS/DoT/DoH ports but speaks
  // none of the protocols (no TLS, no DNS framing) — the paper's "another
  // device answers for 1.1.1.1" case.
  world::DeviceService device{"conflict-device",
                              std::vector<std::uint16_t>{53, 443, 853},
                              "<html>device</html>"};

  enum class Protocol { kDo53, kDoT, kDoH };

  [[nodiscard]] net::ClientContext context_with(const net::Middlebox& box) {
    net::ClientContext context = vantage.context;
    context.path.push_back(&box);
    return context;
  }

  [[nodiscard]] QueryOutcome run(Protocol protocol,
                                 const net::ClientContext& context) {
    switch (protocol) {
      case Protocol::kDo53: {
        Do53Client client(world.network(), context, 21);
        return client.query_tcp(world::addrs::kCloudflarePrimary,
                                world.unique_probe_name(rng), dns::RrType::kA,
                                kDay);
      }
      case Protocol::kDoT: {
        DotClient client(world.network(), context, 22);
        DotClient::Options options;
        options.profile = PrivacyProfile::kOpportunistic;
        return client.query(world::addrs::kCloudflarePrimary,
                            world.unique_probe_name(rng), dns::RrType::kA, kDay,
                            options);
      }
      case Protocol::kDoH: {
        DohClient client(world.network(), context, 23);
        DohClient::Options options;
        // Pin the server address: bootstrap runs over UDP and would dodge
        // the TCP middlebox under test.
        options.server_address = world::addrs::kCloudflarePrimary;
        const auto tmpl =
            http::UriTemplate::parse("https://cloudflare-dns.com/dns-query{?dns}");
        return client.query(*tmpl, world.unique_probe_name(rng), dns::RrType::kA,
                            kDay, options);
      }
    }
    return {};
  }
};

TEST_F(VerdictMatrixFixture, DropTimesOutEveryTransport) {
  const FixedVerdictBox box(TcpAction::kDrop);
  const auto context = context_with(box);
  for (const Protocol protocol :
       {Protocol::kDo53, Protocol::kDoT, Protocol::kDoH}) {
    EXPECT_EQ(run(protocol, context).status, QueryStatus::kTimeout)
        << static_cast<int>(protocol);
  }
}

TEST_F(VerdictMatrixFixture, ResetSurfacesAsConnectionResetEveryTransport) {
  const FixedVerdictBox box(TcpAction::kReset);
  const auto context = context_with(box);
  for (const Protocol protocol :
       {Protocol::kDo53, Protocol::kDoT, Protocol::kDoH}) {
    EXPECT_EQ(run(protocol, context).status, QueryStatus::kConnectionReset)
        << static_cast<int>(protocol);
  }
}

TEST_F(VerdictMatrixFixture, HijackByNonDnsDeviceSplitsByTransport) {
  const FixedVerdictBox box(TcpAction::kHijack, &device);
  const auto context = context_with(box);
  // Do53/TCP connects but the device never frames a DNS reply: the stream
  // closes under the client (transient-looking reset).
  EXPECT_EQ(run(Protocol::kDo53, context).status,
            QueryStatus::kConnectionReset);
  // DoT/DoH connect but the device has no certificate: TLS fails, which the
  // retry policy rightly treats as persistent.
  EXPECT_EQ(run(Protocol::kDoT, context).status, QueryStatus::kTlsFailed);
  EXPECT_EQ(run(Protocol::kDoH, context).status, QueryStatus::kTlsFailed);
}

TEST_F(VerdictMatrixFixture, HijackByDeafDeviceRefusesEveryTransport) {
  world::DeviceService deaf{"deaf-device", std::vector<std::uint16_t>{22},
                            ""};
  const FixedVerdictBox box(TcpAction::kHijack, &deaf);
  const auto context = context_with(box);
  for (const Protocol protocol :
       {Protocol::kDo53, Protocol::kDoT, Protocol::kDoH}) {
    EXPECT_EQ(run(protocol, context).status, QueryStatus::kConnectFailed)
        << static_cast<int>(protocol);
  }
}

}  // namespace
}  // namespace encdns::client
