// Stub-resolver clients exercised against a full World.
#include <gtest/gtest.h>

#include "client/do53.hpp"
#include "client/doh.hpp"
#include "client/dot.hpp"
#include "http/url.hpp"
#include "world/world.hpp"

namespace encdns::client {
namespace {

const util::Date kDay{2019, 3, 10};

struct ClientFixture : ::testing::Test {
  static world::World& shared_world() {
    static world::World world;
    return world;
  }
  world::World& world = shared_world();
  world::Vantage vantage = world.make_clean_vantage("US");
  util::Rng rng{991};
};

TEST_F(ClientFixture, Do53UdpResolvesProbeName) {
  Do53Client client(world.network(), vantage.context, 1);
  const auto outcome = client.query_udp(world::addrs::kGooglePrimary,
                                        world.unique_probe_name(rng),
                                        dns::RrType::kA, kDay);
  ASSERT_TRUE(outcome.answered());
  EXPECT_EQ(*outcome.response->first_a(), world.probe_answer());
}

TEST_F(ClientFixture, Do53TcpReusesConnections) {
  Do53Client client(world.network(), vantage.context, 2);
  const auto first = client.query_tcp(world::addrs::kCloudflarePrimary,
                                      world.unique_probe_name(rng),
                                      dns::RrType::kA, kDay);
  ASSERT_TRUE(first.answered());
  EXPECT_FALSE(first.reused_connection);
  const auto second = client.query_tcp(world::addrs::kCloudflarePrimary,
                                       world.unique_probe_name(rng),
                                       dns::RrType::kA, kDay);
  ASSERT_TRUE(second.answered());
  EXPECT_TRUE(second.reused_connection);
  // The reused query pays no connection setup: its total equals its
  // transaction time, while the first query's total exceeds it.
  EXPECT_DOUBLE_EQ(second.latency.value, second.transaction_latency.value);
  EXPECT_GT(first.latency.value, first.transaction_latency.value);
  client.reset_pool();
  const auto third = client.query_tcp(world::addrs::kCloudflarePrimary,
                                      world.unique_probe_name(rng),
                                      dns::RrType::kA, kDay);
  EXPECT_FALSE(third.reused_connection);
}

TEST_F(ClientFixture, Do53TcpToUnboundAddressFails) {
  Do53Client client(world.network(), vantage.context, 3);
  const auto outcome = client.query_tcp(util::Ipv4{192, 0, 2, 1},
                                        world.unique_probe_name(rng),
                                        dns::RrType::kA, kDay);
  EXPECT_EQ(outcome.status, QueryStatus::kConnectFailed);
}

TEST_F(ClientFixture, DotOpportunisticCollectsValidCert) {
  DotClient client(world.network(), vantage.context, 4);
  DotClient::Options options;
  options.profile = PrivacyProfile::kOpportunistic;
  const auto outcome = client.query(world::addrs::kCloudflarePrimary,
                                    world.unique_probe_name(rng), dns::RrType::kA,
                                    kDay, options);
  ASSERT_TRUE(outcome.answered());
  ASSERT_TRUE(outcome.cert_status);
  EXPECT_EQ(*outcome.cert_status, tls::CertStatus::kValid);
  EXPECT_EQ(outcome.presented_chain.leaf_cn(), "cloudflare-dns.com");
}

TEST_F(ClientFixture, DotStrictValidatesName) {
  DotClient client(world.network(), vantage.context, 5);
  DotClient::Options options;
  options.profile = PrivacyProfile::kStrict;
  options.auth_name = "cloudflare-dns.com";
  EXPECT_TRUE(client.query(world::addrs::kCloudflarePrimary,
                           world.unique_probe_name(rng), dns::RrType::kA, kDay,
                           options)
                  .answered());
  // Strict with the wrong authentication name must abort.
  options.auth_name = "wrong.example";
  client.reset_pool();
  const auto rejected = client.query(world::addrs::kCloudflarePrimary,
                                     world.unique_probe_name(rng), dns::RrType::kA,
                                     kDay, options);
  EXPECT_EQ(rejected.status, QueryStatus::kCertRejected);
  EXPECT_EQ(*rejected.cert_status, tls::CertStatus::kHostnameMismatch);
}

TEST_F(ClientFixture, DotStrictRejectsSelfSignedProvider) {
  // Find a self-signed deployment from the catalogue ground truth.
  const world::DotDeployment* self_signed = nullptr;
  for (const auto& d : world.deployments().dot) {
    if (d.cert_kind == world::CertKind::kSelfSigned &&
        kDay.in_window(d.active_from, d.active_to)) {
      self_signed = &d;
      break;
    }
  }
  ASSERT_NE(self_signed, nullptr);
  DotClient client(world.network(), vantage.context, 6);
  DotClient::Options options;
  options.profile = PrivacyProfile::kStrict;
  options.auth_name = self_signed->cert_cn;
  const auto strict = client.query(self_signed->address,
                                   world.unique_probe_name(rng), dns::RrType::kA,
                                   kDay, options);
  EXPECT_EQ(strict.status, QueryStatus::kCertRejected);

  // Opportunistic proceeds and records the invalid status.
  options.profile = PrivacyProfile::kOpportunistic;
  options.auth_name.clear();
  client.reset_pool();
  const auto opportunistic = client.query(self_signed->address,
                                          world.unique_probe_name(rng),
                                          dns::RrType::kA, kDay, options);
  ASSERT_TRUE(opportunistic.answered());
  EXPECT_TRUE(tls::is_invalid(*opportunistic.cert_status));
}

TEST_F(ClientFixture, DohStrictAgainstCloudflare) {
  DohClient client(world.network(), vantage.context, 7);
  const auto tmpl =
      *http::UriTemplate::parse("https://mozilla.cloudflare-dns.com/dns-query{?dns}");
  DohClient::Options options;
  options.bootstrap_resolver = world.bootstrap_resolver("US");
  const auto outcome = client.query(tmpl, world.unique_probe_name(rng),
                                    dns::RrType::kA, kDay, options);
  ASSERT_TRUE(outcome.answered());
  EXPECT_EQ(outcome.http_status, 200);
  EXPECT_EQ(*outcome.response->first_a(), world.probe_answer());
}

TEST_F(ClientFixture, DohPostWorksToo) {
  DohClient client(world.network(), vantage.context, 8);
  const auto tmpl = *http::UriTemplate::parse(world::kSelfBuiltDohTemplate);
  DohClient::Options options;
  options.method = http::Method::kPost;
  options.server_address = world::addrs::kSelfBuilt;
  const auto outcome = client.query(tmpl, world.unique_probe_name(rng),
                                    dns::RrType::kA, kDay, options);
  ASSERT_TRUE(outcome.answered());
}

TEST_F(ClientFixture, DohBootstrapFailureSurfaces) {
  DohClient client(world.network(), vantage.context, 9);
  const auto tmpl = *http::UriTemplate::parse("https://doh.example.invalid/dns-query{?dns}");
  DohClient::Options options;
  // No bootstrap resolver configured at all:
  const auto no_bootstrap = client.query(tmpl, world.unique_probe_name(rng),
                                         dns::RrType::kA, kDay, options);
  EXPECT_EQ(no_bootstrap.status, QueryStatus::kBootstrapFailed);
  // With bootstrap, the unknown host synthesizes an address with no service:
  options.bootstrap_resolver = world.bootstrap_resolver("US");
  const auto no_service = client.query(tmpl, world.unique_probe_name(rng),
                                       dns::RrType::kA, kDay, options);
  EXPECT_EQ(no_service.status, QueryStatus::kConnectFailed);
}

TEST_F(ClientFixture, DohWrongHostCertRejected) {
  DohClient client(world.network(), vantage.context, 10);
  // Point a template with the wrong hostname at Cloudflare's DoH address:
  // strict validation must reject the mismatching certificate.
  const auto tmpl = *http::UriTemplate::parse("https://evil.example/dns-query{?dns}");
  DohClient::Options options;
  options.server_address = world::addrs::kCloudflareDohA;
  const auto outcome = client.query(tmpl, world.unique_probe_name(rng),
                                    dns::RrType::kA, kDay, options);
  EXPECT_EQ(outcome.status, QueryStatus::kCertRejected);
  EXPECT_EQ(*outcome.cert_status, tls::CertStatus::kHostnameMismatch);
}

TEST_F(ClientFixture, DotCleartextFallback) {
  // Self-built resolver: TLS is available, so no fallback; for a port with
  // TLS unavailable, opportunistic+fallback downgrades to Do53/TCP.
  DotClient client(world.network(), vantage.context, 11);
  DotClient::Options options;
  options.profile = PrivacyProfile::kOpportunistic;
  options.allow_cleartext_fallback = true;
  // Google serves Do53 but not DoT: the DoT connect is refused, and the
  // fallback succeeds over clear-text TCP/53.
  const auto outcome = client.query(world::addrs::kGooglePrimary,
                                    world.unique_probe_name(rng), dns::RrType::kA,
                                    kDay, options);
  EXPECT_TRUE(outcome.answered());
}

TEST_F(ClientFixture, SessionResumptionShortensReconnects) {
  DotClient client(world.network(), vantage.context, 13);
  DotClient::Options options;
  options.reuse_connection = false;  // force a new connection per query
  options.use_session_resumption = true;
  options.tls_version = tls::TlsVersion::kTls12;  // full handshake = 2 RTTs
  const auto first = client.query(world::addrs::kCloudflarePrimary,
                                  world.unique_probe_name(rng), dns::RrType::kA,
                                  kDay, options);
  ASSERT_TRUE(first.answered());
  EXPECT_FALSE(first.resumed_session);  // no ticket yet
  const auto second = client.query(world::addrs::kCloudflarePrimary,
                                   world.unique_probe_name(rng), dns::RrType::kA,
                                   kDay, options);
  ASSERT_TRUE(second.answered());
  EXPECT_TRUE(second.resumed_session);
  // Resumption is off by default (the paper's Table 7 methodology).
  DotClient fresh_client(world.network(), vantage.context, 14);
  DotClient::Options defaults;
  defaults.reuse_connection = false;
  (void)fresh_client.query(world::addrs::kCloudflarePrimary,
                           world.unique_probe_name(rng), dns::RrType::kA, kDay,
                           defaults);
  const auto still_full = fresh_client.query(world::addrs::kCloudflarePrimary,
                                             world.unique_probe_name(rng),
                                             dns::RrType::kA, kDay, defaults);
  EXPECT_FALSE(still_full.resumed_session);
}

TEST_F(ClientFixture, PaddingAppliedToEncryptedQueries) {
  DotClient client(world.network(), vantage.context, 12);
  DotClient::Options options;
  options.padding_block = 128;
  const auto outcome = client.query(world::addrs::kCloudflarePrimary,
                                    world.unique_probe_name(rng), dns::RrType::kA,
                                    kDay, options);
  ASSERT_TRUE(outcome.answered());  // server handles padded queries fine
}

}  // namespace
}  // namespace encdns::client
