#include <gtest/gtest.h>

#include "measure/local_probe.hpp"
#include "measure/performance.hpp"
#include "measure/reachability.hpp"
#include "measure/targets.hpp"

namespace encdns::measure {
namespace {

world::World& shared_world() {
  static world::World world;
  return world;
}

TEST(Targets, FourResolversWithExpectedCapabilities) {
  const auto targets = default_targets();
  ASSERT_EQ(targets.size(), 4u);
  EXPECT_EQ(targets[0].name, "Cloudflare");
  EXPECT_TRUE(targets[0].dot_address.has_value());
  EXPECT_TRUE(targets[0].doh_template.has_value());
  EXPECT_EQ(targets[1].name, "Google");
  EXPECT_FALSE(targets[1].dot_address.has_value());  // "n/a" in Table 4
  EXPECT_TRUE(targets[1].doh_template.has_value());
  EXPECT_EQ(targets[3].name, "Self-built");
}

TEST(Targets, DiagnosticPortsMatchFigure7) {
  const auto& ports = diagnostic_ports();
  for (const std::uint16_t port : {22, 23, 53, 67, 80, 123, 139, 161, 179, 443})
    EXPECT_NE(std::find(ports.begin(), ports.end(), port), ports.end()) << port;
}

TEST(OutcomeCounts, Fractions) {
  OutcomeCounts counts;
  counts.correct = 80;
  counts.incorrect = 5;
  counts.failed = 15;
  EXPECT_DOUBLE_EQ(counts.fraction(Outcome::kCorrect), 0.80);
  EXPECT_DOUBLE_EQ(counts.fraction(Outcome::kIncorrect), 0.05);
  EXPECT_DOUBLE_EQ(counts.fraction(Outcome::kFailed), 0.15);
  EXPECT_DOUBLE_EQ(OutcomeCounts{}.fraction(Outcome::kFailed), 0.0);
}

struct ReachabilityFixture : ::testing::Test {
  static const ReachabilityResults& global_results() {
    static const ReachabilityResults results = [] {
      proxy::ProxyNetwork platform(shared_world(), proxy::ProxyConfig{}, 21);
      ReachabilityConfig config;
      config.client_count = 1200;
      ReachabilityTest test(shared_world(), platform, config);
      return test.run();
    }();
    return results;
  }
  static const ReachabilityResults& cn_results() {
    static const ReachabilityResults results = [] {
      proxy::ProxyConfig proxy_config;
      proxy_config.name = "Zhima";
      proxy_config.kind = proxy::PlatformKind::kCensoredCn;
      proxy::ProxyNetwork platform(shared_world(), proxy_config, 22);
      ReachabilityConfig config;
      config.client_count = 800;
      config.seed = 23;
      ReachabilityTest test(shared_world(), platform, config);
      return test.run();
    }();
    return results;
  }
};

TEST_F(ReachabilityFixture, CloudflareClearTextFailsFarMoreThanDoT) {
  const auto& results = global_results();
  const double dns_failed =
      results.cell("Cloudflare", Protocol::kDo53).fraction(Outcome::kFailed);
  const double dot_failed =
      results.cell("Cloudflare", Protocol::kDoT).fraction(Outcome::kFailed);
  const double doh_failed =
      results.cell("Cloudflare", Protocol::kDoH).fraction(Outcome::kFailed);
  EXPECT_GT(dns_failed, 0.10);  // paper: 16.46%
  EXPECT_LT(dns_failed, 0.25);
  EXPECT_GT(dot_failed, 0.003);  // paper: 1.14%
  EXPECT_LT(dot_failed, 0.04);
  EXPECT_LT(doh_failed, 0.02);   // paper: 0.05%
  EXPECT_GT(dns_failed, dot_failed * 5);
}

TEST_F(ReachabilityFixture, EncryptedTransportsBeatClearTextEverywhere) {
  const auto& results = global_results();
  for (const char* resolver : {"Cloudflare", "Google"}) {
    const double dns =
        results.cell(resolver, Protocol::kDo53).fraction(Outcome::kFailed);
    const double doh =
        results.cell(resolver, Protocol::kDoH).fraction(Outcome::kFailed);
    EXPECT_GT(dns, doh) << resolver;
  }
}

TEST_F(ReachabilityFixture, Quad9DohServfailsAtHighRate) {
  const auto& results = global_results();
  const double incorrect =
      results.cell("Quad9", Protocol::kDoH).fraction(Outcome::kIncorrect);
  EXPECT_GT(incorrect, 0.06);  // paper: 13.09%
  EXPECT_LT(incorrect, 0.22);
  // Its clear-text and DoT paths stay clean.
  EXPECT_LT(results.cell("Quad9", Protocol::kDo53).fraction(Outcome::kFailed), 0.02);
  EXPECT_LT(results.cell("Quad9", Protocol::kDoT).fraction(Outcome::kFailed), 0.02);
}

TEST_F(ReachabilityFixture, SelfBuiltNearlyPerfect) {
  const auto& results = global_results();
  for (const Protocol protocol :
       {Protocol::kDo53, Protocol::kDoT, Protocol::kDoH}) {
    EXPECT_GT(results.cell("Self-built", protocol).fraction(Outcome::kCorrect),
              0.985);
  }
}

TEST_F(ReachabilityFixture, ConflictDiagnosesShapeTable5) {
  const auto& results = global_results();
  ASSERT_FALSE(results.conflict_diagnoses.empty());
  std::size_t none = 0, with_80 = 0;
  for (const auto& diagnosis : results.conflict_diagnoses) {
    if (diagnosis.open_ports.empty()) ++none;
    for (const std::uint16_t port : diagnosis.open_ports)
      if (port == 80) ++with_80;
  }
  // Most conflicting destinations have no ports open (blackholed), and the
  // device population exposes 80/443 most often.
  EXPECT_GT(none, results.conflict_diagnoses.size() / 3);
  EXPECT_GT(with_80, 0u);
}

TEST_F(ReachabilityFixture, InterceptionRecordsCarryUntrustedCa) {
  const auto& results = global_results();
  for (const auto& record : results.interceptions) {
    EXPECT_FALSE(record.untrusted_ca_cn.empty());
    EXPECT_TRUE(record.port_443 || record.port_853);
    // DoH is strict: it can never have answered through an interceptor.
    EXPECT_FALSE(record.doh_lookup_succeeded);
  }
}

TEST_F(ReachabilityFixture, CensoredPlatformBlocksGoogleDoh) {
  const auto& results = cn_results();
  EXPECT_GT(results.cell("Google", Protocol::kDoH).fraction(Outcome::kFailed),
            0.99);  // paper: 99.99%
  // Clear-text Google DNS mostly works from CN.
  EXPECT_LT(results.cell("Google", Protocol::kDo53).fraction(Outcome::kFailed),
            0.05);
  // Cloudflare 1.1.1.1 blackholed for a sizable minority on 53 AND 853.
  const double dns =
      results.cell("Cloudflare", Protocol::kDo53).fraction(Outcome::kFailed);
  const double dot =
      results.cell("Cloudflare", Protocol::kDoT).fraction(Outcome::kFailed);
  EXPECT_GT(dns, 0.08);
  EXPECT_NEAR(dns, dot, 0.05);  // same root cause, same rate
  // Cloudflare DoH rides different addresses and stays reachable.
  EXPECT_LT(results.cell("Cloudflare", Protocol::kDoH).fraction(Outcome::kFailed),
            0.05);
}

// The parallel engine's contract for the vantage fan-out: identical results
// for every thread count, and repeated parallel runs agree.
// Each run gets a fresh world: measurements warm resolver caches, so reusing
// a world would legitimately change later runs' latencies and outcomes.
TEST(Reachability, ResultsAreThreadCountInvariant) {
  const auto run_with_threads = [](unsigned threads) {
    world::World world;
    proxy::ProxyNetwork platform(world, proxy::ProxyConfig{}, 27);
    ReachabilityConfig config;
    config.client_count = 150;
    config.thread_count = threads;
    ReachabilityTest test(world, platform, config);
    return test.run();
  };
  const auto serial = run_with_threads(1);
  const auto parallel_a = run_with_threads(8);
  const auto parallel_b = run_with_threads(8);

  const auto equal = [](const ReachabilityResults& a,
                        const ReachabilityResults& b) {
    if (a.clients != b.clients) return false;
    if (a.cells.size() != b.cells.size()) return false;
    for (const auto& [key, counts] : a.cells) {
      const auto it = b.cells.find(key);
      if (it == b.cells.end()) return false;
      if (counts.correct != it->second.correct ||
          counts.incorrect != it->second.incorrect ||
          counts.failed != it->second.failed)
        return false;
    }
    if (a.interceptions.size() != b.interceptions.size()) return false;
    for (std::size_t i = 0; i < a.interceptions.size(); ++i) {
      if (a.interceptions[i].client_address != b.interceptions[i].client_address ||
          a.interceptions[i].untrusted_ca_cn != b.interceptions[i].untrusted_ca_cn)
        return false;
    }
    if (a.conflict_diagnoses.size() != b.conflict_diagnoses.size()) return false;
    for (std::size_t i = 0; i < a.conflict_diagnoses.size(); ++i) {
      if (a.conflict_diagnoses[i].client_address !=
              b.conflict_diagnoses[i].client_address ||
          a.conflict_diagnoses[i].open_ports != b.conflict_diagnoses[i].open_ports ||
          a.conflict_diagnoses[i].webpage_excerpt !=
              b.conflict_diagnoses[i].webpage_excerpt)
        return false;
    }
    return true;
  };
  EXPECT_TRUE(equal(serial, parallel_a));
  EXPECT_TRUE(equal(parallel_a, parallel_b));
}

TEST(Performance, ResultsAreThreadCountInvariant) {
  const auto run_with_threads = [](unsigned threads) {
    world::World world;
    proxy::ProxyNetwork platform(world, proxy::ProxyConfig{}, 33);
    PerformanceConfig config;
    config.client_count = 150;
    config.thread_count = threads;
    PerformanceTest test(world, platform, config);
    return test.run();
  };
  const auto serial = run_with_threads(1);
  const auto parallel_a = run_with_threads(8);
  const auto parallel_b = run_with_threads(8);

  const auto equal = [](const PerformanceResults& a, const PerformanceResults& b) {
    if (a.discarded_clients != b.discarded_clients) return false;
    if (a.clients.size() != b.clients.size()) return false;
    for (std::size_t i = 0; i < a.clients.size(); ++i) {
      if (a.clients[i].country != b.clients[i].country ||
          a.clients[i].dns_ms != b.clients[i].dns_ms ||
          a.clients[i].dot_ms != b.clients[i].dot_ms ||
          a.clients[i].doh_ms != b.clients[i].doh_ms)
        return false;
    }
    return true;
  };
  EXPECT_TRUE(equal(serial, parallel_a));
  EXPECT_TRUE(equal(parallel_a, parallel_b));
}

TEST(Performance, ReusedConnectionOverheadIsSmall) {
  proxy::ProxyNetwork platform(shared_world(), proxy::ProxyConfig{}, 31);
  PerformanceConfig config;
  config.client_count = 400;
  PerformanceTest test(shared_world(), platform, config);
  const auto results = test.run();
  ASSERT_GT(results.clients.size(), 250u);
  const double dot_median = results.overall(false, true);
  const double doh_median = results.overall(true, true);
  EXPECT_GT(dot_median, -5.0);
  EXPECT_LT(dot_median, 25.0);  // paper: several ms
  EXPECT_GT(doh_median, -15.0);
  EXPECT_LT(doh_median, 25.0);
  const auto rows = results.by_country(10);
  EXPECT_FALSE(rows.empty());
}

TEST(Performance, NoReuseOverheadIsLarge) {
  const auto rows = run_no_reuse_test(shared_world());
  ASSERT_EQ(rows.size(), 4u);
  for (const auto& row : rows) {
    EXPECT_GT(row.dns_s, 0.05);
    // TLS setup costs at least ~2 extra RTTs: tens to hundreds of ms.
    EXPECT_GT(row.dot_overhead_ms(), 30.0);
    EXPECT_GT(row.doh_overhead_ms(), 30.0);
    EXPECT_LT(row.dot_overhead_ms(), 1200.0);
  }
  // Farther vantages pay more (paper: US < NL < AU).
  const auto find = [&](const char* country) {
    for (const auto& row : rows)
      if (row.vantage_country == country) return row;
    return rows.front();
  };
  EXPECT_LT(find("US").dot_overhead_ms(), find("AU").dot_overhead_ms());
}

TEST(LocalProbe, IspDotDeploymentIsScarce) {
  LocalProbeConfig config;
  config.probe_count = 2000;
  const auto results = run_local_resolver_probe(shared_world(), config);
  EXPECT_EQ(results.probes, 2000u);
  EXPECT_LT(results.success_rate(), 0.03);  // paper: 0.3%
}

// --- fault-injection robustness --------------------------------------------

world::WorldConfig canonical_fault_config() {
  world::WorldConfig config;
  config.fault_profile = fault::FaultProfile::canonical();
  return config;
}

bool tally_equal(const fault::LayerTally& a, const fault::LayerTally& b) {
  return a.injected == b.injected && a.recovered == b.recovered &&
         a.surfaced == b.surfaced;
}

// With the canonical fault profile active, every retry, backoff draw and
// session failover still happens on per-shard rng streams, so the whole
// result — cells, diagnoses AND the fault tallies — is bit-identical for
// any thread count.
TEST(Reachability, FaultyRunIsThreadCountInvariant) {
  const auto run_with_threads = [](unsigned threads) {
    world::World world(canonical_fault_config());
    proxy::ProxyNetwork platform(world, proxy::ProxyConfig{}, 27);
    ReachabilityConfig config;
    config.client_count = 150;
    config.thread_count = threads;
    ReachabilityTest test(world, platform, config);
    return test.run();
  };
  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(8);

  EXPECT_EQ(serial.clients, parallel.clients);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (const auto& [key, counts] : serial.cells) {
    const auto it = parallel.cells.find(key);
    ASSERT_NE(it, parallel.cells.end());
    EXPECT_EQ(counts.correct, it->second.correct) << key.first;
    EXPECT_EQ(counts.incorrect, it->second.incorrect) << key.first;
    EXPECT_EQ(counts.failed, it->second.failed) << key.first;
  }
  EXPECT_EQ(serial.interceptions.size(), parallel.interceptions.size());
  EXPECT_EQ(serial.conflict_diagnoses.size(),
            parallel.conflict_diagnoses.size());
  EXPECT_TRUE(tally_equal(serial.client_faults, parallel.client_faults));
  EXPECT_TRUE(tally_equal(serial.proxy_faults, parallel.proxy_faults));
  // The canonical profile actually exercises the resilience paths: faults
  // are injected and mostly recovered.
  EXPECT_GT(serial.client_faults.injected, 0u);
  EXPECT_GT(serial.client_faults.recovered, 0u);
}

// The arena-backed fan-out keeps per-worker state alive across sessions: a
// thread-resident ClientSet rebound per vantage, a reused ClientOutcome whose
// response/chain storage deliberately outlives each query, and flat per-cell
// tally vectors (DESIGN.md §12). With the canonical fault profile driving
// retries, backoffs and mid-session failovers through those reused slots,
// every thread count — 1 (all sessions share one scratch), 2 (uneven shard
// interleaving) and 8 — must still produce byte-identical *content*, down to
// the interception CA names and diagnosis excerpts that stale scratch would
// corrupt first. Each run gets a fresh world; the serial run reuses the
// calling thread's scratch warmed by previous runs, which pins the
// cross-world rebind contract as well.
TEST(Reachability, FaultyArenaScratchReuseIsThreadCountInvariant) {
  const auto run_with_threads = [](unsigned threads) {
    // Canonical faults, plus interception and conflict rates cranked far
    // above the paper's so the record-content comparison below always has
    // material: this test pins scratch-reuse correctness, not Table 4 rates.
    world::WorldConfig world_config = canonical_fault_config();
    world_config.intercept_rate = 0.03;
    world_config.conflict_rate = 0.03;
    world::World world(world_config);
    proxy::ProxyNetwork platform(world, proxy::ProxyConfig{}, 27);
    ReachabilityConfig config;
    config.client_count = 1000;
    config.thread_count = threads;
    ReachabilityTest test(world, platform, config);
    return test.run();
  };
  const auto reference = run_with_threads(1);
  // The faulty profile must actually exercise the reuse paths under test.
  EXPECT_GT(reference.client_faults.injected, 0u);
  EXPECT_GT(reference.proxy_faults.injected, 0u);
  ASSERT_FALSE(reference.interceptions.empty());
  ASSERT_FALSE(reference.conflict_diagnoses.empty());

  for (const unsigned threads : {2u, 8u}) {
    const auto run = run_with_threads(threads);
    EXPECT_EQ(run.clients, reference.clients) << threads;
    ASSERT_EQ(run.cells.size(), reference.cells.size()) << threads;
    for (const auto& [key, counts] : reference.cells) {
      const auto it = run.cells.find(key);
      ASSERT_NE(it, run.cells.end()) << threads << " " << key.first;
      EXPECT_EQ(counts.correct, it->second.correct) << threads << " " << key.first;
      EXPECT_EQ(counts.incorrect, it->second.incorrect)
          << threads << " " << key.first;
      EXPECT_EQ(counts.failed, it->second.failed) << threads << " " << key.first;
    }
    ASSERT_EQ(run.interceptions.size(), reference.interceptions.size()) << threads;
    for (std::size_t i = 0; i < run.interceptions.size(); ++i) {
      const auto& a = reference.interceptions[i];
      const auto& b = run.interceptions[i];
      EXPECT_EQ(a.client_address, b.client_address) << threads;
      EXPECT_EQ(a.country, b.country) << threads;
      EXPECT_EQ(a.asn, b.asn) << threads;
      EXPECT_EQ(a.untrusted_ca_cn, b.untrusted_ca_cn) << threads;
      EXPECT_EQ(a.port_443, b.port_443) << threads;
      EXPECT_EQ(a.port_853, b.port_853) << threads;
      EXPECT_EQ(a.dot_lookup_succeeded, b.dot_lookup_succeeded) << threads;
      EXPECT_EQ(a.doh_lookup_succeeded, b.doh_lookup_succeeded) << threads;
    }
    ASSERT_EQ(run.conflict_diagnoses.size(), reference.conflict_diagnoses.size())
        << threads;
    for (std::size_t i = 0; i < run.conflict_diagnoses.size(); ++i) {
      const auto& a = reference.conflict_diagnoses[i];
      const auto& b = run.conflict_diagnoses[i];
      EXPECT_EQ(a.client_address, b.client_address) << threads;
      EXPECT_EQ(a.country, b.country) << threads;
      EXPECT_EQ(a.open_ports, b.open_ports) << threads;
      EXPECT_EQ(a.webpage_excerpt, b.webpage_excerpt) << threads;
    }
    EXPECT_TRUE(tally_equal(run.client_faults, reference.client_faults)) << threads;
    EXPECT_TRUE(tally_equal(run.proxy_faults, reference.proxy_faults)) << threads;
  }
}

TEST(Performance, FaultyRunIsThreadCountInvariant) {
  const auto run_with_threads = [](unsigned threads) {
    world::World world(canonical_fault_config());
    proxy::ProxyNetwork platform(world, proxy::ProxyConfig{}, 33);
    PerformanceConfig config;
    config.client_count = 150;
    config.thread_count = threads;
    PerformanceTest test(world, platform, config);
    return test.run();
  };
  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(8);

  EXPECT_EQ(serial.discarded_clients, parallel.discarded_clients);
  ASSERT_EQ(serial.clients.size(), parallel.clients.size());
  for (std::size_t i = 0; i < serial.clients.size(); ++i) {
    EXPECT_EQ(serial.clients[i].country, parallel.clients[i].country);
    EXPECT_EQ(serial.clients[i].dns_ms, parallel.clients[i].dns_ms);
    EXPECT_EQ(serial.clients[i].dot_ms, parallel.clients[i].dot_ms);
    EXPECT_EQ(serial.clients[i].doh_ms, parallel.clients[i].doh_ms);
  }
  EXPECT_TRUE(tally_equal(serial.client_faults, parallel.client_faults));
  EXPECT_TRUE(tally_equal(serial.proxy_faults, parallel.proxy_faults));
  EXPECT_GT(serial.client_faults.injected, 0u);
  EXPECT_GT(serial.client_faults.recovered, 0u);
  EXPECT_GT(serial.proxy_faults.injected, 0u);
  EXPECT_GT(serial.proxy_faults.recovered, 0u);
}

// The robustness acceptance bar: under the canonical profile the Table-4
// headline fractions reproduce within one percentage point of a fault-free
// run, because the retry/backoff/failover stack absorbs the injected
// transients instead of letting them masquerade as measurement results.
TEST(Reachability, CanonicalFaultsMoveHeadlineFractionsLessThanOnePoint) {
  const auto run_with_world = [](const world::WorldConfig& world_config) {
    world::World world(world_config);
    proxy::ProxyNetwork platform(world, proxy::ProxyConfig{}, 27);
    ReachabilityConfig config;
    config.client_count = 1200;
    ReachabilityTest test(world, platform, config);
    return test.run();
  };
  const auto clean = run_with_world(world::WorldConfig{});
  const auto faulty = run_with_world(canonical_fault_config());

  // Same platform seed, untouched serial acquisition: identical vantages.
  ASSERT_EQ(clean.clients, faulty.clients);
  EXPECT_GT(faulty.client_faults.injected, 0u);
  EXPECT_GT(faulty.client_faults.recovered, 0u);
  EXPECT_GT(faulty.proxy_faults.injected, 0u);
  EXPECT_GT(faulty.proxy_faults.recovered, 0u);

  // Aggregate fractions across every (resolver, protocol) cell.
  const auto aggregate = [](const ReachabilityResults& results) {
    OutcomeCounts total;
    for (const auto& [key, counts] : results.cells) {
      total.correct += counts.correct;
      total.incorrect += counts.incorrect;
      total.failed += counts.failed;
    }
    return total;
  };
  const OutcomeCounts clean_total = aggregate(clean);
  const OutcomeCounts faulty_total = aggregate(faulty);
  ASSERT_EQ(clean_total.total(), faulty_total.total());
  EXPECT_NEAR(faulty_total.fraction(Outcome::kCorrect),
              clean_total.fraction(Outcome::kCorrect), 0.01);
  EXPECT_NEAR(faulty_total.fraction(Outcome::kIncorrect),
              clean_total.fraction(Outcome::kIncorrect), 0.01);
  EXPECT_NEAR(faulty_total.fraction(Outcome::kFailed),
              clean_total.fraction(Outcome::kFailed), 0.01);

  // The headline per-resolver cells (Cloudflare row of Table 4) hold too.
  for (const Protocol protocol :
       {Protocol::kDo53, Protocol::kDoT, Protocol::kDoH}) {
    EXPECT_NEAR(faulty.cell("Cloudflare", protocol).fraction(Outcome::kFailed),
                clean.cell("Cloudflare", protocol).fraction(Outcome::kFailed),
                0.01)
        << static_cast<int>(protocol);
  }
}

TEST(Performance, CanonicalFaultsKeepOverheadsAndDiscardsClose) {
  const auto run_with_world = [](const world::WorldConfig& world_config) {
    world::World world(world_config);
    proxy::ProxyNetwork platform(world, proxy::ProxyConfig{}, 33);
    PerformanceConfig config;
    config.client_count = 600;
    PerformanceTest test(world, platform, config);
    return test.run();
  };
  const auto clean = run_with_world(world::WorldConfig{});
  const auto faulty = run_with_world(canonical_fault_config());

  EXPECT_GT(faulty.client_faults.injected, 0u);
  EXPECT_GT(faulty.client_faults.recovered, 0u);
  EXPECT_GT(faulty.proxy_faults.injected, 0u);
  EXPECT_GT(faulty.proxy_faults.recovered, 0u);

  // Discards move by a couple of points, not ±1 pp: every extra faulty-run
  // discard traces to an injected exit-node death whose failover re-rolls the
  // vantage, and the replacement draws from the same population (~1 in 6 sits
  // behind a persistent port-53 filter, so its Do53 leg can never succeed).
  // That is the correct surfacing of a genuinely broken path, not a missed
  // transient, so the bound here is a looser sanity band than the strict
  // ±1 pp the reachability headline-fraction test enforces.
  const auto discard_fraction = [](const PerformanceResults& results) {
    const double total =
        static_cast<double>(results.clients.size() + results.discarded_clients);
    return static_cast<double>(results.discarded_clients) / total;
  };
  EXPECT_NEAR(discard_fraction(faulty), discard_fraction(clean), 0.03);
  // Median overheads stay within a narrow absolute band: retries replace lost
  // samples instead of polluting the distribution with timeout-sized values,
  // and the small residual shift comes from the kept-client set changing
  // composition after failovers. Either way the paper's qualitative claim
  // holds: with connection reuse both encrypted transports cost only a few
  // extra milliseconds over Do53, nowhere near a timeout-sized blowup.
  EXPECT_NEAR(faulty.overall(/*doh=*/false, /*median=*/true),
              clean.overall(false, true), 25.0);
  EXPECT_NEAR(faulty.overall(/*doh=*/true, /*median=*/true),
              clean.overall(true, true), 25.0);
  EXPECT_LT(faulty.overall(/*doh=*/true, /*median=*/true), 50.0);
  EXPECT_LT(faulty.overall(/*doh=*/false, /*median=*/true), 50.0);
}

}  // namespace
}  // namespace encdns::measure
