// Unit tests for the observability layer (src/obs) plus the acceptance
// test of its central contract: the stable JSON snapshot of a full
// instrumented phase is byte-identical at 1, 2 and 8 worker threads.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "measure/reachability.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "proxy/proxy.hpp"
#include "scan/scanner.hpp"
#include "sim/duration.hpp"
#include "util/date.hpp"
#include "world/world.hpp"

namespace encdns::obs {
namespace {

// Restores the global enable switch so a failing test cannot silently turn
// instrumentation off for the rest of the binary.
struct EnabledGuard {
  explicit EnabledGuard(bool on) { set_enabled(on); }
  ~EnabledGuard() { set_enabled(true); }
};

TEST(Counter, AddsAndResets) {
  auto& counter = MetricsRegistry::global().counter("test.counter.basic");
  counter.reset();
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Counter, ShardsMergeAcrossThreads) {
  auto& counter = MetricsRegistry::global().counter("test.counter.sharded");
  counter.reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) counter.add();
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), 8000u);
}

TEST(Counter, DisabledSwitchSkipsRecording) {
  auto& counter = MetricsRegistry::global().counter("test.counter.switch");
  counter.reset();
  {
    EnabledGuard off(false);
    counter.add(7);
    EXPECT_EQ(counter.value(), 0u);
  }
  counter.add(7);
  EXPECT_EQ(counter.value(), 7u);
}

TEST(Gauge, SetAddMax) {
  auto& gauge = MetricsRegistry::global().gauge("test.gauge.basic");
  gauge.reset();
  gauge.set(10);
  gauge.add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.set_max(100);
  gauge.set_max(50);  // lower: ignored
  EXPECT_EQ(gauge.value(), 100);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(Histogram, BucketsScaleAndMinMax) {
  auto& histogram = MetricsRegistry::global().histogram(
      "test.histogram.basic_ms", {1.0, 10.0, 100.0});
  histogram.reset();
  histogram.observe(0.5);    // bucket 0 (<= 1ms)
  histogram.observe(1.0);    // bucket 0 (upper edge inclusive)
  histogram.observe(5.0);    // bucket 1
  histogram.observe(99.0);   // bucket 2
  histogram.observe(500.0);  // overflow bucket
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_EQ(histogram.bucket(0), 2u);
  EXPECT_EQ(histogram.bucket(1), 1u);
  EXPECT_EQ(histogram.bucket(2), 1u);
  EXPECT_EQ(histogram.bucket(3), 1u);
  // Sum/min/max in integer microseconds.
  EXPECT_EQ(histogram.sum_us(), 605500u);
  EXPECT_EQ(histogram.min_us(), 500);
  EXPECT_EQ(histogram.max_us(), 500000);
  histogram.reset();
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.min_us(), 0);
  EXPECT_EQ(histogram.max_us(), 0);
}

TEST(Histogram, SumIsOrderIndependent) {
  // Scaling each observation to integer microseconds before accumulation is
  // what makes parallel observation deterministic: integer addition
  // commutes where floating-point addition does not.
  auto& forward = MetricsRegistry::global().histogram(
      "test.histogram.forward_ms", latency_buckets_ms());
  auto& reverse = MetricsRegistry::global().histogram(
      "test.histogram.reverse_ms", latency_buckets_ms());
  forward.reset();
  reverse.reset();
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(0.1 + 0.3 * i);
  for (auto it = values.begin(); it != values.end(); ++it)
    forward.observe(*it);
  for (auto it = values.rbegin(); it != values.rend(); ++it)
    reverse.observe(*it);
  EXPECT_EQ(forward.sum_us(), reverse.sum_us());
  EXPECT_EQ(forward.count(), reverse.count());
  for (std::size_t i = 0; i <= latency_buckets_ms().size(); ++i)
    EXPECT_EQ(forward.bucket(i), reverse.bucket(i)) << "bucket " << i;
}

TEST(Registry, GetOrCreateReturnsSameInstance) {
  auto& first = MetricsRegistry::global().counter("test.registry.identity");
  auto& second = MetricsRegistry::global().counter("test.registry.identity");
  EXPECT_EQ(&first, &second);
  auto& span_first = MetricsRegistry::global().span("test.registry.span");
  auto& span_second = MetricsRegistry::global().span("test.registry.span");
  EXPECT_EQ(&span_first, &span_second);
}

TEST(Registry, ReferencesSurviveReset) {
  auto& counter = MetricsRegistry::global().counter("test.registry.survivor");
  counter.add(5);
  MetricsRegistry::global().reset();
  EXPECT_EQ(counter.value(), 0u);
  counter.add(3);  // the reference is still the registered metric
  EXPECT_EQ(MetricsRegistry::global().counter("test.registry.survivor").value(),
            3u);
}

TEST(Snapshot, SortedAndDiagnosticFiltered) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  registry.counter("test.snap.zz").add(1);
  registry.counter("test.snap.aa").add(2);
  registry.counter("test.snap.diag", /*diagnostic=*/true).add(3);
  const Snapshot snapshot = registry.snapshot();

  // Counters arrive name-sorted (std::map iteration order).
  std::vector<std::string> names;
  for (const auto& sample : snapshot.counters)
    if (sample.name.starts_with("test.snap.")) names.push_back(sample.name);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));

  const std::string stable = snapshot.to_json(false);
  const std::string full = snapshot.to_json(true);
  EXPECT_NE(stable.find("test.snap.aa"), std::string::npos);
  EXPECT_EQ(stable.find("test.snap.diag"), std::string::npos);
  EXPECT_NE(full.find("test.snap.diag"), std::string::npos);
  EXPECT_NE(stable.find("\"schema\": \"encdns.obs.v1\""), std::string::npos);
  EXPECT_EQ(stable.find("wall_ns"), std::string::npos);
  EXPECT_FALSE(snapshot.to_text().empty());
}

TEST(Span, CreditsSimTimeAndCounts) {
  auto& stat = MetricsRegistry::global().span("test.span.credit");
  stat.reset();
  {
    SpanScope scope(stat);
    scope.add_sim(sim::Millis{2.5});
    scope.add_sim(sim::Millis{1.5});
  }
  {
    SpanScope scope(stat);
    scope.add_sim(sim::Millis{10.0});
  }
  EXPECT_EQ(stat.count.load(), 2u);
  EXPECT_EQ(stat.sim_us.load(), 14000u);  // (2.5 + 1.5 + 10) ms in us
}

TEST(Span, InertWhenDisabled) {
  auto& stat = MetricsRegistry::global().span("test.span.inert");
  stat.reset();
  {
    EnabledGuard off(false);
    SpanScope scope(stat);
    scope.add_sim(sim::Millis{100.0});
  }
  EXPECT_EQ(stat.count.load(), 0u);
  EXPECT_EQ(stat.sim_us.load(), 0u);
  EXPECT_EQ(stat.wall_ns.load(), 0u);
}

TEST(Span, MacroRegistersDottedName) {
  {
    OBS_SPAN("test.span.macro");
  }
  EXPECT_GE(MetricsRegistry::global().span("test.span.macro").count.load(),
            1u);
}

TEST(Profiler, RecordsDeltasPerPhase) {
  auto& registry = MetricsRegistry::global();
  registry.reset();
  auto& work = registry.counter("test.phase.work");
  auto& faults = registry.counter("test.phase.fault.injected");
  auto& span = registry.span("test.phase.span");

  PhaseProfiler profiler(registry);
  profiler.begin("alpha");
  work.add(10);
  faults.add(2);
  {
    SpanScope scope(span);
    scope.add_sim(sim::Millis{5.0});
  }
  profiler.end();
  profiler.begin("beta");
  work.add(1);
  profiler.end();

  ASSERT_EQ(profiler.records().size(), 2u);
  const PhaseRecord& alpha = profiler.records()[0];
  EXPECT_EQ(alpha.name, "alpha");
  EXPECT_EQ(alpha.sim_us, 5000u);
  EXPECT_EQ(alpha.faults, 2u);
  bool saw_work = false;
  for (const auto& sample : alpha.counters)
    if (sample.name == "test.phase.work") {
      saw_work = true;
      EXPECT_EQ(sample.value, 10u);
    }
  EXPECT_TRUE(saw_work);
  const PhaseRecord& beta = profiler.records()[1];
  EXPECT_EQ(beta.name, "beta");
  EXPECT_EQ(beta.sim_us, 0u);
  EXPECT_EQ(beta.faults, 0u);

  const std::string json = PhaseProfiler::to_json(profiler.records());
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_EQ(json.find("wall"), std::string::npos);
  EXPECT_FALSE(PhaseProfiler::to_text(profiler.records()).empty());
}

// ---------------------------------------------------------------------------
// Acceptance: instrumented phases produce a byte-identical stable snapshot
// for any worker count. Runs a real scan sweep + probe and a reachability
// fan-out — the two most heavily parallel phases — at 1, 2 and 8 threads.

TEST(ThreadInvariance, SnapshotJsonByteIdenticalAt1_2_8Threads) {
  std::vector<std::string> snapshots;
  for (const unsigned threads : {1u, 2u, 8u}) {
    MetricsRegistry::global().reset();
    // Fresh world per run: the network model is stateful (latency draws
    // consume per-world rng state), so reuse would conflate "different
    // thread count" with "warmer world". Same seed -> same world.
    world::World world;

    scan::CampaignConfig scan_config;
    scan_config.thread_count = threads;
    scan::Scanner scanner(world, scan_config);
    const auto snapshot_result = scanner.scan_once(util::Date{2019, 2, 1});
    EXPECT_GT(snapshot_result.addresses_probed, 0u);

    proxy::ProxyNetwork platform(world, proxy::ProxyConfig{}, 21);
    measure::ReachabilityConfig reach_config;
    reach_config.client_count = 400;
    reach_config.thread_count = threads;
    measure::ReachabilityTest reachability(world, platform, reach_config);
    const auto results = reachability.run();
    EXPECT_GT(results.clients, 0u);

    snapshots.push_back(MetricsRegistry::global().snapshot().to_json());
  }
  ASSERT_EQ(snapshots.size(), 3u);
  EXPECT_EQ(snapshots[0], snapshots[1]) << "1 vs 2 threads";
  EXPECT_EQ(snapshots[0], snapshots[2]) << "1 vs 8 threads";
  // The snapshot must actually contain the instrumented families, or the
  // equality above would be vacuous.
  EXPECT_NE(snapshots[0].find("scan.sweep.probes"), std::string::npos);
  EXPECT_NE(snapshots[0].find("measure.reach.queries"), std::string::npos);
  EXPECT_NE(snapshots[0].find("scan.probe.latency_ms"), std::string::npos);
}

}  // namespace
}  // namespace encdns::obs
