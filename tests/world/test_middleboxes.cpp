// Direct unit tests for the §4.2 failure-cause middleboxes.
#include <gtest/gtest.h>

#include "dns/query.hpp"
#include "world/middleboxes.hpp"
#include "world/providers.hpp"

namespace encdns::world {
namespace {

const util::Date kDay{2019, 3, 1};
using TcpAction = net::Middlebox::TcpVerdict::Action;
using UdpAction = net::Middlebox::UdpVerdict::Action;

TEST(Port53FilterBox, DropsOnlyPort53ToTargets) {
  const Port53FilterBox box({addrs::kCloudflarePrimary, addrs::kGooglePrimary});
  EXPECT_EQ(box.on_tcp_syn(addrs::kCloudflarePrimary, 53, kDay).action,
            TcpAction::kDrop);
  EXPECT_EQ(box.on_udp(addrs::kGooglePrimary, 53, {}, kDay).action,
            UdpAction::kDrop);
  // Ports 443/853 pass — the paper's hypothesis for why DoE works where
  // clear text does not.
  EXPECT_EQ(box.on_tcp_syn(addrs::kCloudflarePrimary, 853, kDay).action,
            TcpAction::kPass);
  EXPECT_EQ(box.on_tcp_syn(addrs::kCloudflarePrimary, 443, kDay).action,
            TcpAction::kPass);
  // Non-prominent resolvers pass even on 53.
  EXPECT_EQ(box.on_tcp_syn(addrs::kQuad9Primary, 53, kDay).action,
            TcpAction::kPass);
}

TEST(Dns53SpooferBox, ForgesParseableResponse) {
  const Dns53SpooferBox box({addrs::kGooglePrimary}, util::Ipv4{31, 13, 64, 7});
  const auto query =
      dns::make_query(*dns::Name::parse("victim.example"), dns::RrType::kA, 99);
  const auto wire = query.encode();
  const auto verdict = box.on_udp(addrs::kGooglePrimary, 53, wire, kDay);
  ASSERT_EQ(verdict.action, UdpAction::kSpoof);
  const auto forged = dns::Message::decode(verdict.spoofed_response);
  ASSERT_TRUE(forged);
  EXPECT_TRUE(dns::response_matches(query, *forged));
  EXPECT_EQ(*forged->first_a(), util::Ipv4(31, 13, 64, 7));
  // Unparseable payloads are dropped rather than answered.
  const std::vector<std::uint8_t> junk = {1, 2, 3};
  EXPECT_EQ(box.on_udp(addrs::kGooglePrimary, 53, junk, kDay).action,
            UdpAction::kDrop);
  // Other destinations pass.
  EXPECT_EQ(box.on_udp(addrs::kQuad9Primary, 53, wire, kDay).action,
            UdpAction::kPass);
}

TEST(BlackholeBox, SwallowsEverythingToTargets) {
  const BlackholeBox box({addrs::kCloudflarePrimary}, "test-blackhole");
  for (const std::uint16_t port : {53, 80, 443, 853}) {
    EXPECT_EQ(box.on_tcp_syn(addrs::kCloudflarePrimary, port, kDay).action,
              TcpAction::kDrop);
  }
  EXPECT_EQ(box.on_udp(addrs::kCloudflarePrimary, 53, {}, kDay).action,
            UdpAction::kDrop);
  EXPECT_EQ(box.on_tcp_syn(addrs::kGooglePrimary, 443, kDay).action,
            TcpAction::kPass);
}

TEST(DeviceService, PortsAndWebpage) {
  DeviceService device("MikroTik RouterOS", {22, 23, 53, 80},
                       "<html>RouterOS login</html>");
  EXPECT_TRUE(device.accepts(22, net::Transport::kTcp));
  EXPECT_TRUE(device.accepts(80, net::Transport::kTcp));
  EXPECT_FALSE(device.accepts(443, net::Transport::kTcp));
  EXPECT_FALSE(device.accepts(80, net::Transport::kUdp));
  EXPECT_EQ(device.webpage(80), "<html>RouterOS login</html>");
  EXPECT_EQ(device.webpage(22), "");
}

TEST(AddressConflictBox, HijacksOnlyTheTakenAddress) {
  auto device = std::make_shared<DeviceService>("modem", std::vector<std::uint16_t>{80},
                                                "modem page");
  const AddressConflictBox box(addrs::kCloudflarePrimary, device);
  const auto hijack = box.on_tcp_syn(addrs::kCloudflarePrimary, 80, kDay);
  EXPECT_EQ(hijack.action, TcpAction::kHijack);
  EXPECT_EQ(hijack.service, device.get());
  EXPECT_EQ(box.on_udp(addrs::kCloudflarePrimary, 53, {}, kDay).action,
            UdpAction::kDrop);
  EXPECT_EQ(box.on_tcp_syn(addrs::kCloudflareSecondary, 80, kDay).action,
            TcpAction::kPass);
}

TEST(CensorBox, DropsBlockedAddressesOnAllPorts) {
  const CensorBox box({addrs::kGoogleDohA, addrs::kGoogleDohB});
  EXPECT_EQ(box.on_tcp_syn(addrs::kGoogleDohA, 443, kDay).action, TcpAction::kDrop);
  EXPECT_EQ(box.on_tcp_syn(addrs::kGoogleDohB, 80, kDay).action, TcpAction::kDrop);
  EXPECT_EQ(box.on_udp(addrs::kGoogleDohA, 443, {}, kDay).action, UdpAction::kDrop);
  // 8.8.8.8 itself is not on the blocklist (Table 4: Google Do53 works in CN).
  EXPECT_EQ(box.on_tcp_syn(addrs::kGooglePrimary, 53, kDay).action,
            TcpAction::kPass);
}

TEST(TlsInterceptBox, PortScopeRespectsConfiguration) {
  const TlsInterceptBox both("Sample CA 2", "dpi", /*intercept_853=*/true);
  EXPECT_NE(both.tls_interceptor(addrs::kCloudflarePrimary, 443), nullptr);
  EXPECT_NE(both.tls_interceptor(addrs::kCloudflarePrimary, 853), nullptr);
  EXPECT_EQ(both.tls_interceptor(addrs::kCloudflarePrimary, 53), nullptr);

  const TlsInterceptBox https_only("NThmYzgyYT", "proxy", /*intercept_853=*/false);
  EXPECT_NE(https_only.tls_interceptor(addrs::kCloudflarePrimary, 443), nullptr);
  EXPECT_EQ(https_only.tls_interceptor(addrs::kCloudflarePrimary, 853), nullptr);
}

TEST(TlsInterceptBox, NeverBlocksTransport) {
  const TlsInterceptBox box("None", "dpi", true);
  EXPECT_EQ(box.on_tcp_syn(addrs::kCloudflarePrimary, 443, kDay).action,
            TcpAction::kPass);
}

}  // namespace
}  // namespace encdns::world
