#include "world/world.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/stats.hpp"
#include "world/countries.hpp"
#include "world/providers.hpp"

namespace encdns::world {
namespace {

const util::Date kFeb{2019, 2, 1};
const util::Date kMay{2019, 5, 1};

World& shared_world() {
  static World world;
  return world;
}

TEST(Countries, TableSaneAndLarge) {
  EXPECT_GE(countries().size(), 165u);  // the paper saw clients in 166 countries
  std::unordered_set<std::string> codes;
  for (const auto& info : countries()) {
    EXPECT_EQ(info.code.size(), 2u);
    EXPECT_TRUE(codes.insert(std::string(info.code)).second) << info.code;
    EXPECT_GE(info.geo.lat, -90.0);
    EXPECT_LE(info.geo.lat, 90.0);
    EXPECT_GE(info.geo.lon, -180.0);
    EXPECT_LE(info.geo.lon, 180.0);
    EXPECT_GT(info.weight, 0.0);
  }
  EXPECT_NE(find_country("CN"), nullptr);
  EXPECT_NE(find_country("ID"), nullptr);
  EXPECT_EQ(find_country("XX"), nullptr);
}

TEST(Countries, LinkTiersOrdered) {
  const auto excellent = default_link_profile(LinkTier::kExcellent);
  const auto poor = default_link_profile(LinkTier::kPoor);
  EXPECT_LT(excellent.last_mile.value, poor.last_mile.value);
  EXPECT_LT(excellent.loss_rate, poor.loss_rate);
}

TEST(Countries, AsnStable) {
  EXPECT_EQ(asn_for("US", 3), asn_for("US", 3));
  EXPECT_NE(asn_for("US", 3), asn_for("US", 4));
  EXPECT_NE(asn_for("US", 0), asn_for("DE", 0));
}

TEST(Deployments, Table2CountryQuotas) {
  const auto deployments = make_deployments(2019);
  util::Counter feb, may;
  for (const auto& d : deployments.dot) {
    if (kFeb.in_window(d.active_from, d.active_to)) feb.add(d.country);
    if (kMay.in_window(d.active_from, d.active_to)) may.add(d.country);
  }
  // Paper Table 2 values, exact by construction.
  EXPECT_EQ(feb.get("IE"), 456);
  EXPECT_EQ(may.get("IE"), 951);
  EXPECT_EQ(feb.get("CN"), 257);
  EXPECT_EQ(may.get("CN"), 40);
  EXPECT_EQ(feb.get("US"), 100);
  EXPECT_EQ(may.get("US"), 531);
  EXPECT_EQ(feb.get("DE"), 71);
  EXPECT_EQ(may.get("DE"), 86);
  EXPECT_EQ(feb.get("FR"), 59);
  EXPECT_EQ(may.get("FR"), 56);
  EXPECT_EQ(feb.get("JP"), 34);
  EXPECT_EQ(may.get("JP"), 27);
  EXPECT_EQ(feb.get("BR"), 22);
  EXPECT_EQ(may.get("BR"), 49);
  EXPECT_EQ(feb.get("RU"), 17);
  EXPECT_EQ(may.get("RU"), 40);
  // >1.5K resolvers per scan at the start, ~2K at the end.
  EXPECT_GT(feb.total(), 1300);
  EXPECT_GT(may.total(), 1900);
}

TEST(Deployments, DefectMixMatchesFinding12) {
  const auto deployments = make_deployments(2019);
  int expired = 0, expired_2018 = 0, self_signed = 0, fortigate = 0, bad_chain = 0;
  for (const auto& d : deployments.dot) {
    if (!kMay.in_window(d.active_from, d.active_to)) continue;
    switch (d.cert_kind) {
      case CertKind::kExpired: ++expired; break;
      case CertKind::kExpiredLong:
        ++expired;
        ++expired_2018;
        break;
      case CertKind::kSelfSigned: ++self_signed; break;
      case CertKind::kFortigateDefault: ++fortigate; break;
      case CertKind::kBadChain: ++bad_chain; break;
      case CertKind::kValid: break;
    }
  }
  // Paper: 122 invalid resolvers = 27 expired (9 from 2018) + 67 self-signed
  // (47 FortiGate) + 28 invalid chains.
  EXPECT_NEAR(expired, 27, 3);
  EXPECT_EQ(expired_2018, 9);
  EXPECT_NEAR(self_signed + fortigate, 67, 3);
  EXPECT_EQ(fortigate, 47);
  EXPECT_NEAR(bad_chain, 28, 3);
}

TEST(Deployments, SeventeenDohResolvers) {
  const auto deployments = make_deployments(2019);
  EXPECT_EQ(deployments.doh.size(), 17u);
  int beyond_list = 0, forwarding = 0;
  for (const auto& d : deployments.doh) {
    if (!d.in_public_list) ++beyond_list;
    if (d.forwarding_frontend) ++forwarding;
    EXPECT_FALSE(d.addresses.empty());
  }
  EXPECT_EQ(beyond_list, 2);  // rubyfish + 233py
  EXPECT_EQ(forwarding, 1);   // Quad9
}

TEST(Deployments, AddressesUniqueAndRoutable) {
  const auto deployments = make_deployments(2019);
  std::vector<util::Cidr> prefixes;
  for (const auto& text : routable_prefixes())
    prefixes.push_back(*util::Cidr::parse(text));
  std::unordered_set<std::uint32_t> seen;
  for (const auto& d : deployments.dot) {
    EXPECT_TRUE(seen.insert(d.address.value()).second)
        << "duplicate " << d.address.to_string();
    bool routable = false;
    for (const auto& p : prefixes) routable |= p.contains(d.address);
    EXPECT_TRUE(routable) << d.address.to_string();
  }
}

TEST(Deployments, DeterministicForSeed) {
  const auto a = make_deployments(7);
  const auto b = make_deployments(7);
  ASSERT_EQ(a.dot.size(), b.dot.size());
  for (std::size_t i = 0; i < a.dot.size(); ++i) {
    EXPECT_EQ(a.dot[i].address, b.dot[i].address);
    EXPECT_EQ(a.dot[i].provider, b.dot[i].provider);
  }
}

TEST(WorldModel, SpecialAddressesExist) {
  World& world = shared_world();
  const auto* cf = world.network().route(addrs::kCloudflarePrimary,
                                         net::Location{{39, -98}, "US", 1}, kFeb);
  ASSERT_NE(cf, nullptr);
  EXPECT_NE(world.network().route(addrs::kGooglePrimary,
                                  net::Location{{39, -98}, "US", 1}, kFeb),
            nullptr);
  EXPECT_NE(world.network().route(addrs::kQuad9Primary,
                                  net::Location{{39, -98}, "US", 1}, kFeb),
            nullptr);
  EXPECT_NE(world.network().route(addrs::kSelfBuilt,
                                  net::Location{{39, -98}, "US", 1}, kFeb),
            nullptr);
}

TEST(WorldModel, AnycastPicksNearbyPop) {
  World& world = shared_world();
  const auto* from_eu = world.network().route(
      addrs::kCloudflarePrimary, net::Location{{48.0, 10.0}, "DE", 1}, kFeb);
  ASSERT_NE(from_eu, nullptr);
  const double km =
      net::great_circle_km(net::GeoPoint{48.0, 10.0}, from_eu->location.geo);
  EXPECT_LT(km, 2000.0);
}

TEST(WorldModel, BackgroundPopulationDensity) {
  World& world = shared_world();
  util::Rng rng(5);
  int open = 0;
  const int samples = 40000;
  const auto& prefixes = world.scan_prefixes();
  for (int i = 0; i < samples; ++i) {
    const auto& prefix = prefixes[rng.below(prefixes.size())];
    const util::Ipv4 addr = prefix.at(rng.below(prefix.size()));
    if (world.background_open_853(addr, kFeb)) ++open;
  }
  const double density = static_cast<double>(open) / samples;
  EXPECT_GT(density, 0.003);
  EXPECT_LT(density, 0.03);
  // Stable across calls for the same date.
  const util::Ipv4 probe = prefixes[0].at(12345);
  EXPECT_EQ(world.background_open_853(probe, kFeb),
            world.background_open_853(probe, kFeb));
  // Outside the routable space: never open.
  EXPECT_FALSE(world.background_open_853(util::Ipv4{192, 0, 2, 1}, kFeb));
}

TEST(WorldModel, GlobalVantageRates) {
  World& world = shared_world();
  util::Rng rng(77);
  int conflicts = 0, intercepts = 0, port53 = 0;
  std::unordered_set<std::string> seen_countries;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto v = world.sample_global_vantage(rng);
    seen_countries.insert(v.country);
    if (v.conflict_1111) ++conflicts;
    if (v.tls_intercepted) ++intercepts;
    if (v.port53_filtered) ++port53;
  }
  EXPECT_NEAR(conflicts / static_cast<double>(n), world.config().conflict_rate,
              0.004);
  EXPECT_NEAR(intercepts / static_cast<double>(n), world.config().intercept_rate,
              0.001);
  EXPECT_GT(port53 / static_cast<double>(n), 0.08);
  EXPECT_LT(port53 / static_cast<double>(n), 0.25);
  EXPECT_GT(seen_countries.size(), 120u);  // broad geographic coverage
}

TEST(WorldModel, CnVantageProperties) {
  World& world = shared_world();
  util::Rng rng(78);
  std::unordered_set<std::uint32_t> ases;
  int blackholed = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto v = world.sample_cn_vantage(rng);
    EXPECT_EQ(v.country, "CN");
    EXPECT_FALSE(v.context.path.empty());  // the censor is always in path
    ases.insert(v.asn);
    if (v.cn_cf_blackholed) ++blackholed;
  }
  EXPECT_EQ(ases.size(), 5u);  // the platform spans exactly 5 ASes
  EXPECT_NEAR(blackholed / static_cast<double>(n),
              world.config().cn_cf_blackhole_rate, 0.02);
}

TEST(WorldModel, UniqueProbeNamesDiffer) {
  World& world = shared_world();
  util::Rng rng(9);
  std::unordered_set<std::string> names;
  for (int i = 0; i < 1000; ++i) {
    const auto name = world.unique_probe_name(rng);
    EXPECT_TRUE(name.is_subdomain_of(world.probe_apex()));
    EXPECT_TRUE(names.insert(name.canonical()).second);
  }
}

TEST(WorldModel, UrlDatasetContainsDohAndNoise) {
  World& world = shared_world();
  const auto& urls = world.url_dataset();
  EXPECT_GT(urls.size(), 10000u);
  int doh_paths = 0;
  bool has_rubyfish = false;
  for (const auto& url : urls) {
    if (url.find("/dns-query") != std::string::npos ||
        url.find("/resolve") != std::string::npos ||
        url.find("/doh") != std::string::npos)
      ++doh_paths;
    has_rubyfish |= url.find("rubyfish") != std::string::npos;
  }
  EXPECT_GT(doh_paths, 40);
  EXPECT_LT(doh_paths, 200);
  EXPECT_TRUE(has_rubyfish);
}

TEST(WorldModel, LocalResolversMostlyWithoutDot) {
  World& world = shared_world();
  int dot = 0;
  for (const auto& lr : world.local_resolvers())
    if (lr.dot_enabled) ++dot;
  EXPECT_LT(dot, static_cast<int>(world.local_resolvers().size() / 20));
}

TEST(WorldModel, BootstrapResolverPerCountry) {
  World& world = shared_world();
  const auto us = world.bootstrap_resolver("US");
  const auto de = world.bootstrap_resolver("DE");
  EXPECT_NE(us, de);
  // Unknown country falls back gracefully.
  EXPECT_EQ(world.bootstrap_resolver("??"), world.bootstrap_resolver("US"));
}

}  // namespace
}  // namespace encdns::world
