#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "exec/cancel.hpp"
#include "fault/fault.hpp"
#include "scan/doh_prober.hpp"
#include "scan/doh_scan.hpp"
#include "scan/dot_prober.hpp"
#include "scan/engine.hpp"
#include "scan/permutation.hpp"
#include "scan/scanner.hpp"
#include "scan/space.hpp"
#include "util/stats.hpp"
#include "world/world.hpp"

namespace encdns::scan {
namespace {

const util::Date kFeb{2019, 2, 1};

world::World& shared_world() {
  static world::World world;
  return world;
}

TEST(Primes, MillerRabin) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(101));
  EXPECT_FALSE(is_prime(1000000));
  EXPECT_TRUE(is_prime(1000003));
  EXPECT_TRUE(is_prime(2147483647));        // Mersenne prime 2^31-1
  EXPECT_FALSE(is_prime(3215031751ULL));    // strong pseudoprime to 2,3,5,7
  EXPECT_TRUE(is_prime(67280421310721ULL)); // large prime
}

TEST(Primes, NextPrime) {
  EXPECT_EQ(next_prime(10), 11u);
  EXPECT_EQ(next_prime(11), 11u);
  EXPECT_EQ(next_prime(4194304), 4194319u);
}

TEST(Primes, Factorization) {
  EXPECT_EQ(prime_factors(12), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(prime_factors(97), (std::vector<std::uint64_t>{97}));
  EXPECT_EQ(prime_factors(1000002), (std::vector<std::uint64_t>{2, 3, 166667}));
}

TEST(Primes, PowMod) {
  EXPECT_EQ(pow_mod(2, 10, 1000), 24u);
  EXPECT_EQ(pow_mod(3, 0, 7), 1u);
  EXPECT_EQ(pow_mod(123456789, 987654321, 1000000007), 652541198u);
}

class PermutationFullCycle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PermutationFullCycle, VisitsEveryIndexOnce) {
  const std::uint64_t n = GetParam();
  CyclicPermutation permutation(n, 0xFEED + n);
  std::vector<bool> seen(n, false);
  std::uint64_t count = 0;
  while (const auto index = permutation.next()) {
    ASSERT_LT(*index, n);
    ASSERT_FALSE(seen[*index]) << "revisited " << *index;
    seen[*index] = true;
    ++count;
  }
  EXPECT_EQ(count, n);
  EXPECT_FALSE(permutation.next().has_value());  // stays exhausted
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationFullCycle,
                         ::testing::Values(1, 2, 3, 10, 97, 100, 1021, 4096, 65536));

TEST(Permutation, OrderLooksScattered) {
  CyclicPermutation permutation(10000, 42);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 100; ++i) first.push_back(*permutation.next());
  // Consecutive outputs should not be sequential addresses.
  int adjacent = 0;
  for (std::size_t i = 1; i < first.size(); ++i)
    if (first[i] == first[i - 1] + 1) ++adjacent;
  EXPECT_LT(adjacent, 3);
}

TEST(Permutation, ResetRestartsSameOrder) {
  CyclicPermutation permutation(1000, 7);
  std::vector<std::uint64_t> a, b;
  for (int i = 0; i < 50; ++i) a.push_back(*permutation.next());
  permutation.reset();
  for (int i = 0; i < 50; ++i) b.push_back(*permutation.next());
  EXPECT_EQ(a, b);
}

TEST(Permutation, DifferentSeedsDifferentOrder) {
  CyclicPermutation a(100000, 1), b(100000, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (*a.next() == *b.next()) ++same;
  EXPECT_LT(same, 5);
}

TEST(ScanSpace, IndexAddressBijection) {
  ScanSpace space({*util::Cidr::parse("10.0.0.0/24"),
                   *util::Cidr::parse("192.168.0.0/30")});
  EXPECT_EQ(space.size(), 260u);
  for (std::uint64_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(*space.index_of(space.at(i)), i);
  }
  EXPECT_FALSE(space.index_of(util::Ipv4{10, 0, 1, 0}).has_value());
  EXPECT_TRUE(space.contains(util::Ipv4{192, 168, 0, 3}));
  EXPECT_FALSE(space.contains(util::Ipv4{192, 168, 0, 4}));
  EXPECT_THROW((void)space.at(space.size()), std::out_of_range);
}

TEST(ScanSpace, DeduplicatesAndSorts) {
  ScanSpace space({*util::Cidr::parse("10.1.0.0/24"),
                   *util::Cidr::parse("10.0.0.0/24"),
                   *util::Cidr::parse("10.1.0.0/24")});
  EXPECT_EQ(space.prefixes().size(), 2u);
  EXPECT_EQ(space.size(), 512u);
  EXPECT_EQ(space.at(0), util::Ipv4(10, 0, 0, 0));
}

TEST(ProviderKey, SldGroupingAndRawCn) {
  EXPECT_EQ(provider_key("dns.quad9.net"), "quad9.net");
  EXPECT_EQ(provider_key("cloudflare-dns.com"), "cloudflare-dns.com");
  EXPECT_EQ(provider_key("a.b.c.example.org"), "example.org");
  // Non-domain CNs (FortiGate factory certs) group by raw CN.
  EXPECT_EQ(provider_key("FortiGate"), "FortiGate");
}

TEST(DotProber, IdentifiesRealResolverAndBackgroundHost) {
  world::World& world = shared_world();
  DotProber prober(world, world.make_clean_vantage("US"), 3);
  const auto hit = prober.probe(world::addrs::kCloudflarePrimary, kFeb);
  EXPECT_TRUE(hit.port_open);
  EXPECT_TRUE(hit.tls_ok);
  EXPECT_TRUE(hit.dot_ok);
  EXPECT_TRUE(hit.answer_correct);
  EXPECT_EQ(hit.cert_status, tls::CertStatus::kValid);
  EXPECT_EQ(hit.chain.leaf_cn(), "cloudflare-dns.com");

  // Find a background host (port open, no DoT).
  util::Rng rng(4);
  const auto& prefixes = world.scan_prefixes();
  util::Ipv4 background{0};
  for (int i = 0; i < 100000 && background.value() == 0; ++i) {
    const auto& prefix = prefixes[rng.below(prefixes.size())];
    const util::Ipv4 addr = prefix.at(rng.below(prefix.size()));
    if (world.background_open_853(addr, kFeb) &&
        world.network().route(addr, world.make_clean_vantage("US").context.location,
                              kFeb) == nullptr)
      background = addr;
  }
  ASSERT_NE(background.value(), 0u);
  const auto miss = prober.probe(background, kFeb);
  EXPECT_TRUE(miss.port_open);
  EXPECT_FALSE(miss.dot_ok);
}

TEST(DotProber, FlagsFixedAnswerResolvers) {
  world::World& world = shared_world();
  DotProber prober(world, world.make_clean_vantage("US"), 5);
  const util::Ipv4 dnsfilter{103, 247, 37, 37};
  const auto result = prober.probe(dnsfilter, kFeb);
  ASSERT_TRUE(result.dot_ok);
  EXPECT_FALSE(result.answer_correct);  // fixed answer != ground truth
}

TEST(DohProber, FindsAllSeventeenResolvers) {
  world::World& world = shared_world();
  DohProber prober(world, world.make_clean_vantage("US"), 6);
  const auto discovery = prober.discover(world.url_dataset(), kFeb);
  EXPECT_EQ(discovery.resolvers.size(), 17u);
  EXPECT_GT(discovery.path_candidates, discovery.valid_urls);
  EXPECT_GE(discovery.valid_urls, 17u);
  std::unordered_set<std::string> hosts;
  for (const auto& resolver : discovery.resolvers) {
    hosts.insert(resolver.host);
    EXPECT_TRUE(resolver.cert_valid);  // Finding 1.2: DoH certs all valid
  }
  EXPECT_TRUE(hosts.contains("dns.rubyfish.cn"));
  EXPECT_TRUE(hosts.contains("dns.233py.com"));
  EXPECT_TRUE(hosts.contains("mozilla.cloudflare-dns.com"));
}

TEST(Scanner, SnapshotMatchesGroundTruth) {
  world::World& world = shared_world();
  CampaignConfig config;
  Scanner scanner(world, config);
  const auto snapshot = scanner.scan_once(kFeb);

  // Ground-truth active deployments at the scan date.
  std::unordered_set<std::uint32_t> expected;
  for (const auto& d : world.deployments().dot)
    if (kFeb.in_window(d.active_from, d.active_to)) expected.insert(d.address.value());

  std::size_t found_expected = 0;
  for (const auto& resolver : snapshot.resolvers)
    if (expected.contains(resolver.address.value())) ++found_expected;
  // Recall: nearly every active deployment is discovered.
  EXPECT_GT(found_expected, expected.size() * 95 / 100);
  // Precision: few resolvers outside the catalogue (our own infra + the
  // big providers' DoH addresses legitimately speak DoT too).
  EXPECT_LT(snapshot.resolvers.size() - found_expected, 8u);
  EXPECT_EQ(snapshot.addresses_probed, scanner.space().size());
  EXPECT_GT(snapshot.port_open, snapshot.resolvers.size() * 5);
}

// The parallel engine's contract: starting from identical state, the snapshot
// is bit-identical for every thread count, and repeated parallel runs agree
// with each other. Each run gets a fresh world because a scan warms resolver
// caches (shared state that legitimately changes later runs' latencies).
TEST(Scanner, SnapshotIsThreadCountInvariant) {
  const auto snapshot_with_threads = [](unsigned threads) {
    world::World world;
    CampaignConfig config;
    config.thread_count = threads;
    Scanner scanner(world, config);
    return scanner.scan_once(kFeb);
  };
  const auto serial = snapshot_with_threads(1);
  const auto parallel_a = snapshot_with_threads(8);
  const auto parallel_b = snapshot_with_threads(8);

  const auto equal = [](const ScanSnapshot& a, const ScanSnapshot& b) {
    if (a.addresses_probed != b.addresses_probed) return false;
    if (a.port_open != b.port_open) return false;
    if (a.tls_responsive != b.tls_responsive) return false;
    if (a.resolvers.size() != b.resolvers.size()) return false;
    for (std::size_t i = 0; i < a.resolvers.size(); ++i) {
      const auto& x = a.resolvers[i];
      const auto& y = b.resolvers[i];
      if (x.address != y.address || x.cert_cn != y.cert_cn ||
          x.provider != y.provider || x.cert_status != y.cert_status ||
          x.answer_correct != y.answer_correct || x.country != y.country ||
          x.probe_latency.value != y.probe_latency.value)
        return false;
    }
    return true;
  };
  EXPECT_TRUE(equal(serial, parallel_a));
  EXPECT_TRUE(equal(parallel_a, parallel_b));
}

// Same contract with the canonical fault profile switched on: faults are keyed
// off (seed, target, attempt), never scheduling, so retries, circuit-breaker
// trips, and the fault tallies themselves must all be bit-identical whether
// the sweep runs on one worker or eight.
TEST(Scanner, FaultySnapshotIsThreadCountInvariant) {
  const auto snapshot_with_threads = [](unsigned threads) {
    world::WorldConfig world_config;
    world_config.fault_profile = fault::FaultProfile::canonical();
    world::World world(world_config);
    CampaignConfig config;
    config.thread_count = threads;
    Scanner scanner(world, config);
    return scanner.scan_once(kFeb);
  };
  const auto serial = snapshot_with_threads(1);
  const auto parallel = snapshot_with_threads(8);

  EXPECT_EQ(serial.addresses_probed, parallel.addresses_probed);
  EXPECT_EQ(serial.port_open, parallel.port_open);
  EXPECT_EQ(serial.tls_responsive, parallel.tls_responsive);
  EXPECT_EQ(serial.breaker_skipped, parallel.breaker_skipped);
  EXPECT_EQ(serial.faults.injected, parallel.faults.injected);
  EXPECT_EQ(serial.faults.recovered, parallel.faults.recovered);
  EXPECT_EQ(serial.faults.surfaced, parallel.faults.surfaced);
  ASSERT_EQ(serial.resolvers.size(), parallel.resolvers.size());
  for (std::size_t i = 0; i < serial.resolvers.size(); ++i) {
    EXPECT_EQ(serial.resolvers[i].address, parallel.resolvers[i].address);
    EXPECT_EQ(serial.resolvers[i].probe_latency.value,
              parallel.resolvers[i].probe_latency.value);
  }
  // The injector actually fired, and the retry layer absorbed real faults.
  EXPECT_GT(serial.faults.injected, 0u);
  EXPECT_GT(serial.faults.recovered, 0u);
}

// ---------------------------------------------------------------------------
// Stateless sweep engine (DESIGN.md §14).

// A reduced space (the world's first few scan prefixes) keeps the faults-on
// engine sweeps fast; determinism properties do not depend on the space.
ScanSpace reduced_space(const world::World& world, std::size_t prefix_count) {
  const auto& all = world.scan_prefixes();
  const std::size_t n = std::min(prefix_count, all.size());
  return ScanSpace(
      std::vector<util::Cidr>(all.begin(), all.begin() + static_cast<long>(n)));
}

bool tallies_equal(const EngineTally& a, const EngineTally& b) {
  return a.transmitted == b.transmitted && a.probed == b.probed &&
         a.open == b.open && a.retransmits == b.retransmits &&
         a.rejected_forgery == b.rejected_forgery &&
         a.rejected_duplicate == b.rejected_duplicate &&
         a.rejected_stale == b.rejected_stale &&
         a.faults.injected == b.faults.injected &&
         a.faults.recovered == b.faults.recovered &&
         a.faults.surfaced == b.faults.surfaced &&
         a.sim_elapsed.value == b.sim_elapsed.value;
}

// The stateless engine and the legacy synchronous sweep must find the exact
// same open set in the same canonical order on a fault-free world — that
// equivalence is what lets the golden §3 corpus stay byte-identical while
// the sweep implementation underneath it changed completely.
TEST(ScanEngine, MatchesLegacySweepFaultFree) {
  const auto snapshot_with_mode = [](SweepMode mode) {
    world::World world;
    CampaignConfig config;
    config.sweep_mode = mode;
    Scanner scanner(world, config);
    return scanner.scan_once(kFeb);
  };
  const auto stateless = snapshot_with_mode(SweepMode::kStateless);
  const auto legacy = snapshot_with_mode(SweepMode::kLegacy);
  EXPECT_EQ(stateless.addresses_probed, legacy.addresses_probed);
  EXPECT_EQ(stateless.port_open, legacy.port_open);
  EXPECT_EQ(stateless.tls_responsive, legacy.tls_responsive);
  ASSERT_EQ(stateless.resolvers.size(), legacy.resolvers.size());
  for (std::size_t i = 0; i < stateless.resolvers.size(); ++i) {
    EXPECT_EQ(stateless.resolvers[i].address, legacy.resolvers[i].address);
    EXPECT_EQ(stateless.resolvers[i].cert_cn, legacy.resolvers[i].cert_cn);
    EXPECT_EQ(stateless.resolvers[i].probe_latency.value,
              legacy.resolvers[i].probe_latency.value);
  }
  // Fault-free: the receive loop saw nothing to reject.
  EXPECT_EQ(stateless.rejected_forgery, 0u);
  EXPECT_EQ(stateless.rejected_duplicate, 0u);
  EXPECT_EQ(stateless.rejected_stale, 0u);
  EXPECT_EQ(stateless.retransmits, 0u);
}

// The engine's own contract at ENCDNS_THREADS 1/2/8 with the canonical fault
// profile active: open set, receive-loop verdicts, retry tallies and summed
// simulated time are all bit-identical — threads only schedule shards.
TEST(ScanEngine, SweepIsThreadCountInvariantUnderFaults) {
  const auto sweep_with_threads = [](unsigned threads) {
    world::WorldConfig world_config;
    world_config.fault_profile = fault::FaultProfile::canonical();
    world::World world(world_config);
    const ScanSpace space = reduced_space(world, 6);
    CyclicPermutation permutation(space.size(), 0x5EEDBEEF);
    EngineConfig config;
    config.seed = 20190201;
    config.thread_count = threads;
    ScanEngine engine(world, config);
    return engine.sweep(space, permutation,
                        {world.make_clean_vantage("US"),
                         world.make_clean_vantage("CN")},
                        kFeb);
  };
  const SweepResult one = sweep_with_threads(1);
  const SweepResult two = sweep_with_threads(2);
  const SweepResult eight = sweep_with_threads(8);
  EXPECT_EQ(one.open_hosts, two.open_hosts);
  EXPECT_EQ(one.open_hosts, eight.open_hosts);
  EXPECT_TRUE(tallies_equal(one.tally, two.tally));
  EXPECT_TRUE(tallies_equal(one.tally, eight.tally));
  // The adversarial receive path actually fired: every fail-closed verdict
  // class was exercised, and retransmits recovered real dropped SYNs.
  EXPECT_GT(one.tally.retransmits, 0u);
  EXPECT_GT(one.tally.rejected_forgery, 0u);
  EXPECT_GT(one.tally.rejected_duplicate, 0u);
  EXPECT_GT(one.tally.rejected_stale, 0u);
  EXPECT_GT(one.tally.faults.recovered, 0u);
  // Window invariants hold on the happy path.
  EXPECT_EQ(one.tally.credit_leaks, 0u);
  EXPECT_EQ(one.tally.double_releases, 0u);
}

// The in-flight window and the pacing rate are flow control only: a window
// of one (fully synchronous drain), a huge window, and an aggressively paced
// sweep must all produce the same open set and tallies — they may only shift
// the window_high_water diagnostics.
TEST(ScanEngine, WindowAndPaceDoNotChangeResults) {
  const auto sweep_with = [](std::size_t window, double pace) {
    world::WorldConfig world_config;
    world_config.fault_profile = fault::FaultProfile::canonical();
    world::World world(world_config);
    const ScanSpace space = reduced_space(world, 4);
    CyclicPermutation permutation(space.size(), 0xAB12);
    EngineConfig config;
    config.seed = 77;
    config.window = window;
    config.pace_qps = pace;
    ScanEngine engine(world, config);
    return engine.sweep(space, permutation, {world.make_clean_vantage("US")},
                        kFeb);
  };
  const SweepResult tight = sweep_with(1, 0.0);
  const SweepResult wide = sweep_with(4096, 0.0);
  const SweepResult paced = sweep_with(256, 50000.0);
  EXPECT_EQ(tight.open_hosts, wide.open_hosts);
  EXPECT_EQ(tight.open_hosts, paced.open_hosts);
  EXPECT_TRUE(tallies_equal(tight.tally, wide.tally));
  EXPECT_EQ(tight.tally.transmitted, paced.tally.transmitted);
  EXPECT_EQ(tight.tally.probed, paced.tally.probed);
  EXPECT_EQ(tight.tally.open, paced.tally.open);
  EXPECT_EQ(tight.tally.retransmits, paced.tally.retransmits);
  EXPECT_EQ(tight.tally.rejected_forgery, paced.tally.rejected_forgery);
  EXPECT_EQ(tight.tally.rejected_duplicate, paced.tally.rejected_duplicate);
  EXPECT_EQ(tight.tally.rejected_stale, paced.tally.rejected_stale);
  EXPECT_EQ(tight.tally.faults.injected, paced.tally.faults.injected);
  EXPECT_EQ(tight.tally.faults.recovered, paced.tally.faults.recovered);
  EXPECT_EQ(tight.tally.faults.surfaced, paced.tally.faults.surfaced);
  EXPECT_EQ(tight.tally.sim_elapsed.value, paced.tally.sim_elapsed.value);
  // The window bound was genuinely enforced, not merely configured.
  EXPECT_EQ(tight.tally.window_high_water, 1u);
  EXPECT_GT(wide.tally.window_high_water, 1u);
  EXPECT_EQ(tight.tally.credit_leaks, 0u);
  EXPECT_EQ(wide.tally.credit_leaks, 0u);
  EXPECT_EQ(paced.tally.credit_leaks, 0u);
}

// A sweep that starts already cancelled emits nothing and leaks nothing.
TEST(ScanEngine, PreCancelledSweepIsEmptyAndLeakFree) {
  world::World& world = shared_world();
  const ScanSpace space = reduced_space(world, 2);
  CyclicPermutation permutation(space.size(), 3);
  exec::CancelToken cancel;
  cancel.cancel("test: cancelled before the sweep");
  EngineConfig config;
  config.seed = 9;
  config.cancel = &cancel;
  ScanEngine engine(world, config);
  const SweepResult result =
      engine.sweep(space, permutation, {world.make_clean_vantage("US")}, kFeb);
  EXPECT_EQ(result.tally.probed, 0u);
  EXPECT_TRUE(result.open_hosts.empty());
  EXPECT_EQ(result.tally.credit_leaks, 0u);
  EXPECT_EQ(result.tally.double_releases, 0u);
}

// ---------------------------------------------------------------------------
// E-DoH-style IP-directed DoH discovery (scan/doh_scan.hpp).

TEST(DohScan, FindsDeployedEndpointsByAddress) {
  world::World& world = shared_world();
  DohScanConfig config;
  const auto result = run_doh_scan(world, config, kFeb.plus_days(60));
  // The 443 sweep covers the whole routable space but only bound services
  // answer: port-open count is tiny next to addresses probed.
  EXPECT_GT(result.addresses_probed, 1000000u);
  EXPECT_LT(result.port443_open, 200u);
  EXPECT_GE(result.port443_open, result.tls_established);
  EXPECT_FALSE(result.endpoints.empty());
  for (const auto& endpoint : result.endpoints) {
    EXPECT_TRUE(endpoint.answer_correct);
    EXPECT_FALSE(endpoint.host.empty());
    EXPECT_EQ(endpoint.uri_template,
              "https://" + endpoint.host + endpoint.path + "{?dns}");
  }
  // Canonical output order: ascending address.
  for (std::size_t i = 1; i < result.endpoints.size(); ++i)
    EXPECT_LT(result.endpoints[i - 1].address.value(),
              result.endpoints[i].address.value());
  // The scan's reason to exist: it reaches at least one endpoint the URL
  // dataset's host set does not contain (cf. the doh-scan golden table).
  DohProber prober(world, world.make_clean_vantage("US"), 6);
  const auto discovery = prober.discover(world.url_dataset(), kFeb);
  std::vector<std::string> url_hosts;
  for (const auto& resolver : discovery.resolvers)
    url_hosts.push_back(resolver.host);
  EXPECT_GE(result.hosts_beyond(url_hosts), 1u);
}

TEST(DohScan, ResultIsThreadCountInvariantUnderFaults) {
  const auto run_with_threads = [](unsigned threads) {
    world::WorldConfig world_config;
    world_config.fault_profile = fault::FaultProfile::canonical();
    world::World world(world_config);
    DohScanConfig config;
    config.thread_count = threads;
    return run_doh_scan(world, config, kFeb.plus_days(60));
  };
  const auto serial = run_with_threads(1);
  const auto parallel = run_with_threads(8);
  EXPECT_EQ(serial.addresses_probed, parallel.addresses_probed);
  EXPECT_EQ(serial.port443_open, parallel.port443_open);
  EXPECT_EQ(serial.tls_established, parallel.tls_established);
  EXPECT_EQ(serial.retransmits, parallel.retransmits);
  EXPECT_EQ(serial.rejected_forgery, parallel.rejected_forgery);
  EXPECT_EQ(serial.rejected_duplicate, parallel.rejected_duplicate);
  EXPECT_EQ(serial.rejected_stale, parallel.rejected_stale);
  EXPECT_EQ(serial.faults.injected, parallel.faults.injected);
  EXPECT_EQ(serial.faults.recovered, parallel.faults.recovered);
  EXPECT_EQ(serial.faults.surfaced, parallel.faults.surfaced);
  ASSERT_EQ(serial.endpoints.size(), parallel.endpoints.size());
  for (std::size_t i = 0; i < serial.endpoints.size(); ++i) {
    EXPECT_EQ(serial.endpoints[i].address, parallel.endpoints[i].address);
    EXPECT_EQ(serial.endpoints[i].host, parallel.endpoints[i].host);
    EXPECT_EQ(serial.endpoints[i].path, parallel.endpoints[i].path);
    EXPECT_EQ(serial.endpoints[i].probe_latency.value,
              parallel.endpoints[i].probe_latency.value);
  }
}

TEST(Scanner, CampaignShowsGrowthAndChurn) {
  world::World& world = shared_world();
  CampaignConfig config;
  config.scan_count = 2;
  config.interval_days = 89;  // Feb 1 and May 1
  Scanner scanner(world, config);
  const auto snapshots = scanner.run_campaign();
  ASSERT_EQ(snapshots.size(), 2u);
  EXPECT_GT(snapshots[1].resolvers.size(), snapshots[0].resolvers.size());
  // CN shrinks, US grows (Table 2).
  util::Counter first, last;
  for (const auto& r : snapshots[0].resolvers) first.add(r.country);
  for (const auto& r : snapshots[1].resolvers) last.add(r.country);
  EXPECT_LT(last.get("CN"), first.get("CN") * 0.3);
  EXPECT_GT(last.get("US"), first.get("US") * 3);
  EXPECT_GT(last.get("IE"), first.get("IE") * 1.5);
}

}  // namespace
}  // namespace encdns::scan
