// Property tests for the stateless scan cookie (DESIGN.md §14). The cookie
// is the engine's only probe state, so classification is fail-closed: any
// response whose echoed cookie does not validate for the (seed, addr, port,
// attempt) the receive loop expects is rejected. These tests pin the
// properties that make that safe — exact round-trips, rejection of every
// single-bit corruption, cross-seed forgery rejection, and distinctness
// across the adjacent probes an attacker could confuse.
#include <gtest/gtest.h>

#include <unordered_set>

#include "scan/cookie.hpp"
#include "util/rng.hpp"

namespace encdns::scan {
namespace {

TEST(ScanCookie, RoundTripValidates) {
  util::Rng rng(0xC00C1EULL);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t seed = rng.next();
    const util::Ipv4 addr{static_cast<std::uint32_t>(rng.next())};
    const auto port = static_cast<std::uint16_t>(rng.below(65536));
    const auto attempt = static_cast<std::uint32_t>(rng.below(8));
    const std::uint64_t cookie = make_cookie(seed, addr, port, attempt);
    EXPECT_TRUE(validate_cookie(cookie, seed, addr, port, attempt));
  }
}

TEST(ScanCookie, EveryBitFlipIsRejected) {
  util::Rng rng(0xB17F11BULL);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t seed = rng.next();
    const util::Ipv4 addr{static_cast<std::uint32_t>(rng.next())};
    const auto port = static_cast<std::uint16_t>(rng.below(65536));
    const auto attempt = static_cast<std::uint32_t>(rng.below(8));
    const std::uint64_t cookie = make_cookie(seed, addr, port, attempt);
    for (int bit = 0; bit < 64; ++bit) {
      EXPECT_FALSE(validate_cookie(cookie ^ (1ULL << bit), seed, addr, port,
                                   attempt))
          << "bit " << bit << " flip validated";
    }
  }
}

TEST(ScanCookie, CrossSeedForgeryIsRejected) {
  // A cookie minted under one sweep's seed must not validate under another:
  // a stale response from a previous sweep (or a replay by an on-path
  // adversary who observed it) is classified as a forgery.
  util::Rng rng(0x5EEDULL);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t seed = rng.next();
    std::uint64_t other = rng.next();
    if (other == seed) ++other;
    const util::Ipv4 addr{static_cast<std::uint32_t>(rng.next())};
    const std::uint64_t cookie = make_cookie(seed, addr, 853, 0);
    EXPECT_FALSE(validate_cookie(cookie, other, addr, 853, 0));
  }
}

TEST(ScanCookie, WrongIdentityIsRejected) {
  const std::uint64_t seed = 0x1234ULL;
  const util::Ipv4 addr{0x0A000001};
  const std::uint64_t cookie = make_cookie(seed, addr, 853, 1);
  EXPECT_FALSE(validate_cookie(cookie, seed, util::Ipv4{0x0A000002}, 853, 1));
  EXPECT_FALSE(validate_cookie(cookie, seed, addr, 443, 1));
  EXPECT_FALSE(validate_cookie(cookie, seed, addr, 853, 0));
  EXPECT_FALSE(validate_cookie(cookie, seed, addr, 853, 2));
}

TEST(ScanCookie, StagedMixAvoidsAddrAttemptAliasing) {
  // The documented collision the staged mix exists to prevent: with a naive
  // single-stage mix64(seed ^ addr ^ port ^ attempt), an even address at
  // attempt 1 aliases its odd neighbour at attempt 0 (addr ^ attempt is
  // symmetric). The retransmit of one host must never validate as the first
  // probe of the next.
  const std::uint64_t seed = 0xD15A57E4ULL;
  for (std::uint32_t base = 0x0A000000; base < 0x0A000040; base += 2) {
    const std::uint64_t retransmit =
        make_cookie(seed, util::Ipv4{base}, 853, 1);
    EXPECT_FALSE(
        validate_cookie(retransmit, seed, util::Ipv4{base | 1}, 853, 0));
    EXPECT_NE(retransmit, make_cookie(seed, util::Ipv4{base | 1}, 853, 0));
  }
}

TEST(ScanCookie, AdjacentProbesGetDistinctCookies) {
  // No collisions across a dense neighbourhood of (addr, attempt) pairs
  // under one seed — the probes a single sweep actually has in flight.
  const std::uint64_t seed = 0xFACEULL;
  std::unordered_set<std::uint64_t> seen;
  for (std::uint32_t a = 0; a < 4096; ++a)
    for (std::uint32_t attempt = 0; attempt < 4; ++attempt)
      seen.insert(make_cookie(seed, util::Ipv4{0xC0000000 + a}, 853, attempt));
  EXPECT_EQ(seen.size(), 4096u * 4u);
}

TEST(ScanCookie, CookieRngIsDeterministicAndCookieKeyed) {
  const std::uint64_t cookie =
      make_cookie(7, util::Ipv4{0x08080808}, 853, 0);
  util::Rng a = cookie_rng(cookie);
  util::Rng b = cookie_rng(cookie);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
  // A different cookie yields an independent stream: the per-probe draws
  // (latency, fault shaping) depend only on probe identity, never on the
  // order the transmit loop reached it.
  util::Rng c =
      cookie_rng(make_cookie(7, util::Ipv4{0x08080809}, 853, 0));
  EXPECT_NE(a.next(), c.next());
}

}  // namespace
}  // namespace encdns::scan
