#include <gtest/gtest.h>

#include "http/message.hpp"
#include "http/url.hpp"

namespace encdns::http {
namespace {

TEST(Url, ParseBasic) {
  const auto url = Url::parse("https://dns.example.com/dns-query");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->scheme, "https");
  EXPECT_EQ(url->host, "dns.example.com");
  EXPECT_EQ(url->port, 0);
  EXPECT_EQ(url->effective_port(), 443);
  EXPECT_EQ(url->path, "/dns-query");
}

TEST(Url, ParseWithPortAndQuery) {
  const auto url = Url::parse("http://host:8080/p/a?x=1&y=2");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->port, 8080);
  EXPECT_EQ(url->effective_port(), 8080);
  EXPECT_EQ(url->path, "/p/a");
  EXPECT_EQ(url->query, "x=1&y=2");
}

TEST(Url, DefaultsAndNormalization) {
  const auto url = Url::parse("HTTPS://Mixed.Case.COM");
  ASSERT_TRUE(url);
  EXPECT_EQ(url->scheme, "https");
  EXPECT_EQ(url->host, "mixed.case.com");
  EXPECT_EQ(url->path, "/");
  EXPECT_EQ(Url::parse("http://h")->effective_port(), 80);
}

TEST(Url, RejectsMalformed) {
  EXPECT_FALSE(Url::parse("no-scheme.com/path"));
  EXPECT_FALSE(Url::parse("ftp://host/file"));
  EXPECT_FALSE(Url::parse("https://"));
  EXPECT_FALSE(Url::parse("https://host:0/"));
  EXPECT_FALSE(Url::parse("https://host:99999/"));
  EXPECT_FALSE(Url::parse("https://user@host/"));
}

TEST(Url, ToStringRoundTrip) {
  const char* text = "https://dns.example.com:8443/dns-query?dns=abc";
  EXPECT_EQ(Url::parse(text)->to_string(), text);
}

TEST(UriTemplate, ParseWithDnsVariable) {
  const auto tmpl = UriTemplate::parse("https://dns.example.com/dns-query{?dns}");
  ASSERT_TRUE(tmpl);
  EXPECT_TRUE(tmpl->has_dns_variable());
  EXPECT_EQ(tmpl->base().host, "dns.example.com");
  EXPECT_EQ(tmpl->to_string(), "https://dns.example.com/dns-query{?dns}");
}

TEST(UriTemplate, ParseWithoutExpression) {
  const auto tmpl = UriTemplate::parse("https://commons.host/dns-query");
  ASSERT_TRUE(tmpl);
  EXPECT_FALSE(tmpl->has_dns_variable());
}

TEST(UriTemplate, RejectsUnknownExpressions) {
  EXPECT_FALSE(UriTemplate::parse("https://h/q{?name}"));
  EXPECT_FALSE(UriTemplate::parse("https://h/{segment}/q"));
}

TEST(UriTemplate, ExpandGet) {
  const auto tmpl = *UriTemplate::parse("https://d.example/dns-query{?dns}");
  const Url url = tmpl.expand_get("AAABAA");
  EXPECT_EQ(url.query, "dns=AAABAA");
  EXPECT_EQ(url.to_string(), "https://d.example/dns-query?dns=AAABAA");
}

TEST(PercentEncoding, UnreservedPassThrough) {
  EXPECT_EQ(percent_encode("AZaz09-_.~"), "AZaz09-_.~");
  EXPECT_EQ(percent_encode("a b&c"), "a%20b%26c");
}

TEST(QueryParam, ExtractsAndDecodes) {
  EXPECT_EQ(*query_param("dns=abc&x=1", "dns"), "abc");
  EXPECT_EQ(*query_param("x=1&dns=a%2Bb", "dns"), "a+b");
  EXPECT_EQ(*query_param("flag", "flag"), "");
  EXPECT_FALSE(query_param("x=1", "dns"));
  EXPECT_FALSE(query_param("dns=%GG", "dns"));  // bad escape
}

TEST(Request, SerializeParseRoundTrip) {
  Request req;
  req.method = Method::kGet;
  req.target = "/dns-query?dns=AAAA";
  req.headers.set("Host", "dns.example.com");
  req.headers.set("Accept", kDnsMessageType);
  const auto parsed = Request::parse(req.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->method, Method::kGet);
  EXPECT_EQ(parsed->target, "/dns-query?dns=AAAA");
  EXPECT_EQ(*parsed->headers.get("host"), "dns.example.com");
  EXPECT_EQ(parsed->path(), "/dns-query");
  EXPECT_EQ(parsed->query(), "dns=AAAA");
}

TEST(Request, PostWithBody) {
  Request req;
  req.method = Method::kPost;
  req.target = "/dns-query";
  req.headers.set("Content-Type", kDnsMessageType);
  req.body = {1, 2, 3, 4};
  const auto wire = req.serialize();
  const std::string text(wire.begin(), wire.end());
  EXPECT_NE(text.find("Content-Length: 4"), std::string::npos);
  const auto parsed = Request::parse(wire);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->body, (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST(Request, RejectsMalformed) {
  const auto as_bytes = [](std::string_view s) {
    return std::vector<std::uint8_t>(s.begin(), s.end());
  };
  EXPECT_FALSE(Request::parse(as_bytes("GET /")));                     // no CRLFCRLF
  EXPECT_FALSE(Request::parse(as_bytes("GET / HTTP/1.0\r\n\r\n")));    // version
  EXPECT_FALSE(Request::parse(as_bytes("PATCH / HTTP/1.1\r\n\r\n")));  // method
  EXPECT_FALSE(Request::parse(as_bytes("GET / HTTP/1.1\r\nBadHeader\r\n\r\n")));
  // Content-Length disagreeing with the actual body.
  EXPECT_FALSE(Request::parse(
      as_bytes("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")));
}

TEST(Response, SerializeParseRoundTrip) {
  auto resp = Response::make(200, "OK", kDnsMessageType, {9, 9});
  const auto parsed = Response::parse(resp.serialize());
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->reason, "OK");
  EXPECT_EQ(*parsed->headers.get("Content-Type"), kDnsMessageType);
  EXPECT_EQ(parsed->body, (std::vector<std::uint8_t>{9, 9}));
}

TEST(Response, ErrorStatuses) {
  for (int status : {400, 404, 405, 415, 500}) {
    auto resp = Response::make(status, "Err", "text/plain", {});
    const auto parsed = Response::parse(resp.serialize());
    ASSERT_TRUE(parsed);
    EXPECT_EQ(parsed->status, status);
  }
}

TEST(Headers, CaseInsensitiveSetAndGet) {
  Headers headers;
  headers.set("Content-Type", "a");
  headers.set("content-type", "b");  // replaces
  EXPECT_EQ(headers.entries().size(), 1u);
  EXPECT_EQ(*headers.get("CONTENT-TYPE"), "b");
  headers.add("X-Dup", "1");
  headers.add("X-Dup", "2");
  EXPECT_EQ(headers.entries().size(), 3u);
  EXPECT_EQ(*headers.get("x-dup"), "1");  // first wins on lookup
}

}  // namespace
}  // namespace encdns::http
