#include "proxy/proxy.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace encdns::proxy {
namespace {

world::World& shared_world() {
  static world::World world;
  return world;
}

TEST(ProxyNetwork, GlobalPlatformSamplesManyCountries) {
  ProxyNetwork network(shared_world(), ProxyConfig{}, 1);
  std::unordered_set<std::string> countries;
  std::unordered_set<std::uint64_t> ids;
  for (int i = 0; i < 3000; ++i) {
    const auto session = network.acquire();
    countries.insert(session.vantage().country);
    EXPECT_TRUE(ids.insert(session.id()).second);
    EXPECT_GT(session.tunnel_rtt().value, 0.0);
    EXPECT_GT(session.remaining_uptime().value, 0.0);
  }
  EXPECT_GT(countries.size(), 80u);
}

TEST(ProxyNetwork, CensoredPlatformIsCnOnly) {
  ProxyConfig config;
  config.name = "Zhima";
  config.kind = PlatformKind::kCensoredCn;
  ProxyNetwork network(shared_world(), config, 2);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(network.acquire().vantage().country, "CN");
}

TEST(ProxySession, LifetimeConsumption) {
  ProxyNetwork network(shared_world(), ProxyConfig{}, 3);
  auto session = network.acquire();
  const double initial = session.remaining_uptime().value;
  EXPECT_TRUE(session.consume(sim::Millis{initial / 2}));
  EXPECT_NEAR(session.remaining_uptime().value, initial / 2, 1e-6);
  EXPECT_FALSE(session.consume(sim::Millis{initial}));
}

TEST(ProxyNetwork, ChurnRateApproximatesConfig) {
  ProxyConfig config;
  config.churn_per_query = 0.01;
  ProxyNetwork network(shared_world(), config, 4);
  int churned = 0;
  for (int i = 0; i < 50000; ++i)
    if (network.churn_event()) ++churned;
  EXPECT_NEAR(churned / 50000.0, 0.01, 0.003);
}

TEST(ProxyNetwork, SummarizeCountsDistinct) {
  ProxyNetwork network(shared_world(), ProxyConfig{}, 5);
  std::vector<ProxySession> sessions;
  for (int i = 0; i < 500; ++i) sessions.push_back(network.acquire());
  const auto summary = ProxyNetwork::summarize("ProxyRack", sessions);
  EXPECT_EQ(summary.platform, "ProxyRack");
  EXPECT_GT(summary.distinct_ips, 490u);  // rare hash collisions tolerated
  EXPECT_LE(summary.distinct_ips, 500u);
  EXPECT_GT(summary.countries, 50u);
  EXPECT_GT(summary.ases, 100u);
}

TEST(ProxyNetwork, TunnelRttGrowsWithDistance) {
  // The measurement client sits in CN; far exit nodes cost more tunnel RTT.
  ProxyNetwork network(shared_world(), ProxyConfig{}, 6);
  double cn_like = 0, far = 0;
  int cn_count = 0, far_count = 0;
  for (int i = 0; i < 4000; ++i) {
    const auto session = network.acquire();
    const auto& country = session.vantage().country;
    if (country == "JP" || country == "KR" || country == "TW") {
      cn_like += session.tunnel_rtt().value;
      ++cn_count;
    } else if (country == "BR" || country == "AR" || country == "CL") {
      far += session.tunnel_rtt().value;
      ++far_count;
    }
  }
  if (cn_count > 5 && far_count > 5)
    EXPECT_GT(far / far_count, cn_like / cn_count);
}

TEST(ProxyNetwork, FailoverRotatesInAFreshNodeDeterministically) {
  ProxyNetwork network(shared_world(), ProxyConfig{}, 7);
  const ProxySession dead = network.acquire();

  util::Rng rng_a(42), rng_b(42), rng_c(43);
  const ProxySession replacement_a = network.failover(dead, rng_a);
  const ProxySession replacement_b = network.failover(dead, rng_b);
  const ProxySession replacement_c = network.failover(dead, rng_c);

  // The platform rotates in a genuinely different exit node.
  EXPECT_NE(replacement_a.id(), dead.id());
  // Same caller rng stream => same replacement (determinism under any thread
  // count: failover only ever consumes the caller's per-shard stream).
  EXPECT_EQ(replacement_a.id(), replacement_b.id());
  EXPECT_EQ(replacement_a.vantage().country, replacement_b.vantage().country);
  EXPECT_EQ(replacement_a.tunnel_rtt().value, replacement_b.tunnel_rtt().value);
  EXPECT_EQ(replacement_a.remaining_uptime().value,
            replacement_b.remaining_uptime().value);
  // The replacement id is derived from the dead session's id (so it is the
  // same for every rng stream), but a different stream lands on a different
  // exit node.
  EXPECT_EQ(replacement_a.id(), replacement_c.id());
  EXPECT_NE(replacement_a.tunnel_rtt().value, replacement_c.tunnel_rtt().value);
  // The replacement is a usable vantage: it has a live uptime budget and a
  // plausible tunnel cost.
  EXPECT_GT(replacement_a.remaining_uptime().value, 0.0);
  EXPECT_GT(replacement_a.tunnel_rtt().value, 0.0);
  EXPECT_FALSE(replacement_a.vantage().country.empty());
}

}  // namespace
}  // namespace encdns::proxy
