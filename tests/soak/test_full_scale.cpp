// Paper-scale soak coverage for StudyConfig::full() (DESIGN.md §11).
//
// Every other integration test runs the study at quick() scale; until this
// suite, nothing ever executed the full-scale configuration (29,622 global
// reachability clients, 20,000 CN clients, 8,257 performance clients, 6,655
// local probes, the 10-scan campaign) end to end. These tests assert the
// paper's headline findings still hold at that scale:
//
//  - Table 2 country growth ranking across the full 10-scan campaign
//  - Table 4 / Finding 21 reachability ordering (Do53 worst, DoH best)
//  - §3.1 local-resolver DoT probe rate band (~0.3%)
//
// The full study takes tens of seconds on one core, so the suite is opt-in:
// each test GTEST_SKIPs unless ENCDNS_SOAK is set in the environment. CTest
// registers the binary under the `soak` label with a generous timeout;
// tools/check.sh runs `ENCDNS_SOAK=1 ctest -L soak` as a dedicated step.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/study.hpp"
#include "traffic/trend_study.hpp"
#include "util/stats.hpp"

namespace encdns::core {
namespace {

bool soak_enabled() { return std::getenv("ENCDNS_SOAK") != nullptr; }

#define ENCDNS_REQUIRE_SOAK()                                           \
  do {                                                                  \
    if (!soak_enabled())                                                \
      GTEST_SKIP() << "set ENCDNS_SOAK=1 to run paper-scale soak tests"; \
  } while (0)

/// One shared full-scale Study for the whole suite. Experiments are computed
/// lazily and cached inside Study, so the first test that touches a phase
/// pays for it and the rest reuse the result.
Study& full_study() {
  static Study instance{StudyConfig::full()};
  return instance;
}

// --- Table 2: country growth over the full 10-scan campaign -------------------

TEST(SoakTable2, CountryGrowthRankingHoldsAtFullScale) {
  ENCDNS_REQUIRE_SOAK();
  const auto& scans = full_study().scans();
  ASSERT_EQ(scans.size(), 10u);  // full() runs the complete campaign
  util::Counter first, last;
  for (const auto& r : scans.front().resolvers) first.add(r.country);
  for (const auto& r : scans.back().resolvers) last.add(r.country);
  // Paper Table 2: IE +108%, CN -84%, US +431%, BR +122%.
  EXPECT_GT(last.get("IE") / first.get("IE"), 1.7);
  EXPECT_LT(last.get("CN") / first.get("CN"), 0.35);
  EXPECT_GT(last.get("US") / first.get("US"), 3.0);
  EXPECT_GT(last.get("BR") / first.get("BR"), 1.5);
  // The ranking itself: US grows fastest of the four, CN shrinks.
  const double us = last.get("US") / first.get("US");
  const double ie = last.get("IE") / first.get("IE");
  const double br = last.get("BR") / first.get("BR");
  const double cn = last.get("CN") / first.get("CN");
  EXPECT_GT(us, ie);
  EXPECT_GT(us, br);
  EXPECT_LT(cn, 1.0);
}

TEST(SoakTable2, EveryScanInTheCampaignFindsProviders) {
  ENCDNS_REQUIRE_SOAK();
  for (const auto& snapshot : full_study().scans()) {
    EXPECT_GT(snapshot.resolvers.size(), 1200u);
    EXPECT_GT(snapshot.providers().size(), 150u);
    EXPECT_GT(snapshot.port_open, snapshot.resolvers.size() * 10);
  }
}

TEST(SoakTable2, FullCampaignRunsThroughTheStatelessEngine) {
  ENCDNS_REQUIRE_SOAK();
  // The 10-sweep, ~4.65M-probe-per-sweep campaign is gated through the
  // stateless engine by default — this pins the default so a config drift
  // back to the legacy sweep cannot pass silently.
  ASSERT_EQ(full_study().config().campaign.sweep_mode,
            scan::SweepMode::kStateless);
  for (const auto& snapshot : full_study().scans()) {
    // Full-scale fault-free sweeps: every address probed, nothing rejected.
    EXPECT_GT(snapshot.addresses_probed, 4500000u);
    EXPECT_EQ(snapshot.rejected_forgery, 0u);
    EXPECT_EQ(snapshot.rejected_duplicate, 0u);
    EXPECT_EQ(snapshot.rejected_stale, 0u);
    EXPECT_EQ(snapshot.retransmits, 0u);
  }
}

// --- §3 variant: IP-directed DoH discovery at full scale ----------------------

TEST(SoakDohScan, DirectedScanAgreesWithUrlDiscoveryAtFullScale) {
  ENCDNS_REQUIRE_SOAK();
  const auto& scan = full_study().doh_scan();
  // The 443 sweep covers the same ~4.65M-address space as the DoT campaign.
  EXPECT_GT(scan.addresses_probed, 4500000u);
  EXPECT_GT(scan.port443_open, 0u);
  EXPECT_GE(scan.port443_open, scan.tls_established);
  EXPECT_FALSE(scan.endpoints.empty());
  // Cross-check against the URL-dataset discovery: the directed scan must
  // confirm a comparable endpoint population (it can only reach deployments
  // with routable addresses, so it is bounded by the 443-open count) and
  // find at least one host the URL dataset misses.
  const auto& discovery = full_study().doh_discovery();
  EXPECT_GE(discovery.resolvers.size(), 17u);
  std::vector<std::string> url_hosts;
  for (const auto& resolver : discovery.resolvers)
    url_hosts.push_back(resolver.host);
  EXPECT_GE(scan.hosts_beyond(url_hosts), 1u);
  EXPECT_LE(scan.endpoints.size(), scan.port443_open);
}

// --- Table 4 / Finding 21: reachability ordering at full client scale ---------

TEST(SoakTable4, ReachabilityOrderingHoldsAtFullScale) {
  ENCDNS_REQUIRE_SOAK();
  const auto& global = full_study().reachability_global();
  using P = measure::Protocol;
  using O = measure::Outcome;
  EXPECT_GE(global.clients, 29000u);  // full(): 29,622 vantage clients
  const double dns_failed =
      global.cell("Cloudflare", P::kDo53).fraction(O::kFailed);
  const double dot_failed =
      global.cell("Cloudflare", P::kDoT).fraction(O::kFailed);
  const double doh_failed =
      global.cell("Cloudflare", P::kDoH).fraction(O::kFailed);
  // Paper ordering: clear-text Do53 fails most (16%+ of clients), DoT under
  // 4%, DoH under 2% — encrypted DNS is *more* reachable than clear text.
  EXPECT_GT(dns_failed, 0.10);
  EXPECT_LT(dot_failed, 0.04);
  EXPECT_LT(doh_failed, 0.02);
  EXPECT_GT(dns_failed, dot_failed);
  EXPECT_GT(dot_failed, doh_failed);
  // Over 99% of clients can use the DoE services normally.
  EXPECT_GT(global.cell("Cloudflare", P::kDoH).fraction(O::kCorrect), 0.97);
  EXPECT_GT(global.cell("Quad9", P::kDoT).fraction(O::kCorrect), 0.97);
}

TEST(SoakTable4, CensorshipShapeHoldsAtFullCnScale) {
  ENCDNS_REQUIRE_SOAK();
  const auto& cn = full_study().reachability_cn();
  using P = measure::Protocol;
  using O = measure::Outcome;
  EXPECT_GE(cn.clients, 19000u);  // full(): 20,000 CN clients
  EXPECT_GT(cn.cell("Google", P::kDoH).fraction(O::kFailed), 0.99);
  EXPECT_LT(cn.cell("Google", P::kDo53).fraction(O::kFailed), 0.05);
  EXPECT_LT(cn.cell("Cloudflare", P::kDoH).fraction(O::kFailed), 0.05);
}

// --- §3.1: local resolvers barely speak DoT -----------------------------------

TEST(SoakLocalProbe, IspDotRateStaysInPaperBand) {
  ENCDNS_REQUIRE_SOAK();
  const auto& probe = full_study().local_probe();
  // Paper §3.1: 6,657 local resolvers probed, ~0.3% answer DoT. At full
  // probe count the rate must sit in a tight band around that — nonzero
  // (some ISPs do deploy) but rare.
  EXPECT_GT(probe.success_rate(), 0.0005);
  EXPECT_LT(probe.success_rate(), 0.03);
}

// --- §5.2 extension: multi-year adoption trend at 100x the sampled corpus -----

/// Current resident set in bytes (statm field 2), for before/after deltas.
std::uint64_t resident_bytes() {
  std::ifstream statm("/proc/self/statm");
  std::uint64_t pages_total = 0, pages_resident = 0;
  statm >> pages_total >> pages_resident;
  return pages_resident * static_cast<std::uint64_t>(sysconf(_SC_PAGESIZE));
}

TEST(SoakTrend, HundredFoldCorpusRunsUnderFixedTrackedMemory) {
  ENCDNS_REQUIRE_SOAK();
  const auto& trend = full_study().netflow_trend();
  ASSERT_EQ(trend.days_processed, trend.days_planned);
  // The acceptance floor: >= 100x the §5.2 sampled corpus (53,591 records)
  // and millions of distinct clients, while the deterministic live-state
  // high-water mark stays bounded by staging + month accumulators.
  EXPECT_GE(trend.total_records, 100u * 53591u);
  EXPECT_GE(trend.clients_estimated_total(), 1000000u);
  EXPECT_LT(trend.peak_tracked_bytes, 64ull << 20);
  // Every default provider contributed, with a multi-year month series.
  ASSERT_EQ(trend.providers.size(), 4u);
  for (const auto& provider : trend.providers) {
    EXPECT_GT(provider.total_records, 100000u) << provider.name;
    EXPECT_GE(provider.monthly.size(), 24u) << provider.name;
  }
}

TEST(SoakTrend, DayRetirementKeepsResidentMemoryFlat) {
  ENCDNS_REQUIRE_SOAK();
  // Standalone full-scale run (not via full_study(), whose other phases
  // dominate absolute RSS): generating ~9M records across four years must
  // not grow the resident set by more than a fixed staging allowance.
  const std::uint64_t before = resident_bytes();
  traffic::TrendStudyConfig config;  // defaults: scale=1, four-year horizon
  const auto results = traffic::TrendStudy(config).run();
  const std::uint64_t after = resident_bytes();
  ASSERT_GE(results.total_records, 100u * 53591u);
  EXPECT_LT(results.peak_tracked_bytes, 64ull << 20);
  const std::uint64_t delta = after > before ? after - before : 0;
  EXPECT_LT(delta, 256ull << 20)
      << "day retirement should keep memory flat; resident grew by "
      << (delta >> 20) << " MiB over " << results.total_records << " records";
}

TEST(SoakTrend, SketchTracksExactClientsAtValidationScale) {
  ENCDNS_REQUIRE_SOAK();
  // Larger-than-tier-1 validation point: exact per-month client sets are
  // still tractable at 0.1x, and every provider's all-time estimate must sit
  // within the tested 3-sigma band of the exact distinct count.
  traffic::TrendStudyConfig config;
  config.scale = 0.1;
  config.validate_exact = true;
  const auto results = traffic::TrendStudy(config).run();
  const double sigma =
      traffic::Hll(config.hll_precision).relative_error_bound();
  for (const auto& provider : results.providers) {
    ASSERT_GT(provider.clients_exact, 0u) << provider.name;
    const double rel_error =
        std::abs(static_cast<double>(provider.clients_estimated) -
                 static_cast<double>(provider.clients_exact)) /
        static_cast<double>(provider.clients_exact);
    EXPECT_LE(rel_error, 3.0 * sigma) << provider.name;
  }
}

// --- The full report stays green at paper scale -------------------------------

TEST(SoakReport, EveryPaperClaimReproducesAtFullScale) {
  ENCDNS_REQUIRE_SOAK();
  const auto checks = evaluate_findings(full_study());
  EXPECT_GE(checks.size(), 20u);
  for (const auto& check : checks) {
    EXPECT_TRUE(check.ok) << check.id << ": " << check.description << " (paper "
                          << check.paper << ", measured " << check.measured
                          << ")";
  }
  EXPECT_EQ(failed_count(checks), 0u);
}

}  // namespace
}  // namespace encdns::core
