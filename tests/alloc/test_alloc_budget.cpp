// Allocation-regression harness for the query hot path (DESIGN.md §11).
//
// This binary replaces global operator new with a counting allocator and
// pins per-query steady-state allocation budgets for the Do53/DoT/DoH
// clients. Two kinds of pins:
//
//  - Relative: the reworked build+encode+frame hot path must allocate at
//    least 5x less than the legacy make_query+encode+frame_stream path,
//    measured in the same process (self-calibrating across allocators). The
//    pre-change hot path cost 64.0 allocs/query; the scratch path costs 0.
//  - Absolute ceilings: full client query() budgets (which include the
//    simulated resolver service, response decode and outcome bookkeeping)
//    must not regress past the post-change measurements plus headroom.
//
// Pre-change baselines (seed commit, glibc, -O2): do53_udp 92.1, do53_tcp
// 96.1, dot 136.0, doh GET 197.0, build+encode+frame 64.0 allocs/query.
//
// Under ASan/TSan the allocator is intercepted and counts shift, so every
// test skips — tools/check.sh runs the plain pass first, which enforces
// the budgets.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

// ---------------------------------------------------------------------------
// Counting allocator: one atomic bump per operator new.

namespace {
std::atomic<unsigned long long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#include "client/do53.hpp"
#include "client/doh.hpp"
#include "client/dot.hpp"
#include "dns/query.hpp"
#include "dns/wire.hpp"
#include "exec/arena.hpp"
#include "http/url.hpp"
#include "measure/reachability.hpp"
#include "proxy/proxy.hpp"
#include "scan/doh_prober.hpp"
#include "world/world.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ENCDNS_ALLOC_TEST_SANITIZED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define ENCDNS_ALLOC_TEST_SANITIZED 1
#endif
#endif

namespace encdns {
namespace {

constexpr int kWarmup = 100;
constexpr int kMeasured = 400;

// Pre-change hot-path cost, pinned from the seed commit's measurement. The
// 5x acceptance bound below is asserted against this constant *and* against
// the legacy path measured in-process.
constexpr double kPreChangeHotPathAllocs = 64.0;

// Absolute steady-state ceilings: post-change measurements (47.1 / 47.1 /
// 56.1 / 111.0 in this harness) plus ~20% headroom for allocator/library
// drift and test-order effects on the shared world.
constexpr double kBudgetDo53Udp = 60.0;
constexpr double kBudgetDo53Tcp = 60.0;
constexpr double kBudgetDot = 68.0;
constexpr double kBudgetDoh = 135.0;

world::World& shared_world() {
  static world::World instance;
  return instance;
}

/// Allocations per iteration of `fn`, after a warmup that fills connection
/// pools, scratch capacities and arena buffers.
template <typename Fn>
double allocs_per_query(Fn&& fn) {
  for (int i = 0; i < kWarmup; ++i) fn(i);
  const auto before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = kWarmup; i < kWarmup + kMeasured; ++i) fn(i);
  const auto after = g_alloc_count.load(std::memory_order_relaxed);
  return static_cast<double>(after - before) / kMeasured;
}

std::vector<dns::Name> probe_names(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<dns::Name> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    names.push_back(shared_world().unique_probe_name(rng));
  return names;
}

class AllocBudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
#ifdef ENCDNS_ALLOC_TEST_SANITIZED
    GTEST_SKIP() << "counting allocator is not meaningful under sanitizers";
#endif
  }
};

TEST_F(AllocBudgetTest, HotPathAtLeastFiveTimesBelowPreChange) {
  const auto names = probe_names(kWarmup + kMeasured, 11);

  // Legacy path, as every client ran before the rework: build a fresh
  // message, pad via re-encode, encode to a fresh vector, frame via copy.
  // (No gtest macros inside measured loops: a failing expectation would
  // allocate and skew the count — tally and assert afterwards.)
  std::size_t bad = 0;
  const double legacy = allocs_per_query([&](int i) {
    dns::QueryOptions options;
    options.padding_block = 128;
    const auto query = dns::make_query(names[static_cast<std::size_t>(i)],
                                       dns::RrType::kA, 0x1234, options);
    const auto framed = dns::frame_stream(query.encode());
    if (framed.size() <= 2) ++bad;
  });

  // Reworked path: scratch message + arena lease + in-place framing.
  dns::Message scratch;
  const double reworked = allocs_per_query([&](int i) {
    dns::QueryOptions options;
    options.padding_block = 128;
    dns::build_query_into(scratch, names[static_cast<std::size_t>(i)],
                          dns::RrType::kA, 0x1234, options);
    exec::BufferLease lease;
    dns::WireWriter writer(*lease);
    const std::size_t prefix = writer.begin_stream_frame();
    scratch.encode_into(writer);
    writer.end_stream_frame(prefix);
    if (writer.size() <= 2) ++bad;
  });
  EXPECT_EQ(bad, 0u);

  RecordProperty("legacy_allocs_per_query", static_cast<int>(legacy * 10));
  RecordProperty("reworked_allocs_per_query", static_cast<int>(reworked * 10));
  EXPECT_GT(legacy, 1.0) << "counting allocator appears inert";
  // The acceptance bound: >= 5x below the pre-change count...
  EXPECT_LE(reworked * 5.0, kPreChangeHotPathAllocs);
  // ...and below whatever the legacy path costs on this toolchain.
  EXPECT_LE(reworked * 5.0, legacy);
  // In steady state the path is flat-out allocation-free.
  EXPECT_LE(reworked, 0.5);
}

TEST_F(AllocBudgetTest, Do53SteadyStateBudgets) {
  const auto names = probe_names(2 * (kWarmup + kMeasured), 12);
  world::Vantage vantage = shared_world().make_clean_vantage("US");
  const util::Date day{2019, 3, 10};

  client::Do53Client udp_client(shared_world().network(), vantage.context, 21);
  std::size_t failures = 0;
  const double udp = allocs_per_query([&](int i) {
    const auto outcome = udp_client.query_udp(
        world::addrs::kGooglePrimary, names[static_cast<std::size_t>(i)],
        dns::RrType::kA, day);
    if (outcome.status != client::QueryStatus::kOk) ++failures;
  });
  EXPECT_EQ(failures, 0u);
  EXPECT_LE(udp, kBudgetDo53Udp);

  client::Do53Client tcp_client(shared_world().network(), vantage.context, 22);
  std::size_t offset = kWarmup + kMeasured;
  const double tcp = allocs_per_query([&](int i) {
    const auto outcome = tcp_client.query_tcp(
        world::addrs::kCloudflarePrimary,
        names[offset + static_cast<std::size_t>(i)], dns::RrType::kA, day);
    if (outcome.status != client::QueryStatus::kOk) ++failures;
  });
  EXPECT_EQ(failures, 0u);
  EXPECT_LE(tcp, kBudgetDo53Tcp);
}

TEST_F(AllocBudgetTest, DotSteadyStateBudget) {
  const auto names = probe_names(kWarmup + kMeasured, 13);
  world::Vantage vantage = shared_world().make_clean_vantage("US");
  const util::Date day{2019, 3, 10};

  client::DotClient dot_client(shared_world().network(), vantage.context, 23);
  std::size_t failures = 0;
  const double dot = allocs_per_query([&](int i) {
    const auto outcome =
        dot_client.query(world::addrs::kCloudflarePrimary,
                         names[static_cast<std::size_t>(i)], dns::RrType::kA, day);
    if (outcome.status != client::QueryStatus::kOk) ++failures;
  });
  EXPECT_EQ(failures, 0u);
  EXPECT_LE(dot, kBudgetDot);
  // Also keep the pre-change count (136.0) unreachable: at least 2x under it.
  EXPECT_LE(dot * 2.0, 136.0);
}

TEST_F(AllocBudgetTest, DohSteadyStateBudget) {
  const auto names = probe_names(kWarmup + kMeasured, 14);
  world::Vantage vantage = shared_world().make_clean_vantage("US");
  const util::Date day{2019, 3, 10};

  client::DohClient doh_client(shared_world().network(), vantage.context, 24);
  const auto uri = http::UriTemplate::parse(
      "https://mozilla.cloudflare-dns.com/dns-query{?dns}");
  ASSERT_TRUE(uri.has_value());
  client::DohClient::Options options;
  options.bootstrap_resolver = world::addrs::kGooglePrimary;
  std::size_t failures = 0;
  const double doh = allocs_per_query([&](int i) {
    const auto outcome = doh_client.query(
        *uri, names[static_cast<std::size_t>(i)], dns::RrType::kA, day, options);
    if (outcome.status != client::QueryStatus::kOk) ++failures;
  });
  EXPECT_EQ(failures, 0u);
  EXPECT_LE(doh, kBudgetDoh);
  // Pre-change count (197.0): at least 1.5x under it.
  EXPECT_LE(doh * 1.5, 197.0);
}

// --- measurement-phase budgets (DESIGN.md §12) ------------------------------
//
// The per-client / per-check budgets below guard the arena discipline through
// the measurement fan-out, not just the wire codec: thread-resident client
// sets, slot-reusing query paths, pointer-shared certificate chains and
// epoch-gated bootstrap caches. Pre-change full-scale costs (seed commit,
// glibc, -O2, from BENCH_throughput.json): reachability_global 1175.28
// allocs/client, doh_discovery 536.34 allocs/url_check.

constexpr double kPreChangeReachabilityAllocs = 1175.28;
constexpr double kPreChangeDohDiscoveryAllocs = 536.34;

// Absolute ceilings, matching the bench_macro_study --guard phase ceilings.
constexpr double kBudgetReachabilityPerClient = 120.0;
constexpr double kBudgetDohDiscoveryPerCheck = 100.0;

TEST_F(AllocBudgetTest, ReachabilityPerClientBudget) {
  proxy::ProxyConfig platform_config;
  platform_config.name = "ProxyRack";
  platform_config.kind = proxy::PlatformKind::kGlobal;
  proxy::ProxyNetwork platform(shared_world(), platform_config, 0x91ACULL);

  measure::ReachabilityConfig config;
  config.thread_count = 1;  // inline workers: thread_local scratch persists
  config.seed = 17;

  // Warm run: fills the thread-resident ClientSet, outcome scratch, arena
  // leases and the resolver caches' steady-state capacities.
  config.client_count = 150;
  measure::ReachabilityTest warm(shared_world(), platform, config);
  const auto warm_results = warm.run();
  ASSERT_EQ(warm_results.clients, 150u);

  constexpr std::size_t kClients = 400;
  config.client_count = kClients;
  measure::ReachabilityTest test(shared_world(), platform, config);
  const auto before = g_alloc_count.load(std::memory_order_relaxed);
  const auto results = test.run();
  const auto after = g_alloc_count.load(std::memory_order_relaxed);
  ASSERT_EQ(results.clients, kClients);

  const double per_client =
      static_cast<double>(after - before) / static_cast<double>(kClients);
  RecordProperty("reachability_allocs_per_client",
                 static_cast<int>(per_client * 10));
  EXPECT_LE(per_client, kBudgetReachabilityPerClient);
  // Ratio pin: at least 5x below the pre-change per-client cost, so the
  // budget cannot be met by merely inflating the ceiling later.
  EXPECT_LE(per_client * 5.0, kPreChangeReachabilityAllocs);
}

TEST_F(AllocBudgetTest, DohDiscoveryPerCheckBudget) {
  const world::Vantage origin = shared_world().make_clean_vantage("US");
  const util::Date day{2019, 1, 20};
  scan::DohProber prober(shared_world(), origin, 77);
  const auto& urls = shared_world().url_dataset();

  // Warm run: the prober's client scratch, the URL prefilter and the probe
  // templates all reach steady state.
  const auto warm_discovery = prober.discover(urls, day);
  ASSERT_GT(warm_discovery.valid_urls, 0u);

  const auto before = g_alloc_count.load(std::memory_order_relaxed);
  const auto discovery = prober.discover(urls, day);
  const auto after = g_alloc_count.load(std::memory_order_relaxed);
  ASSERT_GT(discovery.valid_urls, 0u);

  // Same unit as the bench guard: phase allocations per *validated* URL
  // (the funnel's work unit; the 20k-URL prefilter sweep is included).
  const double per_check = static_cast<double>(after - before) /
                           static_cast<double>(discovery.valid_urls);
  RecordProperty("doh_discovery_allocs_per_check",
                 static_cast<int>(per_check * 10));
  EXPECT_LE(per_check, kBudgetDohDiscoveryPerCheck);
  EXPECT_LE(per_check * 4.0, kPreChangeDohDiscoveryAllocs);
}

TEST_F(AllocBudgetTest, ArenaLeasesReuseBuffersAfterWarmup) {
  exec::ScratchArena arena;
  {
    exec::BufferLease a(arena);
    exec::BufferLease b(arena);  // nested (reentrant) lease
    a->resize(512);
    b->resize(128);
  }
  EXPECT_EQ(arena.created(), 2u);
  EXPECT_EQ(arena.available(), 2u);
  const auto before = g_alloc_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    exec::BufferLease lease(arena);
    lease->assign(256, 0x5a);  // fits the warmed capacity
  }
  const auto after = g_alloc_count.load(std::memory_order_relaxed);
#ifndef ENCDNS_ALLOC_TEST_SANITIZED
  EXPECT_EQ(after, before) << "warmed leases must not allocate";
#endif
  EXPECT_EQ(arena.created(), 2u);
}

}  // namespace
}  // namespace encdns
