// The deterministic parallel execution engine: pool correctness, sharding
// arithmetic, rng derivation, and the determinism contract itself.
#include "exec/arena.hpp"
#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/cancel.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"

namespace encdns {
namespace {

TEST(ResolveThreadCount, ExplicitRequestWins) {
  EXPECT_EQ(exec::resolve_thread_count(3), 3u);
  EXPECT_EQ(exec::resolve_thread_count(1), 1u);
}

TEST(ResolveThreadCount, AutoIsAtLeastOne) {
  ::unsetenv("ENCDNS_THREADS");
  EXPECT_GE(exec::resolve_thread_count(0), 1u);
}

TEST(ParallelismAvailable, TracksTheAutoResolvedWorkerCount) {
  // The bench layer keys "speedup": null and its wall-clock guards off this
  // predicate, so pin it to resolve_thread_count(0) exactly.
  ::setenv("ENCDNS_THREADS", "1", 1);
  EXPECT_FALSE(exec::parallelism_available());
  ::setenv("ENCDNS_THREADS", "4", 1);
  EXPECT_TRUE(exec::parallelism_available());
  ::unsetenv("ENCDNS_THREADS");
  EXPECT_EQ(exec::parallelism_available(), exec::resolve_thread_count(0) > 1);
}

TEST(ResolveThreadCount, EnvOverrideApplies) {
  ::setenv("ENCDNS_THREADS", "5", 1);
  EXPECT_EQ(exec::resolve_thread_count(0), 5u);
  // Garbage and non-positive values refuse to start the run (DESIGN.md §13)
  // instead of silently falling back to hardware_concurrency.
  ::setenv("ENCDNS_THREADS", "0", 1);
  EXPECT_THROW((void)exec::resolve_thread_count(0), util::EnvError);
  ::setenv("ENCDNS_THREADS", "lots", 1);
  EXPECT_THROW((void)exec::resolve_thread_count(0), util::EnvError);
  ::unsetenv("ENCDNS_THREADS");
}

TEST(ShardRange, PartitionsWithoutGapsOrOverlap) {
  for (const std::size_t total : {0ul, 1ul, 7ul, 64ul, 1000ul, 1001ul}) {
    for (const std::size_t shards : {1ul, 2ul, 16ul, 64ul}) {
      std::size_t covered = 0;
      std::size_t expected_next = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [first, last] = exec::shard_range(total, shards, s);
        EXPECT_EQ(first, expected_next);
        EXPECT_LE(first, last);
        covered += last - first;
        expected_next = last;
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(expected_next, total);
    }
  }
}

TEST(ShardRange, SizesDifferByAtMostOne) {
  std::size_t min_size = SIZE_MAX, max_size = 0;
  for (std::size_t s = 0; s < 16; ++s) {
    const auto [first, last] = exec::shard_range(1003, 16, s);
    min_size = std::min(min_size, last - first);
    max_size = std::max(max_size, last - first);
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ShardRng, DistinctShardsGetDistinctStreams) {
  util::Rng a = exec::shard_rng(42, 0);
  util::Rng b = exec::shard_rng(42, 1);
  EXPECT_NE(a.next(), b.next());
}

TEST(ShardRng, SameDerivationIsReproducible) {
  util::Rng a = exec::shard_rng(42, 7);
  util::Rng b = exec::shard_rng(42, 7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(WorkerPool, EveryShardRunsExactlyOnce) {
  exec::WorkerPool pool(4);
  constexpr std::size_t kShards = 1000;
  std::vector<std::atomic<int>> hits(kShards);
  pool.parallel_for_shards(kShards, [&](std::size_t s) { ++hits[s]; });
  for (std::size_t s = 0; s < kShards; ++s) EXPECT_EQ(hits[s].load(), 1);
}

TEST(WorkerPool, InlineModeMatchesPooledMode) {
  const auto run = [](unsigned threads) {
    exec::WorkerPool pool(threads);
    std::vector<std::uint64_t> out(257);
    pool.parallel_for_shards(out.size(), [&](std::size_t s) {
      out[s] = exec::shard_rng(99, s).next();
    });
    return out;
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(WorkerPool, ZeroShardsIsANoop) {
  exec::WorkerPool pool(4);
  bool ran = false;
  pool.parallel_for_shards(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(WorkerPool, SingleShardRunsInline) {
  exec::WorkerPool pool(4);
  int calls = 0;
  pool.parallel_for_shards(1, [&](std::size_t s) {
    EXPECT_EQ(s, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(WorkerPool, ReusableAcrossJobs) {
  exec::WorkerPool pool(4);
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for_shards(100, [&](std::size_t s) { sum += s; });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(WorkerPool, PropagatesTheFirstException) {
  exec::WorkerPool pool(4);
  EXPECT_THROW(pool.parallel_for_shards(
                   64,
                   [](std::size_t s) {
                     if (s == 13) throw std::runtime_error("shard 13");
                   }),
               std::runtime_error);
  // The pool must still be usable after a throwing job.
  std::atomic<int> ok{0};
  pool.parallel_for_shards(8, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 8);
}

TEST(ParallelMap, PreservesItemOrder) {
  exec::WorkerPool pool(4);
  std::vector<int> items(500);
  std::iota(items.begin(), items.end(), 0);
  const auto doubled = exec::parallel_map(
      pool, items, [](int item, std::size_t) { return item * 2; });
  ASSERT_EQ(doubled.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    EXPECT_EQ(doubled[i], static_cast<int>(i) * 2);
}

TEST(ParallelMap, IndexMatchesItemPosition) {
  exec::WorkerPool pool(4);
  const std::vector<std::string> items = {"a", "b", "c", "d"};
  const auto tagged = exec::parallel_map(
      pool, items,
      [](const std::string& item, std::size_t i) { return item + std::to_string(i); });
  EXPECT_EQ(tagged, (std::vector<std::string>{"a0", "b1", "c2", "d3"}));
}

TEST(ParallelMap, MutableOverloadSeesMutations) {
  exec::WorkerPool pool(4);
  std::vector<int> items(100, 1);
  const auto out = exec::parallel_map(pool, items, [](int& item, std::size_t) {
    item += 1;
    return item;
  });
  for (const int v : out) EXPECT_EQ(v, 2);
  for (const int v : items) EXPECT_EQ(v, 2);
}

// The core contract, end to end: identical results for 1 vs N threads and
// for repeated N-thread runs, with per-shard rng streams.
TEST(Determinism, ShardedRngWorkloadIsThreadCountInvariant) {
  const auto run = [](unsigned threads) {
    exec::WorkerPool pool(threads);
    constexpr std::size_t kShards = 64;
    std::vector<std::vector<std::uint64_t>> partials(kShards);
    pool.parallel_for_shards(kShards, [&](std::size_t s) {
      util::Rng rng = exec::shard_rng(0xFEEDULL, s);
      for (int i = 0; i < 100; ++i) partials[s].push_back(rng.next());
    });
    std::vector<std::uint64_t> merged;
    for (const auto& p : partials) merged.insert(merged.end(), p.begin(), p.end());
    return merged;
  };
  const auto serial = run(1);
  const auto parallel_a = run(8);
  const auto parallel_b = run(8);
  EXPECT_EQ(serial, parallel_a);
  EXPECT_EQ(parallel_a, parallel_b);
}

// --- Scratch arenas (DESIGN.md §11) ------------------------------------------

TEST(ScratchArena, LeasesReuseBuffersInStackOrder) {
  exec::ScratchArena arena;
  std::vector<std::uint8_t>* first = nullptr;
  {
    exec::BufferLease lease(arena);
    first = lease.get();
    lease->assign(64, 0xAB);
  }
  EXPECT_EQ(arena.created(), 1u);
  EXPECT_EQ(arena.available(), 1u);
  {
    exec::BufferLease lease(arena);
    // Same buffer comes back, cleared but with its capacity retained.
    EXPECT_EQ(lease.get(), first);
    EXPECT_TRUE(lease->empty());
    EXPECT_GE(lease->capacity(), 64u);
  }
  EXPECT_EQ(arena.created(), 1u);
}

TEST(ScratchArena, NestedLeasesGetDistinctBuffers) {
  // Reentrancy: a resolver service handling an inline-delivered query takes
  // a lease while the querying client still holds one from the same thread's
  // arena. The two must never alias.
  exec::ScratchArena arena;
  exec::BufferLease outer(arena);
  outer->assign(16, 0x11);
  {
    exec::BufferLease inner(arena);
    EXPECT_NE(inner.get(), outer.get());
    inner->assign(16, 0x22);
    EXPECT_EQ(outer->front(), 0x11);
  }
  EXPECT_EQ(outer->front(), 0x11);
  EXPECT_EQ(arena.created(), 2u);
}

TEST(ScratchArena, ThreadLocalArenasAreDistinctPerWorker) {
  exec::WorkerPool pool(4);
  constexpr std::size_t kShards = 16;
  std::vector<exec::ScratchArena*> arenas(kShards, nullptr);
  pool.parallel_for_shards(kShards,
                           [&](std::size_t s) { arenas[s] = &exec::thread_arena(); });
  // Every shard saw *an* arena, and the distinct set is bounded by the
  // worker count (same worker => same arena, different workers => different).
  std::set<exec::ScratchArena*> distinct;
  for (auto* arena : arenas) {
    ASSERT_NE(arena, nullptr);
    distinct.insert(arena);
  }
  EXPECT_GE(distinct.size(), 1u);
  EXPECT_LE(distinct.size(), 4u + 1u);  // workers, +1 if the caller ran shards
}

TEST(WorkerPoolMetrics, PreCancelledJobExecutesNothingAndStealsNothing) {
  // exec.steals counts shards a worker actually RAN on behalf of another
  // thread. A job whose token tripped before submission only hands out
  // claim-and-skip bookkeeping — the drain loop must retire every shard
  // without ever counting one as stolen work.
  auto& registry = obs::MetricsRegistry::global();
  registry.reset();
  exec::WorkerPool pool(4);
  exec::CancelToken cancel;
  cancel.cancel();
  std::atomic<std::uint64_t> calls{0};
  const std::size_t executed = pool.parallel_for_shards(
      64, [&](std::size_t) { calls.fetch_add(1); }, &cancel);
  EXPECT_EQ(executed, 0u);
  EXPECT_EQ(calls.load(), 0u);
  EXPECT_EQ(registry.counter("exec.steals", true).value(), 0u);
}

TEST(WorkerPoolMetrics, QueuePeakSamplesDepthBeforeTheFirstClaim) {
  // Depth is sampled before each claim, so a fresh job of N shards peaks at
  // N — not N-1, which a post-claim sample would report.
  auto& registry = obs::MetricsRegistry::global();
  registry.reset();
  exec::WorkerPool pool(2);
  pool.parallel_for_shards(8, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  EXPECT_EQ(registry.gauge("exec.queue_peak", true).value(), 8);
}

TEST(ScratchArena, WorkerTasksRunAllocationFreeAfterWarmup) {
  // The fan-out contract: after one warmup pass fills each worker's arena,
  // repeated leases inside pool tasks create no further buffers.
  exec::WorkerPool pool(4);
  constexpr std::size_t kShards = 32;
  const auto lease_once = [](std::size_t) {
    exec::BufferLease lease;
    lease->resize(512);
  };
  pool.parallel_for_shards(kShards, lease_once);  // warmup
  std::vector<std::size_t> created(kShards, 0);
  pool.parallel_for_shards(kShards, [&](std::size_t s) {
    const std::size_t before = exec::thread_arena().created();
    exec::BufferLease lease;
    lease->resize(512);
    created[s] = exec::thread_arena().created() - before;
  });
  for (const std::size_t c : created) EXPECT_EQ(c, 0u);
}

}  // namespace
}  // namespace encdns
