// Unit tests for exec::CreditWindow, the bounded in-flight window joining
// the scan engine's transmit and receive loops (DESIGN.md §14). The window
// is flow control only — correctness rests on two invariants the engine
// asserts after every sweep: no credit leaks (in_flight returns to zero)
// and no double releases. These tests pin the primitive itself; the
// engine-level invariants (including the cancelled-with-queued-responses
// path) are covered in tests/scan/test_scan.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "exec/cancel.hpp"
#include "exec/window.hpp"
#include "fault/fault.hpp"
#include "scan/engine.hpp"
#include "scan/permutation.hpp"
#include "scan/space.hpp"
#include "world/world.hpp"

namespace encdns::exec {
namespace {

TEST(CreditWindow, AcquireReleaseRoundTrip) {
  CreditWindow window(2);
  EXPECT_EQ(window.capacity(), 2u);
  EXPECT_EQ(window.in_flight(), 0u);
  EXPECT_TRUE(window.try_acquire());
  EXPECT_TRUE(window.try_acquire());
  EXPECT_EQ(window.in_flight(), 2u);
  window.release();
  EXPECT_EQ(window.in_flight(), 1u);
  window.release();
  EXPECT_EQ(window.in_flight(), 0u);
  EXPECT_EQ(window.double_releases(), 0u);
}

TEST(CreditWindow, RefusesWhenFull) {
  CreditWindow window(1);
  EXPECT_TRUE(window.try_acquire());
  EXPECT_FALSE(window.try_acquire());
  EXPECT_EQ(window.in_flight(), 1u);
  window.release();
  EXPECT_TRUE(window.try_acquire());
}

TEST(CreditWindow, CapacityClampedToOne) {
  // A zero-capacity window would deadlock the transmit loop on its first
  // probe; the constructor clamps instead of trusting the caller.
  CreditWindow window(0);
  EXPECT_EQ(window.capacity(), 1u);
  EXPECT_TRUE(window.try_acquire());
  EXPECT_FALSE(window.try_acquire());
}

TEST(CreditWindow, TracksHighWater) {
  CreditWindow window(8);
  EXPECT_EQ(window.high_water(), 0u);
  ASSERT_TRUE(window.try_acquire());
  ASSERT_TRUE(window.try_acquire());
  ASSERT_TRUE(window.try_acquire());
  EXPECT_EQ(window.high_water(), 3u);
  window.release();
  window.release();
  ASSERT_TRUE(window.try_acquire());
  // High water is a maximum, not the current depth.
  EXPECT_EQ(window.high_water(), 3u);
  EXPECT_EQ(window.in_flight(), 2u);
}

TEST(CreditWindow, CountsDoubleReleasesWithoutUnderflow) {
  CreditWindow window(4);
  ASSERT_TRUE(window.try_acquire());
  window.release();
  EXPECT_EQ(window.in_flight(), 0u);
  // Releasing a credit nobody holds is the bug the engine's accounting
  // exists to catch: it is counted, and in_flight never wraps.
  window.release();
  window.release();
  EXPECT_EQ(window.double_releases(), 2u);
  EXPECT_EQ(window.in_flight(), 0u);
  // The window still works normally afterwards.
  EXPECT_TRUE(window.try_acquire());
  EXPECT_EQ(window.in_flight(), 1u);
}

// Regression for the deadline × in-flight interaction (sits with the other
// cancellation tests): when a sweep is cancelled while probes are still
// queued in the receive ring, every queued response's credit must be
// released exactly once — the drain must neither leak credits (a probe
// cancelled with its response in flight) nor double-release (a duplicate or
// stale ghost, which never held a credit, being "released" too).
TEST(CreditWindow, EngineCancelDrainReleasesEveryCreditExactlyOnce) {
  const auto cancelled_sweep = [] {
    world::WorldConfig world_config;
    // Faults on, so the receive ring holds a mix of credited responses and
    // credit-less duplicates/stale ghosts at the moment the cut lands.
    world_config.fault_profile = fault::FaultProfile::canonical();
    world::World world(world_config);
    const auto& all = world.scan_prefixes();
    scan::ScanSpace space(
        std::vector<util::Cidr>(all.begin(), all.begin() + 2));
    scan::CyclicPermutation permutation(space.size(), 41);
    CancelToken cancel;
    scan::EngineConfig config;
    config.seed = 4242;
    config.thread_count = 1;  // the per-shard cut point is deterministic
    config.cancel = &cancel;
    config.cancel_after_tx = 1000;  // trip mid-shard, ring non-empty
    scan::ScanEngine engine(world, config);
    return engine.sweep(space, permutation, {world.make_clean_vantage("US")},
                        util::Date{2019, 2, 1});
  };
  const world::World probe_world;
  const auto& prefixes = probe_world.scan_prefixes();
  const scan::ScanSpace full(
      std::vector<util::Cidr>(prefixes.begin(), prefixes.begin() + 2));
  const scan::SweepResult result = cancelled_sweep();
  EXPECT_GT(result.tally.probed, 0u);
  EXPECT_LT(result.tally.probed, full.size());  // genuinely cut short
  EXPECT_EQ(result.tally.credit_leaks, 0u);
  EXPECT_EQ(result.tally.double_releases, 0u);
  // And the cut itself is deterministic at one thread: a rerun produces the
  // identical truncated tally.
  const scan::SweepResult again = cancelled_sweep();
  EXPECT_EQ(result.tally.probed, again.tally.probed);
  EXPECT_EQ(result.tally.transmitted, again.tally.transmitted);
  EXPECT_EQ(result.open_hosts, again.open_hosts);
}

}  // namespace
}  // namespace encdns::exec
