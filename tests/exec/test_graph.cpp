// TaskGraph determinism contract (DESIGN.md §15): scheduling perturbations
// change wall time, never statuses, merge order, or outputs; cycles fail
// closed before any body runs; failures cascade exactly along edges.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.hpp"
#include "exec/graph.hpp"
#include "util/rng.hpp"

namespace encdns {
namespace {

using exec::TaskGraph;
using Status = exec::TaskGraph::NodeStatus;

TEST(TaskGraph, DiamondMergesInDeclarationOrderEvenWhenLaterNodesFinishFirst) {
  TaskGraph graph;
  std::vector<std::uint64_t> out(4, 0);
  const auto a = graph.add("a", [&] { out[0] = 1; });
  // b finishes long after c: merge order must still be declaration order.
  const auto b = graph.add(
      "b",
      [&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        out[1] = out[0] + 10;
      },
      {}, {a});
  const auto c = graph.add("c", [&] { out[2] = out[0] + 100; }, {}, {a});
  const auto d = graph.add("d", [&] { out[3] = out[1] + out[2]; }, {}, {b, c});
  graph.run();
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 11, 101, 112}));
  for (const auto id : {a, b, c, d}) EXPECT_EQ(graph.status(id), Status::kDone);
  EXPECT_EQ(graph.merge_order(),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(TaskGraph, CycleFailsClosedBeforeAnyBodyStarts) {
  TaskGraph graph;
  std::atomic<bool> ran{false};
  const auto a = graph.add("a", [&] { ran = true; });
  const auto b = graph.add("b", [&] { ran = true; }, {}, {a});
  const auto c = graph.add("c", [&] { ran = true; }, {}, {b});
  graph.add_edge(c, a);  // closes the cycle
  EXPECT_THROW(graph.run(), exec::GraphError);
  EXPECT_FALSE(ran.load());
  for (const auto id : {a, b, c})
    EXPECT_EQ(graph.status(id), Status::kPending);
}

TEST(TaskGraph, MalformedEdgesAndReuseAreRejected) {
  TaskGraph graph;
  const auto a = graph.add("a", [] {});
  EXPECT_THROW(graph.add_edge(a, a), exec::GraphError);
  EXPECT_THROW(graph.add_edge(a, 99), exec::GraphError);
  EXPECT_THROW(graph.add("b", [] {}, {}, {7}), exec::GraphError);
  graph.run();
  EXPECT_THROW(graph.run(), exec::GraphError);
  EXPECT_THROW(graph.add("late", [] {}), exec::GraphError);
  EXPECT_THROW(graph.add_edge(a, a), exec::GraphError);
}

TEST(TaskGraph, FailedBodySkipsItsMergeAndTransitiveDependents) {
  TaskGraph graph;
  std::atomic<bool> bad_merge_ran{false};
  const auto a = graph.add("a", [] {});
  const auto b = graph.add(
      "b", [] { throw std::runtime_error("b exploded"); },
      [&] { bad_merge_ran = true; }, {a});
  const auto c = graph.add("c", [] {}, {}, {b});
  const auto d = graph.add("d", [] {}, {}, {c});
  const auto e = graph.add("e", [] {});  // independent: must still complete
  try {
    graph.run();
    FAIL() << "run() must rethrow the failed body's exception";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "b exploded");
  }
  EXPECT_FALSE(bad_merge_ran.load());
  EXPECT_EQ(graph.status(a), Status::kDone);
  EXPECT_EQ(graph.status(b), Status::kFailed);
  EXPECT_EQ(graph.status(c), Status::kSkipped);
  EXPECT_EQ(graph.status(d), Status::kSkipped);
  EXPECT_EQ(graph.status(e), Status::kDone);
  EXPECT_EQ(graph.merge_order(), (std::vector<std::string>{"a", "e"}));
}

TEST(TaskGraph, MergeFailureSurfacesButDoesNotSkipDependents) {
  // Dependents are released at BODY completion — a merge failure is a
  // publication problem, not a data problem, so downstream bodies still run.
  TaskGraph graph;
  std::atomic<bool> dependent_ran{false};
  const auto a = graph.add(
      "a", [] {}, [] { throw std::runtime_error("merge exploded"); });
  const auto b = graph.add("b", [&] { dependent_ran = true; }, {}, {a});
  try {
    graph.run();
    FAIL() << "run() must rethrow the failed merge's exception";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "merge exploded");
  }
  EXPECT_TRUE(dependent_ran.load());
  EXPECT_EQ(graph.status(a), Status::kFailed);
  EXPECT_EQ(graph.status(b), Status::kDone);
}

// ---------------------------------------------------------------------------
// Property test: random DAGs with throwing nodes settle identically under
// perturbed schedules and shared worker pools of 1/2/8 threads. The graph's
// whole reason to exist is that scheduling shapes wall time, never results.

struct DagOutcome {
  std::vector<Status> statuses;
  std::vector<std::string> merge_order;
  std::vector<std::uint64_t> outputs;
  std::string error;

  bool operator==(const DagOutcome& other) const {
    return statuses == other.statuses && merge_order == other.merge_order &&
           outputs == other.outputs && error == other.error;
  }
};

constexpr std::size_t kNodes = 12;
constexpr std::uint64_t kUnset = 0xDEADDEADDEADDEADULL;

// Build and run one random DAG. The structure (edges, which nodes throw) is
// a pure function of `seed`; `perturbation` only shifts per-node sleeps, and
// `pool_threads` only changes how each body's shard fan-out is scheduled.
DagOutcome run_random_dag(std::uint64_t seed, std::uint64_t perturbation,
                          unsigned pool_threads) {
  util::Rng structure(util::mix64(seed));
  exec::WorkerPool pool(pool_threads);
  TaskGraph graph;
  std::vector<std::uint64_t> outputs(kNodes, kUnset);
  std::vector<std::vector<TaskGraph::NodeId>> deps(kNodes);
  std::vector<bool> throws(kNodes, false);

  for (std::size_t i = 0; i < kNodes; ++i) {
    for (std::size_t j = 0; j < i; ++j)
      if (structure.chance(0.25)) deps[i].push_back(j);
    throws[i] = structure.chance(0.15);
    const std::string name = "n" + std::to_string(i);
    graph.add(
        name,
        [&, i, name] {
          // Jitter derived from the perturbation: varies the schedule
          // between repetitions without touching any computed value.
          const auto jitter =
              exec::shard_rng(perturbation, i).below(3000);
          std::this_thread::sleep_for(std::chrono::microseconds(jitter));
          if (throws[i]) throw std::runtime_error(name);
          // Deterministic shard fan-out over the shared pool, folding the
          // completed dependencies' outputs in canonical order.
          std::uint64_t acc = util::mix64(seed ^ i);
          for (const auto dep : deps[i]) acc = util::mix64(acc ^ outputs[dep]);
          std::vector<std::uint64_t> shard_out(8, 0);
          pool.parallel_for_shards(shard_out.size(), [&](std::size_t s) {
            shard_out[s] = exec::shard_rng(acc, s).next();
          });
          for (const auto v : shard_out) acc ^= v;
          outputs[i] = acc;
        },
        {}, deps[i]);
  }

  DagOutcome outcome;
  try {
    graph.run();
  } catch (const std::runtime_error& err) {
    outcome.error = err.what();
  }
  for (std::size_t i = 0; i < kNodes; ++i)
    outcome.statuses.push_back(graph.status(i));
  outcome.merge_order = graph.merge_order();
  outcome.outputs = std::move(outputs);

  // Structural invariants that must hold for every schedule.
  for (std::size_t i = 0; i < kNodes; ++i) {
    switch (outcome.statuses[i]) {
      case Status::kDone:
        EXPECT_NE(outcome.outputs[i], kUnset) << "done node " << i;
        break;
      case Status::kFailed:
        EXPECT_TRUE(throws[i]) << "only throwing nodes may fail";
        break;
      case Status::kSkipped: {
        bool bad_dep = false;
        for (const auto dep : deps[i])
          bad_dep = bad_dep || outcome.statuses[dep] == Status::kFailed ||
                    outcome.statuses[dep] == Status::kSkipped;
        EXPECT_TRUE(bad_dep) << "skipped node " << i << " needs a bad dep";
        EXPECT_EQ(outcome.outputs[i], kUnset);
        break;
      }
      default:
        ADD_FAILURE() << "node " << i << " did not settle";
    }
  }
  // run() rethrows the first failure in declaration order.
  for (std::size_t i = 0; i < kNodes; ++i) {
    if (outcome.statuses[i] == Status::kFailed) {
      EXPECT_EQ(outcome.error, "n" + std::to_string(i));
      break;
    }
  }
  // Merge order is a subsequence of declaration order: strictly increasing
  // node indices.
  std::size_t last = 0;
  for (const auto& name : outcome.merge_order) {
    const auto idx = static_cast<std::size_t>(std::stoul(name.substr(1)));
    EXPECT_TRUE(outcome.merge_order.front() == name || idx > last);
    last = idx;
  }
  return outcome;
}

TEST(TaskGraph, RandomDagsSettleIdenticallyUnderPerturbedSchedules) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const DagOutcome baseline = run_random_dag(seed, /*perturbation=*/0,
                                               /*pool_threads=*/2);
    std::uint64_t perturbation = 1;
    for (const unsigned pool_threads : {1u, 2u, 8u}) {
      const DagOutcome outcome =
          run_random_dag(seed, perturbation++, pool_threads);
      EXPECT_EQ(outcome, baseline)
          << "seed " << seed << " pool " << pool_threads;
    }
  }
}

}  // namespace
}  // namespace encdns
