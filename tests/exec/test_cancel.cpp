// Cooperative cancellation (DESIGN.md §13): a CancelToken is checked at
// shard pickup only, so the executed shards always form a prefix of the
// canonical shard order and a sim-budget abort is bit-identical at any
// thread count.
#include "exec/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "exec/executor.hpp"
#include "sim/duration.hpp"

namespace encdns::exec {
namespace {

TEST(Cancel, PreCancelledTokenRunsNoShards) {
  CancelToken token;
  token.cancel("test");
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  const std::size_t executed = pool.parallel_for_shards(
      32, [&](std::size_t) { ran.fetch_add(1); }, &token);
  EXPECT_EQ(executed, 0u);
  EXPECT_EQ(ran.load(), 0);
  EXPECT_STREQ(token.reason(), "test");
}

TEST(Cancel, NullTokenRunsEveryShard) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  const std::size_t executed = pool.parallel_for_shards(
      32, [&](std::size_t) { ran.fetch_add(1); }, nullptr);
  EXPECT_EQ(executed, 32u);
  EXPECT_EQ(ran.load(), 32);
}

TEST(Cancel, InlineCancellationCutsExactlyAfterTheTrippingShard) {
  CancelToken token;
  WorkerPool pool(1);  // inline mode: shards run in index order
  std::vector<int> order;
  const std::size_t executed = pool.parallel_for_shards(
      64,
      [&](std::size_t shard) {
        order.push_back(static_cast<int>(shard));
        if (shard == 5) token.cancel();
      },
      &token);
  EXPECT_EQ(executed, 6u);  // shards 0..5 ran; 6 was never picked up
  ASSERT_EQ(order.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Cancel, ExecutedShardsFormPrefixUnderParallelCancellation) {
  CancelToken token;
  WorkerPool pool(4);
  std::vector<std::atomic<bool>> ran(256);
  const std::size_t executed = pool.parallel_for_shards(
      256,
      [&](std::size_t shard) {
        ran[shard].store(true);
        if (shard == 17) token.cancel();
      },
      &token);
  EXPECT_GE(executed, 18u);
  EXPECT_TRUE(token.cancelled());
  // The claim order is the index order, so whatever k came out, the executed
  // set must be exactly [0, k) — no holes, no stragglers beyond the prefix.
  for (std::size_t shard = 0; shard < 256; ++shard)
    EXPECT_EQ(ran[shard].load(), shard < executed) << "shard " << shard;
}

/// The block-merge pattern every phase uses: run a block, account its sim
/// time serially, check the token before the next block. With a sim budget
/// the cut block index is a pure function of the workload.
std::size_t run_blocked_workload(unsigned threads) {
  CancelToken token;
  token.set_sim_budget(sim::Millis{250.0});
  WorkerPool pool(threads);
  std::size_t total = 0;
  for (int block = 0; block < 10; ++block) {
    const std::size_t executed = pool.parallel_for_shards(
        10, [&](std::size_t) {}, &token);
    total += executed;
    if (executed < 10) break;
    token.spend_sim(sim::Millis{100.0});  // serial merge point
    if (token.cancelled()) break;
  }
  return total;
}

TEST(Cancel, SimBudgetCutIsThreadCountInvariant) {
  // 100 ms per block against a 250 ms budget: spent reaches 300 >= 250 after
  // the third block, at every thread count.
  const std::size_t at_one = run_blocked_workload(1);
  EXPECT_EQ(at_one, 30u);
  EXPECT_EQ(run_blocked_workload(2), at_one);
  EXPECT_EQ(run_blocked_workload(8), at_one);
}

TEST(Cancel, SimBudgetReportsItsReason) {
  CancelToken token;
  token.set_sim_budget(sim::Millis{10.0});
  token.spend_sim(sim::Millis{10.0});
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "sim-budget");
}

TEST(Cancel, ExpiredWallDeadlineTrips) {
  CancelToken token;
  token.set_wall_budget(0.0);
  EXPECT_TRUE(token.cancelled());
  EXPECT_STREQ(token.reason(), "wall-deadline");
}

TEST(Cancel, ParentCancellationPropagates) {
  CancelToken parent, child;
  child.set_parent(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.cancel("deadline");
  EXPECT_TRUE(child.cancelled());
  EXPECT_STREQ(child.reason(), "parent");
}

TEST(Cancel, ZeroSpendNeverTripsAZeroBudgetlessToken) {
  CancelToken token;
  token.spend_sim(sim::Millis{1e9});  // no budget set: spending is inert
  EXPECT_FALSE(token.cancelled());
  EXPECT_STREQ(token.reason(), "");
}

}  // namespace
}  // namespace encdns::exec
