// Golden-file regression harness: every paper table and figure has a
// checked-in JSON snapshot under tests/golden/data/ (one file per experiment
// id, written by `encdns_study --golden-dir` / tools/regen_golden.sh). Each
// test re-runs the experiment against a fresh quick-scale Study with faults
// off and diffs the JSON line by line — the snapshot format keeps one table
// row per line, so a mismatch report points at the exact row and cell that
// drifted. Any intentional change to an experiment's output must come with a
// regenerated snapshot, which makes the diff reviewable in the PR.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiments.hpp"
#include "core/study.hpp"

#ifndef ENCDNS_GOLDEN_DIR
#error "ENCDNS_GOLDEN_DIR must point at the checked-in snapshot directory"
#endif

namespace encdns::core {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

class GoldenTest : public ::testing::Test {
 protected:
  // One Study shared by all golden tests. Faults are forced off before
  // construction (World reads ENCDNS_FAULTS in its ctor) to match the
  // environment --golden-dir pins when writing snapshots. The study is then
  // warmed by running every experiment once in registry order — the same
  // sequence --golden-dir uses — because the shared proxy platform's rng is
  // stateful: a phase's results depend on which phases ran before it, so a
  // test process that jumped straight to, say, fig8 would measure
  // performance against a colder platform than the corpus did.
  static Study& study() {
    static Study* instance = [] {
      setenv("ENCDNS_FAULTS", "off", 1);
      StudyConfig config = StudyConfig::quick();
      config.world.seed = 2019;
      auto* fresh = new Study(config);
      for (const auto& experiment : all_experiments())
        (void)experiment.run(*fresh);
      return fresh;
    }();
    return *instance;
  }

  static void check(const std::string& id) {
    const Experiment* experiment = nullptr;
    for (const auto& candidate : all_experiments())
      if (candidate.id == id) experiment = &candidate;
    ASSERT_NE(experiment, nullptr) << "no experiment registered as " << id;

    const auto path =
        std::filesystem::path(ENCDNS_GOLDEN_DIR) / (id + ".json");
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing snapshot " << path
        << " — run tools/regen_golden.sh and commit the result";
    std::stringstream want;
    want << in.rdbuf();

    const std::string got = experiment->run(study()).to_json();
    if (got == want.str()) return;

    const auto got_lines = split_lines(got);
    const auto want_lines = split_lines(want.str());
    std::ostringstream diff;
    diff << id << ": output diverges from " << path << "\n";
    const std::size_t lines =
        std::max(got_lines.size(), want_lines.size());
    std::size_t shown = 0;
    for (std::size_t i = 0; i < lines && shown < 12; ++i) {
      const std::string* want_line =
          i < want_lines.size() ? &want_lines[i] : nullptr;
      const std::string* got_line =
          i < got_lines.size() ? &got_lines[i] : nullptr;
      if (want_line && got_line && *want_line == *got_line) continue;
      ++shown;
      diff << "  line " << i + 1 << ":\n";
      diff << "    golden: " << (want_line ? *want_line : "<absent>") << "\n";
      diff << "    actual: " << (got_line ? *got_line : "<absent>") << "\n";
    }
    ADD_FAILURE() << diff.str()
                  << "if the change is intentional, regenerate with "
                     "tools/regen_golden.sh";
  }
};

TEST_F(GoldenTest, CorpusCoversEveryExperiment) {
  // 8 tables + 13 figures + the three auxiliary experiments (doh-discovery,
  // doh-scan, local-probe): every registered experiment must have a
  // snapshot, and no stale snapshot may linger after an experiment is
  // renamed or removed.
  std::set<std::string> ids;
  for (const auto& experiment : all_experiments()) {
    ids.insert(experiment.id);
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(ENCDNS_GOLDEN_DIR) / (experiment.id + ".json")))
        << experiment.id << " has no golden snapshot";
  }
  for (const auto& entry :
       std::filesystem::directory_iterator(ENCDNS_GOLDEN_DIR)) {
    const auto stem = entry.path().stem().string();
    EXPECT_TRUE(ids.contains(stem))
        << "stale snapshot " << entry.path() << " (no such experiment)";
  }
}

TEST_F(GoldenTest, Table1) { check("table1"); }
TEST_F(GoldenTest, Table2) { check("table2"); }
TEST_F(GoldenTest, Table3) { check("table3"); }
TEST_F(GoldenTest, Table4) { check("table4"); }
TEST_F(GoldenTest, Table5) { check("table5"); }
TEST_F(GoldenTest, Table6) { check("table6"); }
TEST_F(GoldenTest, Table7) { check("table7"); }
TEST_F(GoldenTest, Table8) { check("table8"); }
TEST_F(GoldenTest, Figure1) { check("fig1"); }
TEST_F(GoldenTest, Figure2) { check("fig2"); }
TEST_F(GoldenTest, Figure3) { check("fig3"); }
TEST_F(GoldenTest, Figure4) { check("fig4"); }
TEST_F(GoldenTest, Figure5) { check("fig5"); }
TEST_F(GoldenTest, Figure6) { check("fig6"); }
TEST_F(GoldenTest, Figure7) { check("fig7"); }
TEST_F(GoldenTest, Figure8) { check("fig8"); }
TEST_F(GoldenTest, Figure9) { check("fig9"); }
TEST_F(GoldenTest, Figure10) { check("fig10"); }
TEST_F(GoldenTest, Figure11) { check("fig11"); }
TEST_F(GoldenTest, Figure12) { check("fig12"); }
TEST_F(GoldenTest, Figure13) { check("fig13"); }
TEST_F(GoldenTest, DohDiscovery) { check("doh-discovery"); }
TEST_F(GoldenTest, DohScan) { check("doh-scan"); }
TEST_F(GoldenTest, LocalProbe) { check("local-probe"); }
TEST_F(GoldenTest, Figure11Trend) { check("fig11-trend"); }

}  // namespace
}  // namespace encdns::core
