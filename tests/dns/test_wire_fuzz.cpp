// Property and fuzz tests for the DNS wire codec.
//
// Two families:
//  - Round-trip properties: encode a randomly generated message (names,
//    labels, every rdata variant, both with and without compression) and
//    decode it back; the result must be semantically identical.
//  - Adversarial decoding: hand-picked malformed buffers plus thousands of
//    seeded random mutations of valid messages (truncation, bit flips, byte
//    garbling). Every such buffer must decode to either a valid Message or a
//    clean nullopt — never a crash, hang, or sanitizer report.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dns/message.hpp"
#include "dns/types.hpp"
#include "dns/wire.hpp"
#include "util/ipv4.hpp"
#include "util/rng.hpp"

#include "fuzz_corpus.hpp"

namespace encdns::dns {
namespace {

// ---------------------------------------------------------------------------
// Round-trip properties.

TEST(WireFuzz, RoundTripCompressed) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    util::Rng rng(seed);
    const Message original = fuzz::random_message(rng);
    const auto wire = original.encode(/*compress=*/true);
    const auto decoded = Message::decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    fuzz::expect_equal(original, *decoded, seed);
  }
}

TEST(WireFuzz, RoundTripUncompressed) {
  for (std::uint64_t seed = 1000; seed <= 1200; ++seed) {
    util::Rng rng(seed);
    const Message original = fuzz::random_message(rng);
    const auto wire = original.encode(/*compress=*/false);
    const auto decoded = Message::decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    fuzz::expect_equal(original, *decoded, seed);
  }
}

TEST(WireFuzz, CompressionNeverLarger) {
  for (std::uint64_t seed = 2000; seed <= 2100; ++seed) {
    util::Rng rng(seed);
    const Message msg = fuzz::random_message(rng);
    EXPECT_LE(msg.encode(true).size(), msg.encode(false).size())
        << "seed " << seed;
  }
}

TEST(WireFuzz, NameRoundTripThroughLabels) {
  for (std::uint64_t seed = 3000; seed <= 3300; ++seed) {
    util::Rng rng(seed);
    const Name name = fuzz::random_name(rng);
    const auto reparsed = Name::from_labels(
        std::vector<std::string>(name.labels()));
    ASSERT_TRUE(reparsed.has_value()) << "seed " << seed;
    EXPECT_EQ(name, *reparsed) << "seed " << seed;
    EXPECT_EQ(name.canonical(), reparsed->canonical()) << "seed " << seed;
  }
}

TEST(WireFuzz, StreamFramingRoundTrip) {
  for (std::uint64_t seed = 4000; seed <= 4100; ++seed) {
    util::Rng rng(seed);
    const auto wire = fuzz::random_message(rng).encode();
    const auto framed = frame_stream(wire);
    ASSERT_EQ(framed.size(), wire.size() + 2) << "seed " << seed;
    const auto unframed = unframe_stream(framed);
    ASSERT_TRUE(unframed.has_value()) << "seed " << seed;
    EXPECT_EQ(*unframed, wire) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Adversarial decoding: corrupted input must yield nullopt or a valid
// message, never undefined behaviour. Running under the sanitizer passes
// (tools/check.sh) turns "no crash" into a strong property.

TEST(WireFuzz, HandPickedMalformedBuffers) {
  const auto corpus = fuzz::malformed_corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto decoded = Message::decode(corpus[i]);
    EXPECT_FALSE(decoded.has_value()) << "corpus[" << i << "]";
  }
}

TEST(WireFuzz, TruncationNeverCrashes) {
  // Every prefix of a valid message must decode cleanly or fail cleanly.
  util::Rng rng(77);
  for (int round = 0; round < 40; ++round) {
    const auto wire = fuzz::random_message(rng).encode();
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      const std::vector<std::uint8_t> prefix(wire.begin(),
                                             wire.begin() + cut);
      (void)Message::decode(prefix);  // must not crash; result unspecified
    }
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(78);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.range(0, 300)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)Message::decode(junk);
  }
}

TEST(WireFuzz, BitFlipsNeverCrash) {
  // Mutate valid messages: flip bits, garble bytes, splice lengths. The
  // decoder must stay total — valid result or nullopt.
  util::Rng rng(79);
  for (int round = 0; round < 400; ++round) {
    auto wire = fuzz::random_message(rng).encode();
    if (wire.empty()) continue;
    const auto mutations = static_cast<std::size_t>(rng.range(1, 8));
    for (std::size_t m = 0; m < mutations; ++m) {
      const auto at = rng.below(wire.size());
      switch (rng.below(3)) {
        case 0:
          wire[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
          break;
        case 1:
          wire[at] = static_cast<std::uint8_t>(rng.below(256));
          break;
        default:
          wire[at] = 0xc0;  // forge a compression pointer lead byte
          break;
      }
    }
    (void)Message::decode(wire);
  }
}

TEST(WireFuzz, UnframeRejectsBadPrefixes) {
  EXPECT_FALSE(unframe_stream({}).has_value());
  EXPECT_FALSE(unframe_stream(std::vector<std::uint8_t>{0x00}).has_value());
  // Length prefix disagreeing with the payload.
  EXPECT_FALSE(
      unframe_stream(std::vector<std::uint8_t>{0x00, 0x05, 0xaa}).has_value());
  EXPECT_FALSE(unframe_stream(std::vector<std::uint8_t>{0x00, 0x00, 0xaa})
                   .has_value());
}

TEST(WireFuzz, ReaderLatchesErrorsAndReturnsZeroes) {
  const std::vector<std::uint8_t> two = {0xab, 0xcd};
  WireReader reader(two);
  EXPECT_EQ(reader.u16(), 0xabcdu);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.u32(), 0u);  // past the end: zero + latched error
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.u8(), 0u);  // stays failed
  EXPECT_FALSE(reader.ok());
  reader.seek(1u << 20);  // out-of-range seek keeps the latch set
  EXPECT_FALSE(reader.ok());
}

}  // namespace
}  // namespace encdns::dns
