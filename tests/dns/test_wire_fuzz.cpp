// Property and fuzz tests for the DNS wire codec.
//
// Two families:
//  - Round-trip properties: encode a randomly generated message (names,
//    labels, every rdata variant, both with and without compression) and
//    decode it back; the result must be semantically identical.
//  - Adversarial decoding: hand-picked malformed buffers plus thousands of
//    seeded random mutations of valid messages (truncation, bit flips, byte
//    garbling). Every such buffer must decode to either a valid Message or a
//    clean nullopt — never a crash, hang, or sanitizer report.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dns/message.hpp"
#include "dns/types.hpp"
#include "dns/wire.hpp"
#include "util/ipv4.hpp"
#include "util/rng.hpp"

namespace encdns::dns {
namespace {

// ---------------------------------------------------------------------------
// Random generators. Everything flows from a util::Rng so failures reproduce
// from the seed printed in the assertion message.

std::string random_label(util::Rng& rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJ0123456789-_";
  const auto length = static_cast<std::size_t>(rng.range(1, 16));
  std::string label;
  for (std::size_t i = 0; i < length; ++i)
    label += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  // A leading '-' is fine for from_labels (the wire decoder accepts any
  // octets), and exercising it keeps the property honest.
  return label;
}

Name random_name(util::Rng& rng) {
  std::vector<std::string> labels;
  const auto count = static_cast<std::size_t>(rng.range(0, 5));
  for (std::size_t i = 0; i < count; ++i) labels.push_back(random_label(rng));
  auto name = Name::from_labels(std::move(labels));
  EXPECT_TRUE(name.has_value());
  return name.value_or(Name());
}

RData random_rdata(util::Rng& rng, RrType& type) {
  switch (rng.below(6)) {
    case 0:
      type = RrType::kA;
      return util::Ipv4(static_cast<std::uint32_t>(rng.next()));
    case 1: {
      type = RrType::kAaaa;
      Ipv6Bytes v6{};
      for (auto& b : v6) b = static_cast<std::uint8_t>(rng.below(256));
      return v6;
    }
    case 2:
      type = rng.chance(0.5) ? RrType::kCname : RrType::kNs;
      return random_name(rng);
    case 3: {
      type = RrType::kSoa;
      SoaData soa;
      soa.mname = random_name(rng);
      soa.rname = random_name(rng);
      soa.serial = static_cast<std::uint32_t>(rng.next());
      soa.refresh = static_cast<std::uint32_t>(rng.below(100000));
      soa.retry = static_cast<std::uint32_t>(rng.below(100000));
      soa.expire = static_cast<std::uint32_t>(rng.below(100000));
      soa.minimum = static_cast<std::uint32_t>(rng.below(100000));
      return soa;
    }
    case 4: {
      type = RrType::kTxt;
      TxtData txt;
      const auto strings = static_cast<std::size_t>(rng.range(1, 3));
      for (std::size_t i = 0; i < strings; ++i) {
        std::string s;
        const auto length = static_cast<std::size_t>(rng.range(0, 40));
        for (std::size_t j = 0; j < length; ++j)
          s += static_cast<char>(rng.below(256));
        txt.push_back(std::move(s));
      }
      return txt;
    }
    default: {
      type = static_cast<RrType>(rng.range(256, 400));  // unknown type
      RawData raw(static_cast<std::size_t>(rng.range(0, 24)));
      for (auto& b : raw) b = static_cast<std::uint8_t>(rng.below(256));
      return raw;
    }
  }
}

ResourceRecord random_record(util::Rng& rng) {
  ResourceRecord rr;
  rr.name = random_name(rng);
  rr.klass = RrClass::kIn;
  rr.ttl = static_cast<std::uint32_t>(rng.below(1u << 24));
  rr.rdata = random_rdata(rng, rr.type);
  return rr;
}

Message random_message(util::Rng& rng) {
  Message msg;
  msg.header.id = static_cast<std::uint16_t>(rng.next());
  msg.header.qr = rng.chance(0.5);
  msg.header.aa = rng.chance(0.3);
  msg.header.tc = rng.chance(0.1);
  msg.header.rd = rng.chance(0.8);
  msg.header.ra = rng.chance(0.5);
  msg.header.ad = rng.chance(0.2);
  msg.header.rcode = rng.chance(0.8) ? RCode::kNoError : RCode::kNxDomain;
  const auto questions = static_cast<std::size_t>(rng.range(1, 2));
  for (std::size_t i = 0; i < questions; ++i) {
    Question q;
    q.name = random_name(rng);
    q.type = rng.chance(0.7) ? RrType::kA : RrType::kTxt;
    msg.questions.push_back(std::move(q));
  }
  const auto answers = static_cast<std::size_t>(rng.range(0, 4));
  for (std::size_t i = 0; i < answers; ++i)
    msg.answers.push_back(random_record(rng));
  const auto authorities = static_cast<std::size_t>(rng.range(0, 2));
  for (std::size_t i = 0; i < authorities; ++i)
    msg.authorities.push_back(random_record(rng));
  const auto additionals = static_cast<std::size_t>(rng.range(0, 2));
  for (std::size_t i = 0; i < additionals; ++i)
    msg.additionals.push_back(random_record(rng));
  return msg;
}

void expect_equal(const Message& a, const Message& b, std::uint64_t seed) {
  EXPECT_EQ(a.header.id, b.header.id) << "seed " << seed;
  EXPECT_EQ(a.header.qr, b.header.qr) << "seed " << seed;
  EXPECT_EQ(a.header.tc, b.header.tc) << "seed " << seed;
  EXPECT_EQ(a.header.rd, b.header.rd) << "seed " << seed;
  EXPECT_EQ(static_cast<int>(a.header.rcode), static_cast<int>(b.header.rcode))
      << "seed " << seed;
  ASSERT_EQ(a.questions.size(), b.questions.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.questions.size(); ++i)
    EXPECT_EQ(a.questions[i], b.questions[i]) << "seed " << seed;
  const auto check_section = [&](const std::vector<ResourceRecord>& lhs,
                                 const std::vector<ResourceRecord>& rhs,
                                 const char* section) {
    ASSERT_EQ(lhs.size(), rhs.size()) << section << " seed " << seed;
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].name, rhs[i].name) << section << " seed " << seed;
      EXPECT_EQ(static_cast<int>(lhs[i].type), static_cast<int>(rhs[i].type))
          << section << " seed " << seed;
      EXPECT_EQ(lhs[i].ttl, rhs[i].ttl) << section << " seed " << seed;
      EXPECT_EQ(lhs[i].rdata, rhs[i].rdata)
          << section << "[" << i << "] seed " << seed;
    }
  };
  check_section(a.answers, b.answers, "answers");
  check_section(a.authorities, b.authorities, "authorities");
  check_section(a.additionals, b.additionals, "additionals");
}

// ---------------------------------------------------------------------------
// Round-trip properties.

TEST(WireFuzz, RoundTripCompressed) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    util::Rng rng(seed);
    const Message original = random_message(rng);
    const auto wire = original.encode(/*compress=*/true);
    const auto decoded = Message::decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    expect_equal(original, *decoded, seed);
  }
}

TEST(WireFuzz, RoundTripUncompressed) {
  for (std::uint64_t seed = 1000; seed <= 1200; ++seed) {
    util::Rng rng(seed);
    const Message original = random_message(rng);
    const auto wire = original.encode(/*compress=*/false);
    const auto decoded = Message::decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    expect_equal(original, *decoded, seed);
  }
}

TEST(WireFuzz, CompressionNeverLarger) {
  for (std::uint64_t seed = 2000; seed <= 2100; ++seed) {
    util::Rng rng(seed);
    const Message msg = random_message(rng);
    EXPECT_LE(msg.encode(true).size(), msg.encode(false).size())
        << "seed " << seed;
  }
}

TEST(WireFuzz, NameRoundTripThroughLabels) {
  for (std::uint64_t seed = 3000; seed <= 3300; ++seed) {
    util::Rng rng(seed);
    const Name name = random_name(rng);
    const auto reparsed = Name::from_labels(
        std::vector<std::string>(name.labels()));
    ASSERT_TRUE(reparsed.has_value()) << "seed " << seed;
    EXPECT_EQ(name, *reparsed) << "seed " << seed;
    EXPECT_EQ(name.canonical(), reparsed->canonical()) << "seed " << seed;
  }
}

TEST(WireFuzz, StreamFramingRoundTrip) {
  for (std::uint64_t seed = 4000; seed <= 4100; ++seed) {
    util::Rng rng(seed);
    const auto wire = random_message(rng).encode();
    const auto framed = frame_stream(wire);
    ASSERT_EQ(framed.size(), wire.size() + 2) << "seed " << seed;
    const auto unframed = unframe_stream(framed);
    ASSERT_TRUE(unframed.has_value()) << "seed " << seed;
    EXPECT_EQ(*unframed, wire) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Adversarial decoding: corrupted input must yield nullopt or a valid
// message, never undefined behaviour. Running under the sanitizer passes
// (tools/check.sh) turns "no crash" into a strong property.

TEST(WireFuzz, HandPickedMalformedBuffers) {
  const std::vector<std::vector<std::uint8_t>> corpus = {
      {},                              // empty
      {0x00},                          // sub-header
      {0x12, 0x34, 0x01, 0x00, 0x00},  // header cut short
      // Header claiming one question but no body.
      {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00,
       0x00},
      // Question with a label length running past the end.
      {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00,
       0x00, 0x3f, 'a', 'b'},
      // Compression pointer to itself (infinite loop if unchecked).
      {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00,
       0x00, 0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01},
      // Forward-pointing compression pointer (must be rejected).
      {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00,
       0x00, 0xc0, 0xff, 0x00, 0x01, 0x00, 0x01},
      // Reserved label type 0b10 (neither literal nor pointer).
      {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00,
       0x00, 0x80, 0x00, 0x00, 0x01, 0x00, 0x01},
      // RDLENGTH larger than the remaining buffer.
      {0x12, 0x34, 0x84, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
       0x00, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x3c, 0x00,
       0xff, 0x7f},
  };
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto decoded = Message::decode(corpus[i]);
    EXPECT_FALSE(decoded.has_value()) << "corpus[" << i << "]";
  }
}

TEST(WireFuzz, TruncationNeverCrashes) {
  // Every prefix of a valid message must decode cleanly or fail cleanly.
  util::Rng rng(77);
  for (int round = 0; round < 40; ++round) {
    const auto wire = random_message(rng).encode();
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      const std::vector<std::uint8_t> prefix(wire.begin(),
                                             wire.begin() + cut);
      (void)Message::decode(prefix);  // must not crash; result unspecified
    }
  }
}

TEST(WireFuzz, RandomGarbageNeverCrashes) {
  util::Rng rng(78);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.range(0, 300)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    (void)Message::decode(junk);
  }
}

TEST(WireFuzz, BitFlipsNeverCrash) {
  // Mutate valid messages: flip bits, garble bytes, splice lengths. The
  // decoder must stay total — valid result or nullopt.
  util::Rng rng(79);
  for (int round = 0; round < 400; ++round) {
    auto wire = random_message(rng).encode();
    if (wire.empty()) continue;
    const auto mutations = static_cast<std::size_t>(rng.range(1, 8));
    for (std::size_t m = 0; m < mutations; ++m) {
      const auto at = rng.below(wire.size());
      switch (rng.below(3)) {
        case 0:
          wire[at] ^= static_cast<std::uint8_t>(1u << rng.below(8));
          break;
        case 1:
          wire[at] = static_cast<std::uint8_t>(rng.below(256));
          break;
        default:
          wire[at] = 0xc0;  // forge a compression pointer lead byte
          break;
      }
    }
    (void)Message::decode(wire);
  }
}

TEST(WireFuzz, UnframeRejectsBadPrefixes) {
  EXPECT_FALSE(unframe_stream({}).has_value());
  EXPECT_FALSE(unframe_stream(std::vector<std::uint8_t>{0x00}).has_value());
  // Length prefix disagreeing with the payload.
  EXPECT_FALSE(
      unframe_stream(std::vector<std::uint8_t>{0x00, 0x05, 0xaa}).has_value());
  EXPECT_FALSE(unframe_stream(std::vector<std::uint8_t>{0x00, 0x00, 0xaa})
                   .has_value());
}

TEST(WireFuzz, ReaderLatchesErrorsAndReturnsZeroes) {
  const std::vector<std::uint8_t> two = {0xab, 0xcd};
  WireReader reader(two);
  EXPECT_EQ(reader.u16(), 0xabcdu);
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.u32(), 0u);  // past the end: zero + latched error
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.u8(), 0u);  // stays failed
  EXPECT_FALSE(reader.ok());
  reader.seek(1u << 20);  // out-of-range seek keeps the latch set
  EXPECT_FALSE(reader.ok());
}

}  // namespace
}  // namespace encdns::dns
