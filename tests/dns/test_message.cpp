#include "dns/message.hpp"

#include <gtest/gtest.h>

#include "dns/query.hpp"
#include "dns/wire.hpp"
#include "util/rng.hpp"

namespace encdns::dns {
namespace {

Message sample_query() {
  return make_query(*Name::parse("www.example.com"), RrType::kA, 0x1234,
                    QueryOptions{.with_edns = false});
}

TEST(Message, QueryRoundTrip) {
  const Message query = sample_query();
  const auto decoded = Message::decode(query.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->header.id, 0x1234);
  EXPECT_FALSE(decoded->header.qr);
  EXPECT_TRUE(decoded->header.rd);
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_EQ(decoded->questions[0].name, *Name::parse("www.example.com"));
  EXPECT_EQ(decoded->questions[0].type, RrType::kA);
}

TEST(Message, HeaderFlagsRoundTrip) {
  Message m;
  m.header.id = 77;
  m.header.qr = true;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = false;
  m.header.ra = true;
  m.header.ad = true;
  m.header.cd = true;
  m.header.rcode = RCode::kNxDomain;
  const auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->header.qr);
  EXPECT_TRUE(decoded->header.aa);
  EXPECT_TRUE(decoded->header.tc);
  EXPECT_FALSE(decoded->header.rd);
  EXPECT_TRUE(decoded->header.ra);
  EXPECT_TRUE(decoded->header.ad);
  EXPECT_TRUE(decoded->header.cd);
  EXPECT_EQ(decoded->header.rcode, RCode::kNxDomain);
}

TEST(Message, AllRecordTypesRoundTrip) {
  const auto owner = *Name::parse("host.example.com");
  Message m;
  m.header.qr = true;
  m.answers.push_back(ResourceRecord::a(owner, util::Ipv4(1, 2, 3, 4), 60));
  Ipv6Bytes v6{};
  v6[0] = 0x20;
  v6[1] = 0x01;
  v6[15] = 0x01;
  m.answers.push_back(ResourceRecord::aaaa(owner, v6));
  m.answers.push_back(ResourceRecord::cname(owner, *Name::parse("alias.example.com")));
  m.answers.push_back(ResourceRecord::txt(owner, {"hello", "world"}));
  m.authorities.push_back(
      ResourceRecord::ns(*Name::parse("example.com"), *Name::parse("ns1.example.com")));
  SoaData soa;
  soa.mname = *Name::parse("ns1.example.com");
  soa.rname = *Name::parse("hostmaster.example.com");
  soa.serial = 2019050199;
  m.authorities.push_back(ResourceRecord::soa(*Name::parse("example.com"), soa));
  m.answers.push_back(
      ResourceRecord::ptr(*Name::parse("4.3.2.1.in-addr.arpa"), owner));

  const auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded);
  ASSERT_EQ(decoded->answers.size(), 5u);
  ASSERT_EQ(decoded->authorities.size(), 2u);
  EXPECT_EQ(std::get<util::Ipv4>(decoded->answers[0].rdata), util::Ipv4(1, 2, 3, 4));
  EXPECT_EQ(decoded->answers[0].ttl, 60u);
  EXPECT_EQ(std::get<Ipv6Bytes>(decoded->answers[1].rdata), v6);
  EXPECT_EQ(std::get<Name>(decoded->answers[2].rdata), *Name::parse("alias.example.com"));
  EXPECT_EQ(std::get<TxtData>(decoded->answers[3].rdata),
            (TxtData{"hello", "world"}));
  const auto& decoded_soa = std::get<SoaData>(decoded->authorities[1].rdata);
  EXPECT_EQ(decoded_soa.serial, 2019050199u);
  EXPECT_EQ(decoded_soa.mname, soa.mname);
}

TEST(Message, CompressionShrinksEncoding) {
  Message m;
  const auto owner = *Name::parse("host.subdomain.example.com");
  for (int i = 0; i < 5; ++i)
    m.answers.push_back(ResourceRecord::a(owner, util::Ipv4(10, 0, 0, 1)));
  const auto compressed = m.encode(true);
  const auto expanded = m.encode(false);
  EXPECT_LT(compressed.size(), expanded.size());
  // Both decode to the same message.
  const auto a = Message::decode(compressed);
  const auto b = Message::decode(expanded);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(a->answers.size(), b->answers.size());
  EXPECT_EQ(a->answers[4].name, b->answers[4].name);
}

TEST(Message, CompressionSharesSuffixes) {
  // Question: www.example.com; answer CNAME example.com -> compression must
  // reuse the "example.com" suffix across names.
  Message m;
  m.questions.push_back(Question{*Name::parse("www.example.com"), RrType::kA,
                                 RrClass::kIn});
  m.answers.push_back(ResourceRecord::cname(*Name::parse("www.example.com"),
                                            *Name::parse("example.com")));
  const auto wire = m.encode(true);
  const auto decoded = Message::decode(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(std::get<Name>(decoded->answers[0].rdata), *Name::parse("example.com"));
  // The cname target should be a pure 2-byte pointer inside the rdata.
  EXPECT_EQ(decoded->answers[0].name, *Name::parse("www.example.com"));
}

TEST(Message, DecodeRejectsTruncation) {
  const auto wire = sample_query().encode();
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(wire.data(), wire.size() - cut);
    EXPECT_FALSE(Message::decode(prefix)) << "cut=" << cut;
  }
}

TEST(Message, DecodeRejectsTrailingJunk) {
  auto wire = sample_query().encode();
  wire.push_back(0);
  EXPECT_FALSE(Message::decode(wire));
}

TEST(Message, DecodeRejectsForwardPointer) {
  // Header + question whose name is a pointer to a later offset.
  WireWriter w;
  w.u16(1);    // id
  w.u16(0);    // flags
  w.u16(1);    // qdcount
  w.u16(0);
  w.u16(0);
  w.u16(0);
  w.u16(0xC0FF);  // pointer to offset 0xFF (forward/out of range)
  w.u16(1);       // qtype
  w.u16(1);       // qclass
  EXPECT_FALSE(Message::decode(w.data()));
}

TEST(Message, DecodeRejectsPointerLoop) {
  // Name at offset 12 pointing to itself.
  WireWriter w;
  w.u16(1);
  w.u16(0);
  w.u16(1);
  w.u16(0);
  w.u16(0);
  w.u16(0);
  w.u16(0xC00C);  // points at offset 12 == itself
  w.u16(1);
  w.u16(1);
  EXPECT_FALSE(Message::decode(w.data()));
}

TEST(Message, DecodeRejectsBadRdlength) {
  Message m;
  m.answers.push_back(
      ResourceRecord::a(*Name::parse("x.com"), util::Ipv4(1, 2, 3, 4)));
  auto wire = m.encode();
  // Find the RDLENGTH (last 6 bytes are len(2)+addr(4)); corrupt it.
  wire[wire.size() - 5] = 7;
  EXPECT_FALSE(Message::decode(wire));
}

TEST(Message, FirstAAndAllA) {
  Message m = make_a_response(sample_query(),
                              {util::Ipv4(1, 1, 1, 1), util::Ipv4(1, 0, 0, 1)});
  EXPECT_EQ(*m.first_a(), util::Ipv4(1, 1, 1, 1));
  EXPECT_EQ(m.all_a().size(), 2u);
  Message empty;
  EXPECT_FALSE(empty.first_a().has_value());
}

// Property: random well-formed messages round-trip bit-exactly in content.
class MessageFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageFuzzRoundTrip, RandomMessages) {
  util::Rng rng(GetParam());
  for (int iteration = 0; iteration < 40; ++iteration) {
    Message m;
    m.header.id = static_cast<std::uint16_t>(rng.below(65536));
    m.header.qr = rng.chance(0.5);
    m.header.rcode = static_cast<RCode>(rng.below(6));
    const auto random_name = [&rng]() {
      std::vector<std::string> labels;
      const auto count = 1 + rng.below(4);
      for (std::uint64_t i = 0; i < count; ++i) {
        std::string label;
        const auto len = 1 + rng.below(12);
        for (std::uint64_t j = 0; j < len; ++j)
          label.push_back(static_cast<char>('a' + rng.below(26)));
        labels.push_back(std::move(label));
      }
      return *Name::from_labels(std::move(labels));
    };
    m.questions.push_back(Question{random_name(), RrType::kA, RrClass::kIn});
    const auto answers = rng.below(5);
    for (std::uint64_t i = 0; i < answers; ++i) {
      switch (rng.below(3)) {
        case 0:
          m.answers.push_back(ResourceRecord::a(
              random_name(), util::Ipv4{static_cast<std::uint32_t>(rng.next())},
              static_cast<std::uint32_t>(rng.below(86400))));
          break;
        case 1:
          m.answers.push_back(ResourceRecord::cname(random_name(), random_name()));
          break;
        default:
          m.answers.push_back(ResourceRecord::txt(random_name(), {"data"}));
          break;
      }
    }
    const auto decoded = Message::decode(m.encode());
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->header.id, m.header.id);
    EXPECT_EQ(decoded->questions.size(), m.questions.size());
    ASSERT_EQ(decoded->answers.size(), m.answers.size());
    for (std::size_t i = 0; i < m.answers.size(); ++i) {
      EXPECT_EQ(decoded->answers[i].name, m.answers[i].name);
      EXPECT_EQ(decoded->answers[i].type, m.answers[i].type);
      EXPECT_EQ(decoded->answers[i].ttl, m.answers[i].ttl);
    }
    // Idempotence: decode(encode(decode(x))) == decode(x).
    const auto re = Message::decode(decoded->encode());
    ASSERT_TRUE(re);
    EXPECT_EQ(re->answers.size(), decoded->answers.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzzRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace encdns::dns
