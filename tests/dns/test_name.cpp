#include "dns/name.hpp"

#include <gtest/gtest.h>

#include <string>

namespace encdns::dns {
namespace {

TEST(Name, ParseBasic) {
  const auto name = Name::parse("www.example.com");
  ASSERT_TRUE(name);
  EXPECT_EQ(name->label_count(), 3u);
  EXPECT_EQ(name->labels()[0], "www");
  EXPECT_EQ(name->to_string(), "www.example.com");
}

TEST(Name, RootForms) {
  for (const char* text : {"", "."}) {
    const auto root = Name::parse(text);
    ASSERT_TRUE(root);
    EXPECT_TRUE(root->is_root());
    EXPECT_EQ(root->to_string(), ".");
    EXPECT_EQ(root->wire_length(), 1u);
  }
}

TEST(Name, TrailingDotAccepted) {
  EXPECT_EQ(Name::parse("example.com.")->to_string(), "example.com");
}

TEST(Name, RejectsBadLabels) {
  EXPECT_FALSE(Name::parse("exa mple.com"));
  EXPECT_FALSE(Name::parse("a..b"));
  EXPECT_FALSE(Name::parse(".leading.dot"));
  EXPECT_FALSE(Name::parse("bad!char.com"));
}

TEST(Name, AcceptsServiceUnderscore) {
  EXPECT_TRUE(Name::parse("_dns.resolver.arpa"));
}

TEST(Name, LabelLengthLimit) {
  const std::string max_label(63, 'a');
  EXPECT_TRUE(Name::parse(max_label + ".com"));
  const std::string too_long(64, 'a');
  EXPECT_FALSE(Name::parse(too_long + ".com"));
}

TEST(Name, TotalLengthLimit) {
  // Four 63-byte labels need 4*64+1 = 257 > 255 wire bytes.
  const std::string label(63, 'a');
  std::string too_long = label + "." + label + "." + label + "." + label;
  EXPECT_FALSE(Name::parse(too_long));
  // Three labels plus one shorter one fits.
  std::string fits = label + "." + label + "." + label + "." + std::string(61, 'b');
  EXPECT_TRUE(Name::parse(fits));
}

TEST(Name, WireLength) {
  EXPECT_EQ(Name::parse("example.com")->wire_length(), 13u);  // 7+1 + 3+1 + 1
}

TEST(Name, CaseInsensitiveEquality) {
  EXPECT_EQ(*Name::parse("WWW.Example.COM"), *Name::parse("www.example.com"));
  EXPECT_EQ(Name::parse("WWW.Example.COM")->canonical(), "www.example.com.");
}

TEST(Name, PreservesOriginalSpelling) {
  EXPECT_EQ(Name::parse("CloudFlare-DNS.com")->to_string(), "CloudFlare-DNS.com");
}

TEST(Name, Subdomain) {
  const auto apex = *Name::parse("probe.dnsmeasure.net");
  EXPECT_TRUE(Name::parse("p123.probe.dnsmeasure.net")->is_subdomain_of(apex));
  EXPECT_TRUE(apex.is_subdomain_of(apex));
  EXPECT_FALSE(Name::parse("dnsmeasure.net")->is_subdomain_of(apex));
  EXPECT_FALSE(Name::parse("probe.other.net")->is_subdomain_of(apex));
  EXPECT_TRUE(apex.is_subdomain_of(Name{}));  // everything under root
}

TEST(Name, Parent) {
  EXPECT_EQ(Name::parse("a.b.c")->parent(), *Name::parse("b.c"));
  EXPECT_TRUE(Name::parse("com")->parent().is_root());
  EXPECT_TRUE(Name{}.parent().is_root());
}

TEST(Name, PrefixedWith) {
  const auto base = *Name::parse("probe.net");
  const auto child = base.prefixed_with("p42");
  ASSERT_TRUE(child);
  EXPECT_EQ(child->to_string(), "p42.probe.net");
  EXPECT_FALSE(base.prefixed_with("bad label"));
}

TEST(Name, Sld) {
  EXPECT_EQ(Name::parse("dns.quad9.net")->sld().to_string(), "quad9.net");
  EXPECT_EQ(Name::parse("a.b.cloudflare-dns.com")->sld().to_string(),
            "cloudflare-dns.com");
  EXPECT_EQ(Name::parse("example.com")->sld().to_string(), "example.com");
  EXPECT_EQ(Name::parse("com")->sld().to_string(), "com");
}

TEST(Name, HashConsistentWithEquality) {
  const std::hash<Name> hasher;
  EXPECT_EQ(hasher(*Name::parse("Foo.COM")), hasher(*Name::parse("foo.com")));
}

TEST(Name, FromLabelsValidatesLimits) {
  EXPECT_TRUE(Name::from_labels({"any", "bytes"}));
  EXPECT_FALSE(Name::from_labels({std::string(64, 'x')}));
  EXPECT_FALSE(Name::from_labels({""}));
}

}  // namespace
}  // namespace encdns::dns
