#include "dns/wire.hpp"

#include <gtest/gtest.h>

namespace encdns::dns {
namespace {

TEST(WireWriter, BigEndianIntegers) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0x0102);
  w.u32(0x03040506);
  const auto& data = w.data();
  ASSERT_EQ(data.size(), 7u);
  EXPECT_EQ(data[0], 0xAB);
  EXPECT_EQ(data[1], 0x01);
  EXPECT_EQ(data[2], 0x02);
  EXPECT_EQ(data[3], 0x03);
  EXPECT_EQ(data[6], 0x06);
}

TEST(WireWriter, PatchU16) {
  WireWriter w;
  w.u16(0);
  w.text("abc");
  w.patch_u16(0, 3);
  EXPECT_EQ(w.data()[0], 0);
  EXPECT_EQ(w.data()[1], 3);
}

TEST(WireReader, ReadsBackWhatWasWritten) {
  WireWriter w;
  w.u8(7);
  w.u16(853);
  w.u32(123456789);
  WireReader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 853);
  EXPECT_EQ(r.u32(), 123456789u);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireReader, OverreadLatchesError) {
  const std::vector<std::uint8_t> data = {1, 2};
  WireReader r(data);
  EXPECT_EQ(r.u16(), 0x0102);
  EXPECT_EQ(r.u16(), 0);  // past end
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // stays failed
}

TEST(WireReader, BytesBoundsChecked) {
  const std::vector<std::uint8_t> data = {1, 2, 3};
  WireReader r(data);
  EXPECT_EQ(r.bytes(2).size(), 2u);
  EXPECT_TRUE(r.bytes(5).empty());
  EXPECT_FALSE(r.ok());
}

TEST(WireReader, SeekWithinBounds) {
  const std::vector<std::uint8_t> data = {9, 8, 7};
  WireReader r(data);
  r.seek(2);
  EXPECT_EQ(r.u8(), 7);
  r.seek(0);
  EXPECT_EQ(r.u8(), 9);
  r.seek(10);
  EXPECT_FALSE(r.ok());
}

TEST(StreamFraming, RoundTrip) {
  const std::vector<std::uint8_t> message = {0xDE, 0xAD, 0xBE, 0xEF};
  const auto framed = frame_stream(message);
  ASSERT_EQ(framed.size(), 6u);
  EXPECT_EQ(framed[0], 0);
  EXPECT_EQ(framed[1], 4);
  const auto unframed = unframe_stream(framed);
  ASSERT_TRUE(unframed);
  EXPECT_EQ(*unframed, message);
}

TEST(StreamFraming, EmptyMessage) {
  const auto framed = frame_stream({});
  EXPECT_EQ(framed.size(), 2u);
  EXPECT_TRUE(unframe_stream(framed)->empty());
}

TEST(StreamFraming, RejectsBadPrefix) {
  EXPECT_FALSE(unframe_stream(std::vector<std::uint8_t>{}));
  EXPECT_FALSE(unframe_stream(std::vector<std::uint8_t>{0}));
  EXPECT_FALSE(unframe_stream(std::vector<std::uint8_t>{0, 3, 1, 2}));  // short
  EXPECT_FALSE(unframe_stream(std::vector<std::uint8_t>{0, 1, 1, 2}));  // long
}

}  // namespace
}  // namespace encdns::dns
