// Differential properties for the zero-allocation encode path (DESIGN.md
// §11): Message::encode_into must produce byte-identical output to the
// legacy Message::encode across the wire fuzz corpus, for both compress
// modes, with or without a preamble (in-place stream framing), and when the
// scratch buffer is reused across messages. build_query_into is likewise
// pinned against a reference reimplementation of the legacy make_query
// (set_edns + pad_to_block) so its arithmetic padding can never drift.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "dns/edns.hpp"
#include "dns/message.hpp"
#include "dns/query.hpp"
#include "dns/types.hpp"
#include "dns/wire.hpp"
#include "util/rng.hpp"

#include "fuzz_corpus.hpp"

namespace encdns::dns {
namespace {

std::vector<std::uint8_t> encode_via_into(const Message& m, bool compress) {
  WireWriter w;
  m.encode_into(w, compress);
  return std::move(w).take();
}

TEST(EncodeInto, MatchesEncodeCompressed) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    util::Rng rng(seed);
    const Message msg = fuzz::random_message(rng);
    EXPECT_EQ(msg.encode(true), encode_via_into(msg, true)) << "seed " << seed;
  }
}

TEST(EncodeInto, MatchesEncodeUncompressed) {
  for (std::uint64_t seed = 1000; seed <= 1200; ++seed) {
    util::Rng rng(seed);
    const Message msg = fuzz::random_message(rng);
    EXPECT_EQ(msg.encode(false), encode_via_into(msg, false)) << "seed " << seed;
  }
}

TEST(EncodeInto, PreambleKeptAndOffsetsMessageRelative) {
  // Encoding after an arbitrary preamble must leave the preamble untouched
  // and produce the same message bytes after it — i.e. compression pointers
  // are message-relative, not buffer-relative.
  for (std::uint64_t seed = 300; seed <= 360; ++seed) {
    util::Rng rng(seed);
    const Message msg = fuzz::random_message(rng);
    std::vector<std::uint8_t> buf;
    const auto preamble_len = static_cast<std::size_t>(rng.range(1, 40));
    for (std::size_t i = 0; i < preamble_len; ++i)
      buf.push_back(static_cast<std::uint8_t>(rng.below(256)));
    const std::vector<std::uint8_t> preamble = buf;
    WireWriter w(buf);
    msg.encode_into(w);
    ASSERT_GE(buf.size(), preamble_len) << "seed " << seed;
    EXPECT_TRUE(std::equal(preamble.begin(), preamble.end(), buf.begin()))
        << "seed " << seed;
    const std::vector<std::uint8_t> tail(buf.begin() + preamble_len, buf.end());
    EXPECT_EQ(tail, msg.encode()) << "seed " << seed;
    // The relocated encoding must still decode to the same message.
    const auto decoded = Message::decode(tail);
    ASSERT_TRUE(decoded.has_value()) << "seed " << seed;
    fuzz::expect_equal(msg, *decoded, seed);
  }
}

TEST(EncodeInto, InPlaceStreamFramingMatchesFrameStream) {
  for (std::uint64_t seed = 400; seed <= 460; ++seed) {
    util::Rng rng(seed);
    const Message msg = fuzz::random_message(rng);
    WireWriter w;
    const std::size_t prefix = w.begin_stream_frame();
    msg.encode_into(w);
    w.end_stream_frame(prefix);
    EXPECT_EQ(std::move(w).take(), frame_stream(msg.encode())) << "seed " << seed;
  }
}

TEST(EncodeInto, ScratchBufferReuseStaysByteIdentical) {
  // One warmed-up buffer across many messages: stale bytes from a previous,
  // longer encode must never leak into a later one.
  std::vector<std::uint8_t> scratch;
  for (std::uint64_t seed = 500; seed <= 580; ++seed) {
    util::Rng rng(seed);
    const Message msg = fuzz::random_message(rng);
    scratch.clear();
    WireWriter w(scratch);
    msg.encode_into(w);
    EXPECT_EQ(scratch, msg.encode()) << "seed " << seed;
  }
}

TEST(EncodeInto, MutatedDecodableBuffersStayDifferential) {
  // Bit-flipped wires that still decode give messages outside the generator's
  // distribution; encode and encode_into must agree on those too.
  util::Rng rng(81);
  int checked = 0;
  for (int round = 0; round < 600; ++round) {
    auto wire = fuzz::random_message(rng).encode();
    if (wire.empty()) continue;
    const auto mutations = static_cast<std::size_t>(rng.range(1, 6));
    for (std::size_t m = 0; m < mutations; ++m)
      wire[rng.below(wire.size())] = static_cast<std::uint8_t>(rng.below(256));
    const auto decoded = Message::decode(wire);
    if (!decoded) continue;
    ++checked;
    EXPECT_EQ(decoded->encode(true), encode_via_into(*decoded, true));
    EXPECT_EQ(decoded->encode(false), encode_via_into(*decoded, false));
  }
  EXPECT_GT(checked, 20);  // the property must actually get exercised
}

TEST(EncodeInto, MalformedCorpusStillRejected) {
  for (const auto& buf : fuzz::malformed_corpus())
    EXPECT_FALSE(Message::decode(buf).has_value());
}

TEST(EncodeInto, CaseInsensitiveSuffixCompressionUnchanged) {
  // Mixed-case repeats of the same name must compress through the shared
  // dictionary identically in both paths and still round-trip.
  Message msg;
  msg.header.id = 7;
  Question q;
  q.name = *Name::parse("WWW.Example.COM");
  msg.questions.push_back(q);
  msg.answers.push_back(
      ResourceRecord::cname(*Name::parse("www.example.com"),
                            *Name::parse("cdn.EXAMPLE.com")));
  msg.answers.push_back(
      ResourceRecord::a(*Name::parse("CDN.example.COM"), util::Ipv4(0x01020304)));
  const auto wire = msg.encode(true);
  EXPECT_EQ(wire, encode_via_into(msg, true));
  const auto decoded = Message::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->answers.size(), 2u);
}

// ---------------------------------------------------------------------------
// build_query_into vs the legacy make_query construction.

// The pre-PR make_query body, kept as the reference: EDNS attach + measure-
// and-re-encode padding via pad_to_block.
Message legacy_make_query(const Name& qname, RrType type, std::uint16_t id,
                          const QueryOptions& options) {
  Message m;
  m.header.id = id;
  m.header.qr = false;
  m.header.rd = options.recursion_desired;
  m.questions.push_back(Question{qname, type, RrClass::kIn});
  if (options.with_edns) {
    Edns edns;
    edns.udp_payload_size = options.udp_payload_size;
    set_edns(m, edns);
    if (options.padding_block > 0) pad_to_block(m, options.padding_block);
  }
  return m;
}

TEST(BuildQueryInto, MatchesLegacyMakeQueryAcrossOptionSpace) {
  const std::size_t blocks[] = {0, 16, 128, 468};
  util::Rng rng(9001);
  for (int round = 0; round < 120; ++round) {
    const Name qname = fuzz::random_name(rng);
    for (const std::size_t block : blocks) {
      for (const bool with_edns : {true, false}) {
        QueryOptions options;
        options.with_edns = with_edns;
        options.padding_block = block;
        options.recursion_desired = rng.chance(0.8);
        options.udp_payload_size =
            static_cast<std::uint16_t>(rng.chance(0.5) ? 1232 : 4096);
        const auto id = static_cast<std::uint16_t>(rng.below(65536));
        const Message reference = legacy_make_query(qname, RrType::kA, id, options);
        Message built;
        build_query_into(built, qname, RrType::kA, id, options);
        EXPECT_EQ(reference.encode(), built.encode())
            << "round " << round << " block " << block << " edns " << with_edns;
        EXPECT_EQ(make_query(qname, RrType::kA, id, options).encode(),
                  built.encode());
      }
    }
  }
}

TEST(BuildQueryInto, PaddedSizeIsBlockMultiple) {
  util::Rng rng(9002);
  for (int round = 0; round < 80; ++round) {
    const Name qname = fuzz::random_name(rng);
    QueryOptions options;
    options.padding_block = 128;
    Message built;
    build_query_into(built, qname, RrType::kA, 0x4242, options);
    EXPECT_EQ(built.encode().size() % 128, 0u) << "round " << round;
  }
}

TEST(BuildQueryInto, ScratchReuseAcrossShapesLeaksNothing) {
  // Alternate padded / unpadded / EDNS-less builds through one scratch
  // message; every build must equal a from-scratch construction.
  util::Rng rng(9003);
  Message scratch;
  for (int round = 0; round < 100; ++round) {
    const Name qname = fuzz::random_name(rng);
    QueryOptions options;
    switch (round % 3) {
      case 0:
        options.padding_block = 128;
        break;
      case 1:
        options.padding_block = 0;
        break;
      default:
        options.with_edns = false;
        break;
    }
    const auto id = static_cast<std::uint16_t>(rng.below(65536));
    build_query_into(scratch, qname, RrType::kAaaa, id, options);
    EXPECT_EQ(legacy_make_query(qname, RrType::kAaaa, id, options).encode(),
              scratch.encode())
        << "round " << round;
  }
}

}  // namespace
}  // namespace encdns::dns
