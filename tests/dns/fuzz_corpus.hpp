// Shared generators for DNS wire-codec property tests: seeded random
// messages covering every rdata variant, plus the hand-picked malformed
// buffer corpus. Used by test_wire_fuzz.cpp (round-trip / adversarial
// decoding) and test_encode_into.cpp (encode_into differential properties).
// Everything flows from a util::Rng so failures reproduce from the seed
// printed in the assertion message.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dns/message.hpp"
#include "dns/types.hpp"
#include "util/ipv4.hpp"
#include "util/rng.hpp"

namespace encdns::dns::fuzz {

inline std::string random_label(util::Rng& rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJ0123456789-_";
  const auto length = static_cast<std::size_t>(rng.range(1, 16));
  std::string label;
  for (std::size_t i = 0; i < length; ++i)
    label += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  // A leading '-' is fine for from_labels (the wire decoder accepts any
  // octets), and exercising it keeps the property honest.
  return label;
}

inline Name random_name(util::Rng& rng) {
  std::vector<std::string> labels;
  const auto count = static_cast<std::size_t>(rng.range(0, 5));
  for (std::size_t i = 0; i < count; ++i) labels.push_back(random_label(rng));
  auto name = Name::from_labels(std::move(labels));
  EXPECT_TRUE(name.has_value());
  return name.value_or(Name());
}

inline RData random_rdata(util::Rng& rng, RrType& type) {
  switch (rng.below(6)) {
    case 0:
      type = RrType::kA;
      return util::Ipv4(static_cast<std::uint32_t>(rng.next()));
    case 1: {
      type = RrType::kAaaa;
      Ipv6Bytes v6{};
      for (auto& b : v6) b = static_cast<std::uint8_t>(rng.below(256));
      return v6;
    }
    case 2:
      type = rng.chance(0.5) ? RrType::kCname : RrType::kNs;
      return random_name(rng);
    case 3: {
      type = RrType::kSoa;
      SoaData soa;
      soa.mname = random_name(rng);
      soa.rname = random_name(rng);
      soa.serial = static_cast<std::uint32_t>(rng.next());
      soa.refresh = static_cast<std::uint32_t>(rng.below(100000));
      soa.retry = static_cast<std::uint32_t>(rng.below(100000));
      soa.expire = static_cast<std::uint32_t>(rng.below(100000));
      soa.minimum = static_cast<std::uint32_t>(rng.below(100000));
      return soa;
    }
    case 4: {
      type = RrType::kTxt;
      TxtData txt;
      const auto strings = static_cast<std::size_t>(rng.range(1, 3));
      for (std::size_t i = 0; i < strings; ++i) {
        std::string s;
        const auto length = static_cast<std::size_t>(rng.range(0, 40));
        for (std::size_t j = 0; j < length; ++j)
          s += static_cast<char>(rng.below(256));
        txt.push_back(std::move(s));
      }
      return txt;
    }
    default: {
      type = static_cast<RrType>(rng.range(256, 400));  // unknown type
      RawData raw(static_cast<std::size_t>(rng.range(0, 24)));
      for (auto& b : raw) b = static_cast<std::uint8_t>(rng.below(256));
      return raw;
    }
  }
}

inline ResourceRecord random_record(util::Rng& rng) {
  ResourceRecord rr;
  rr.name = random_name(rng);
  rr.klass = RrClass::kIn;
  rr.ttl = static_cast<std::uint32_t>(rng.below(1u << 24));
  rr.rdata = random_rdata(rng, rr.type);
  return rr;
}

inline Message random_message(util::Rng& rng) {
  Message msg;
  msg.header.id = static_cast<std::uint16_t>(rng.next());
  msg.header.qr = rng.chance(0.5);
  msg.header.aa = rng.chance(0.3);
  msg.header.tc = rng.chance(0.1);
  msg.header.rd = rng.chance(0.8);
  msg.header.ra = rng.chance(0.5);
  msg.header.ad = rng.chance(0.2);
  msg.header.rcode = rng.chance(0.8) ? RCode::kNoError : RCode::kNxDomain;
  const auto questions = static_cast<std::size_t>(rng.range(1, 2));
  for (std::size_t i = 0; i < questions; ++i) {
    Question q;
    q.name = random_name(rng);
    q.type = rng.chance(0.7) ? RrType::kA : RrType::kTxt;
    msg.questions.push_back(std::move(q));
  }
  const auto answers = static_cast<std::size_t>(rng.range(0, 4));
  for (std::size_t i = 0; i < answers; ++i)
    msg.answers.push_back(random_record(rng));
  const auto authorities = static_cast<std::size_t>(rng.range(0, 2));
  for (std::size_t i = 0; i < authorities; ++i)
    msg.authorities.push_back(random_record(rng));
  const auto additionals = static_cast<std::size_t>(rng.range(0, 2));
  for (std::size_t i = 0; i < additionals; ++i)
    msg.additionals.push_back(random_record(rng));
  return msg;
}

inline void expect_equal(const Message& a, const Message& b, std::uint64_t seed) {
  EXPECT_EQ(a.header.id, b.header.id) << "seed " << seed;
  EXPECT_EQ(a.header.qr, b.header.qr) << "seed " << seed;
  EXPECT_EQ(a.header.tc, b.header.tc) << "seed " << seed;
  EXPECT_EQ(a.header.rd, b.header.rd) << "seed " << seed;
  EXPECT_EQ(static_cast<int>(a.header.rcode), static_cast<int>(b.header.rcode))
      << "seed " << seed;
  ASSERT_EQ(a.questions.size(), b.questions.size()) << "seed " << seed;
  for (std::size_t i = 0; i < a.questions.size(); ++i)
    EXPECT_EQ(a.questions[i], b.questions[i]) << "seed " << seed;
  const auto check_section = [&](const std::vector<ResourceRecord>& lhs,
                                 const std::vector<ResourceRecord>& rhs,
                                 const char* section) {
    ASSERT_EQ(lhs.size(), rhs.size()) << section << " seed " << seed;
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      EXPECT_EQ(lhs[i].name, rhs[i].name) << section << " seed " << seed;
      EXPECT_EQ(static_cast<int>(lhs[i].type), static_cast<int>(rhs[i].type))
          << section << " seed " << seed;
      EXPECT_EQ(lhs[i].ttl, rhs[i].ttl) << section << " seed " << seed;
      EXPECT_EQ(lhs[i].rdata, rhs[i].rdata)
          << section << "[" << i << "] seed " << seed;
    }
  };
  check_section(a.answers, b.answers, "answers");
  check_section(a.authorities, b.authorities, "authorities");
  check_section(a.additionals, b.additionals, "additionals");
}

/// Hand-picked malformed wire buffers: every decode must return nullopt.
inline std::vector<std::vector<std::uint8_t>> malformed_corpus() {
  return {
      {},                              // empty
      {0x00},                          // sub-header
      {0x12, 0x34, 0x01, 0x00, 0x00},  // header cut short
      // Header claiming one question but no body.
      {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00,
       0x00},
      // Question with a label length running past the end.
      {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00,
       0x00, 0x3f, 'a', 'b'},
      // Compression pointer to itself (infinite loop if unchecked).
      {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00,
       0x00, 0xc0, 0x0c, 0x00, 0x01, 0x00, 0x01},
      // Forward-pointing compression pointer (must be rejected).
      {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00,
       0x00, 0xc0, 0xff, 0x00, 0x01, 0x00, 0x01},
      // Reserved label type 0b10 (neither literal nor pointer).
      {0x12, 0x34, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00,
       0x00, 0x80, 0x00, 0x00, 0x01, 0x00, 0x01},
      // RDLENGTH larger than the remaining buffer.
      {0x12, 0x34, 0x84, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
       0x00, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x3c, 0x00,
       0xff, 0x7f},
  };
}

}  // namespace encdns::dns::fuzz
