#include "dns/edns.hpp"

#include <gtest/gtest.h>

#include "dns/query.hpp"

namespace encdns::dns {
namespace {

TEST(Edns, RecordRoundTrip) {
  Edns edns;
  edns.udp_payload_size = 4096;
  edns.dnssec_ok = true;
  edns.options.push_back(EdnsOption{42, {1, 2, 3}});
  const auto rr = edns.to_record();
  EXPECT_EQ(rr.type, RrType::kOpt);
  EXPECT_TRUE(rr.name.is_root());
  const auto parsed = Edns::from_record(rr);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->udp_payload_size, 4096);
  EXPECT_TRUE(parsed->dnssec_ok);
  ASSERT_EQ(parsed->options.size(), 1u);
  EXPECT_EQ(parsed->options[0], (EdnsOption{42, {1, 2, 3}}));
}

TEST(Edns, FromRecordRejectsNonOpt) {
  const auto rr = ResourceRecord::a(*Name::parse("a.com"), util::Ipv4(1, 2, 3, 4));
  EXPECT_FALSE(Edns::from_record(rr));
}

TEST(Edns, SetAndGetOnMessage) {
  Message m = make_query(*Name::parse("x.com"), RrType::kA, 1,
                         QueryOptions{.with_edns = false});
  EXPECT_FALSE(get_edns(m));
  Edns edns;
  edns.udp_payload_size = 1232;
  set_edns(m, edns);
  const auto got = get_edns(m);
  ASSERT_TRUE(got);
  EXPECT_EQ(got->udp_payload_size, 1232);
  // Setting again replaces rather than duplicates.
  edns.udp_payload_size = 512;
  set_edns(m, edns);
  EXPECT_EQ(m.additionals.size(), 1u);
  EXPECT_EQ(get_edns(m)->udp_payload_size, 512);
}

TEST(Edns, EdnsSurvivesWireRoundTrip) {
  Message m = make_query(*Name::parse("x.com"), RrType::kA, 1, QueryOptions{});
  const auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded);
  const auto edns = get_edns(*decoded);
  ASSERT_TRUE(edns);
  EXPECT_EQ(edns->udp_payload_size, 1232);
}

TEST(Edns, PaddingLength) {
  Edns edns;
  EXPECT_FALSE(edns.padding_length().has_value());
  edns.options.push_back(
      EdnsOption{static_cast<std::uint16_t>(EdnsOptionCode::kPadding),
                 std::vector<std::uint8_t>(17, 0)});
  EXPECT_EQ(*edns.padding_length(), 17u);
}

class PaddingBlocks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaddingBlocks, PadsToMultiple) {
  const std::size_t block = GetParam();
  Message m = make_query(*Name::parse("some.padded.example.org"), RrType::kA, 9,
                         QueryOptions{});
  const std::size_t padded = pad_to_block(m, block);
  EXPECT_EQ(padded % block, 0u);
  EXPECT_EQ(m.encode().size(), padded);
  // Message still decodes and carries a padding option.
  const auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(get_edns(*decoded)->padding_length().has_value());
}

INSTANTIATE_TEST_SUITE_P(Blocks, PaddingBlocks,
                         ::testing::Values(16, 32, 64, 128, 256, 468));

TEST(Padding, RepaddingIsStable) {
  Message m = make_query(*Name::parse("x.example.com"), RrType::kA, 9,
                         QueryOptions{});
  const std::size_t first = pad_to_block(m, 128);
  const std::size_t second = pad_to_block(m, 128);
  EXPECT_EQ(first, second);  // removing and re-adding padding is idempotent
}

TEST(Padding, DifferentNamesSameBlockSize) {
  // The point of block padding: names of different length produce the same
  // wire size class (defeats length-based traffic analysis).
  Message a = make_query(*Name::parse("ab.example.com"), RrType::kA, 1,
                         QueryOptions{});
  Message b = make_query(*Name::parse("much-longer-name.example.com"), RrType::kA,
                         1, QueryOptions{});
  EXPECT_EQ(pad_to_block(a, 128), pad_to_block(b, 128));
}

TEST(Padding, NoEdnsNoPadding) {
  Message m = make_query(*Name::parse("x.com"), RrType::kA, 1,
                         QueryOptions{.with_edns = false});
  const std::size_t size = pad_to_block(m, 128);
  EXPECT_EQ(size, m.encode().size());
  EXPECT_FALSE(get_edns(m));
}

TEST(Padding, ZeroBlockIsNoop) {
  Message m = make_query(*Name::parse("x.com"), RrType::kA, 1, QueryOptions{});
  const std::size_t before = m.encode().size();
  EXPECT_EQ(pad_to_block(m, 0), before);
}

}  // namespace
}  // namespace encdns::dns
