#include "dns/query.hpp"

#include <gtest/gtest.h>

namespace encdns::dns {
namespace {

TEST(MakeQuery, Defaults) {
  const auto q = make_query(*Name::parse("example.com"), RrType::kA, 7);
  EXPECT_EQ(q.header.id, 7);
  EXPECT_FALSE(q.header.qr);
  EXPECT_TRUE(q.header.rd);
  ASSERT_EQ(q.questions.size(), 1u);
  EXPECT_TRUE(get_edns(q).has_value());
}

TEST(MakeQuery, PaddingOption) {
  QueryOptions options;
  options.padding_block = 128;
  const auto q = make_query(*Name::parse("example.com"), RrType::kA, 7, options);
  EXPECT_EQ(q.encode().size() % 128, 0u);
}

TEST(MakeResponse, EchoesQuestionAndId) {
  const auto q = make_query(*Name::parse("a.b.c"), RrType::kTxt, 99);
  const auto r = make_response(q, RCode::kRefused);
  EXPECT_TRUE(r.header.qr);
  EXPECT_TRUE(r.header.ra);
  EXPECT_EQ(r.header.id, 99);
  EXPECT_EQ(r.header.rcode, RCode::kRefused);
  ASSERT_EQ(r.questions.size(), 1u);
  EXPECT_EQ(r.questions[0], q.questions[0]);
}

TEST(MakeAResponse, CarriesAddresses) {
  const auto q = make_query(*Name::parse("probe.net"), RrType::kA, 3);
  const auto r = make_a_response(q, {util::Ipv4(9, 9, 9, 9)}, 42);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].ttl, 42u);
  EXPECT_EQ(*r.first_a(), util::Ipv4(9, 9, 9, 9));
  EXPECT_EQ(r.answers[0].name, q.questions[0].name);
}

TEST(ResponseMatches, Accepts) {
  const auto q = make_query(*Name::parse("x.com"), RrType::kA, 5);
  EXPECT_TRUE(response_matches(q, make_response(q, RCode::kNoError)));
}

TEST(ResponseMatches, RejectsWrongId) {
  const auto q = make_query(*Name::parse("x.com"), RrType::kA, 5);
  auto r = make_response(q, RCode::kNoError);
  r.header.id = 6;
  EXPECT_FALSE(response_matches(q, r));
}

TEST(ResponseMatches, RejectsNonResponse) {
  const auto q = make_query(*Name::parse("x.com"), RrType::kA, 5);
  auto r = make_response(q, RCode::kNoError);
  r.header.qr = false;
  EXPECT_FALSE(response_matches(q, r));
}

TEST(ResponseMatches, RejectsQuestionMismatch) {
  const auto q = make_query(*Name::parse("x.com"), RrType::kA, 5);
  auto r = make_response(q, RCode::kNoError);
  r.questions[0].name = *Name::parse("other.com");
  EXPECT_FALSE(response_matches(q, r));
  r.questions.clear();
  EXPECT_FALSE(response_matches(q, r));
}

}  // namespace
}  // namespace encdns::dns
