#include <gtest/gtest.h>

#include <vector>

#include "sim/duration.hpp"
#include "sim/event_queue.hpp"

namespace encdns::sim {
namespace {

using namespace encdns::sim::literals;

TEST(Millis, Arithmetic) {
  EXPECT_EQ((5_ms + 3_ms).value, 8.0);
  EXPECT_EQ((5_ms - 3_ms).value, 2.0);
  EXPECT_EQ((5_ms * 2.0).value, 10.0);
  EXPECT_EQ((2.0 * 5_ms).value, 10.0);
  Millis m{1.0};
  m += Millis{2.0};
  m *= 3.0;
  EXPECT_EQ(m.value, 9.0);
}

TEST(Millis, SecondsConversion) {
  EXPECT_EQ(Millis::seconds(2.5).value, 2500.0);
  EXPECT_EQ(Millis{1500.0}.to_seconds(), 1.5);
}

TEST(Millis, Comparisons) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_EQ(3_ms, Millis{3.0});
}

TEST(Millis, ToString) {
  EXPECT_EQ(Millis{12.3456}.to_string(), "12.35ms");
  EXPECT_EQ(Millis{2500.0}.to_string(), "2.50s");
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(Millis{30}, [&] { order.push_back(3); });
  queue.schedule_at(Millis{10}, [&] { order.push_back(1); });
  queue.schedule_at(Millis{20}, [&] { order.push_back(2); });
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now().value, 30.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    queue.schedule_at(Millis{10}, [&order, i] { order.push_back(i); });
  queue.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(Millis{10}, [&] { ++fired; });
  queue.schedule_at(Millis{50}, [&] { ++fired; });
  queue.run_until(Millis{20});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.now().value, 20.0);
  EXPECT_EQ(queue.pending(), 1u);
  queue.run_until(Millis{100});
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsScheduledDuringRunAreHonored) {
  EventQueue queue;
  std::vector<double> times;
  queue.schedule_at(Millis{10}, [&] {
    times.push_back(queue.now().value);
    queue.schedule_in(Millis{5}, [&] { times.push_back(queue.now().value); });
  });
  queue.run_until(Millis{100});
  EXPECT_EQ(times, (std::vector<double>{10.0, 15.0}));
}

TEST(EventQueue, PastSchedulesClampToNow) {
  EventQueue queue;
  queue.run_until(Millis{50});
  double fired_at = -1;
  queue.schedule_at(Millis{10}, [&] { fired_at = queue.now().value; });
  queue.run_until(Millis{60});
  EXPECT_EQ(fired_at, 50.0);
}

TEST(EventQueue, RunAllReturnsCount) {
  EventQueue queue;
  for (int i = 0; i < 7; ++i) queue.schedule_in(Millis{static_cast<double>(i)}, [] {});
  EXPECT_EQ(queue.run_all(), 7u);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace encdns::sim
