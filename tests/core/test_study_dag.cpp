// Study-level task-graph execution (DESIGN.md §15): kill-chaos resume under
// overlapping phases, and the per-phase deadline-token regressions.
#include <gtest/gtest.h>
#include <signal.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/study.hpp"

namespace encdns::core {
namespace {

class StudyDagTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/encdns_dag_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    // Pin the graph schedule and a small worker pool so phases genuinely
    // overlap; results must not depend on either (that is the contract
    // under test).
    ::setenv("ENCDNS_DAG", "1", 1);
    ::setenv("ENCDNS_THREADS", "3", 1);
  }

  void TearDown() override {
    ::unsetenv("ENCDNS_DAG");
    ::unsetenv("ENCDNS_THREADS");
    ::unsetenv("ENCDNS_DEADLINE_SCAN");
    ::unsetenv("ENCDNS_DEADLINE_DOH_SCAN");
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

// The doh_scan phase budgets under ENCDNS_DEADLINE_DOH_SCAN through its OWN
// token. Regression: it used to share scan_cancel_, so a sweep that
// exhausted the scan budget zeroed out doh-scan coverage through the
// already-tripped token.
TEST_F(StudyDagTest, DohScanDeadlineIsIndependentOfTheScanBudget) {
  // A wall budget this small is exhausted long before the campaign's first
  // block boundary; the doh-scan phase gets a generous budget of its own.
  ::setenv("ENCDNS_DEADLINE_SCAN", "0.0001", 1);
  ::setenv("ENCDNS_DEADLINE_DOH_SCAN", "60", 1);
  Study study(StudyConfig::quick());
  (void)study.scans();
  const PhaseCoverage scan_coverage = study.phase_coverage("scan_campaign");
  EXPECT_TRUE(scan_coverage.degraded())
      << "the scan budget was expected to trip (completed "
      << scan_coverage.completed << "/" << scan_coverage.planned << ")";
  EXPECT_GT(study.doh_scan().addresses_probed, 0u)
      << "doh_scan must run on a fresh token, not the tripped scan token";
}

// Kill the DAG run at an arbitrary journal commit — overlapping phases are
// mid-flight — then resume from the journal and require the report to match
// an uninterrupted run byte for byte.
TEST_F(StudyDagTest, ResumeAfterMidRunKillMatchesUninterruptedReport) {
  // The child re-runs the study with the kill fuse armed; the journal layer
  // raises SIGKILL at the configured commit, so the process dies with
  // committed phases, a partial delta, and live node threads all at once.
  EXPECT_EXIT(
      {
        ::setenv("ENCDNS_CHECKPOINT_KILL_AFTER", "3", 1);
        Study victim(StudyConfig::quick());
        victim.enable_checkpoint(dir_, /*resume=*/false);
        (void)victim.observability_report();
        std::_Exit(0);  // unreachable: the fuse fires first
      },
      ::testing::KilledBySignal(SIGKILL), "");

  Study reference(StudyConfig::quick());
  const std::string expected = reference.observability_report().to_json();

  Study resumed(StudyConfig::quick());
  resumed.enable_checkpoint(dir_, /*resume=*/true);
  EXPECT_EQ(resumed.observability_report().to_json(), expected);
}

}  // namespace
}  // namespace encdns::core
