// Write-ahead journal + StudyCheckpoint (DESIGN.md §13). The load-bearing
// property is fail-closed resume: a journal either loads exactly the records
// the killed process committed, or throws JournalError — it never half-loads
// — while a torn tail past the commit pointer is silently discarded (that is
// the SIGKILL-mid-append case the design exists for).
#include "core/checkpoint/checkpoint.hpp"
#include "core/checkpoint/journal.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace encdns::core {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kFingerprint = 0x1122334455667788ull;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/encdns_ckpt_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string journal_file() const { return dir_ + "/journal.bin"; }
  [[nodiscard]] std::string commit_file() const { return dir_ + "/journal.commit"; }

  [[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path) const {
    std::ifstream in(path, std::ios::binary);
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
  }
  void write_file(const std::string& path,
                  const std::vector<std::uint8_t>& bytes) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  /// A journal with three committed records ("alpha" superseded once).
  void seed_journal() const {
    Journal journal(dir_, kFingerprint, /*resume=*/false);
    journal.append("alpha", {1, 2, 3});
    journal.append("beta", {4, 5});
    journal.commit();
    journal.append("alpha", {9, 9, 9});
    journal.commit();
  }

  std::string dir_;
};

TEST_F(CheckpointTest, CommittedRecordsSurviveReopen) {
  seed_journal();
  Journal journal(dir_, kFingerprint, /*resume=*/true);
  ASSERT_EQ(journal.records().size(), 3u);
  EXPECT_EQ(journal.records()[0].key, "alpha");
  EXPECT_EQ(journal.records()[1].key, "beta");
  const Journal::Record* last = journal.find_last("alpha");
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->body, (std::vector<std::uint8_t>{9, 9, 9}));
  EXPECT_EQ(journal.find_last("gamma"), nullptr);
}

TEST_F(CheckpointTest, UncommittedAppendIsDiscardedOnReopen) {
  {
    Journal journal(dir_, kFingerprint, false);
    journal.append("alpha", {1});
    journal.commit();
    journal.append("torn", {2, 3, 4});  // no commit: dies before durable
  }
  Journal journal(dir_, kFingerprint, true);
  EXPECT_EQ(journal.records().size(), 1u);
  EXPECT_EQ(journal.find_last("torn"), nullptr);
}

TEST_F(CheckpointTest, TornTailBeyondCommitPointerIsTruncated) {
  seed_journal();
  // Simulate SIGKILL mid-append: garbage after the committed prefix.
  std::ofstream out(journal_file(), std::ios::binary | std::ios::app);
  out << "garbage bytes from a torn write";
  out.close();
  Journal journal(dir_, kFingerprint, true);
  EXPECT_EQ(journal.records().size(), 3u);
}

TEST_F(CheckpointTest, ResumeAfterTornTailTruncationCanAppendAgain) {
  seed_journal();
  std::ofstream(journal_file(), std::ios::binary | std::ios::app) << "torn";
  {
    Journal journal(dir_, kFingerprint, true);
    journal.append("gamma", {7});
    journal.commit();
  }
  Journal journal(dir_, kFingerprint, true);
  ASSERT_EQ(journal.records().size(), 4u);
  EXPECT_EQ(journal.records().back().key, "gamma");
}

TEST_F(CheckpointTest, ZeroLengthJournalFailsClosed) {
  seed_journal();
  write_file(journal_file(), {});
  EXPECT_THROW(Journal(dir_, kFingerprint, true), JournalError);
}

TEST_F(CheckpointTest, MissingJournalFailsClosed) {
  EXPECT_THROW(Journal(dir_, kFingerprint, true), JournalError);
}

TEST_F(CheckpointTest, MissingCommitSidecarFailsClosed) {
  seed_journal();
  fs::remove(commit_file());
  EXPECT_THROW(Journal(dir_, kFingerprint, true), JournalError);
}

TEST_F(CheckpointTest, JournalShorterThanCommitPointerFailsClosed) {
  seed_journal();
  auto bytes = read_file(journal_file());
  bytes.resize(bytes.size() - 1);
  write_file(journal_file(), bytes);
  EXPECT_THROW(Journal(dir_, kFingerprint, true), JournalError);
}

TEST_F(CheckpointTest, BitFlipInCommittedPrefixFailsClosed) {
  seed_journal();
  auto bytes = read_file(journal_file());
  bytes[bytes.size() / 2] ^= 0x40;
  write_file(journal_file(), bytes);
  EXPECT_THROW(Journal(dir_, kFingerprint, true), JournalError);
}

TEST_F(CheckpointTest, VersionSkewFailsClosed) {
  seed_journal();
  auto bytes = read_file(journal_file());
  bytes[8] ^= 0xFF;  // u32 version lives right after the 8-byte magic
  write_file(journal_file(), bytes);
  EXPECT_THROW(Journal(dir_, kFingerprint, true), JournalError);
}

TEST_F(CheckpointTest, WrongMagicFailsClosed) {
  seed_journal();
  auto bytes = read_file(journal_file());
  bytes[0] = 'X';
  write_file(journal_file(), bytes);
  EXPECT_THROW(Journal(dir_, kFingerprint, true), JournalError);
}

TEST_F(CheckpointTest, FingerprintMismatchFailsClosed) {
  seed_journal();
  EXPECT_THROW(Journal(dir_, kFingerprint ^ 1, true), JournalError);
}

TEST_F(CheckpointTest, RandomSingleBitCorruptionNeverHalfLoads) {
  seed_journal();
  const auto pristine_journal = read_file(journal_file());
  const auto pristine_commit = read_file(commit_file());
  util::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 100; ++trial) {
    auto journal_bytes = pristine_journal;
    auto commit_bytes = pristine_commit;
    const bool hit_sidecar = rng.chance(0.3);
    auto& target = hit_sidecar ? commit_bytes : journal_bytes;
    const std::size_t at =
        static_cast<std::size_t>(rng.next() % target.size());
    target[at] ^= static_cast<std::uint8_t>(1u << (rng.next() % 8));
    write_file(journal_file(), journal_bytes);
    write_file(commit_file(), commit_bytes);
    try {
      Journal journal(dir_, kFingerprint, true);
      // A flip the validator tolerated must not have changed what loads:
      // the only acceptable outcomes are "throws" and "exact records".
      ASSERT_EQ(journal.records().size(), 3u) << "trial " << trial;
      EXPECT_EQ(journal.find_last("alpha")->body,
                (std::vector<std::uint8_t>{9, 9, 9}))
          << "trial " << trial;
    } catch (const JournalError&) {
      // fail-closed: the expected outcome
    }
    write_file(journal_file(), pristine_journal);
    write_file(commit_file(), pristine_commit);
  }
  // The pristine pair must still load (the loop restored it).
  Journal journal(dir_, kFingerprint, true);
  EXPECT_EQ(journal.records().size(), 3u);
}

TEST_F(CheckpointTest, KillAfterEnvSigkillsAtTheConfiguredCommit) {
  EXPECT_EXIT(
      {
        ::setenv("ENCDNS_CHECKPOINT_KILL_AFTER", "2", 1);
        Journal journal(dir_, kFingerprint, false);
        journal.append("a", {1});
        journal.commit();  // commit 1: survives
        journal.append("b", {2});
        journal.commit();  // commit 2: SIGKILL fires here
        std::_Exit(0);     // never reached
      },
      ::testing::KilledBySignal(SIGKILL), "");
}

// --- cursor / metrics codecs -------------------------------------------------

WorldCursor sample_cursor() {
  WorldCursor cursor;
  cursor.global_platform.rng.words = {1, 2, 3, 4};
  cursor.global_platform.rng.cached_normal = 0.25;
  cursor.global_platform.rng.has_cached_normal = true;
  cursor.global_platform.next_id = 42;
  cursor.cn_platform.rng.words = {5, 6, 7, 8};
  cursor.cn_platform.next_id = 7;
  cursor.cache_tally = {10, 20, 3, 1, 0, 16};
  cache::ExportedEntry entry;
  entry.key = "example.com|A|853";
  entry.expiry_s = 1234567;
  entry.answer.rcode = dns::RCode::kNxDomain;
  cursor.caches.push_back({entry});
  cursor.caches.push_back({});  // second backend, empty cache
  return cursor;
}

TEST_F(CheckpointTest, CursorCodecRoundTripsByteIdentically) {
  util::ByteWriter w;
  encode_cursor(w, sample_cursor());
  util::ByteReader r(w.data());
  const WorldCursor decoded = decode_cursor(r);
  r.expect_done();
  EXPECT_EQ(decoded.global_platform.next_id, 42u);
  EXPECT_EQ(decoded.cache_tally.misses, 20u);
  ASSERT_EQ(decoded.caches.size(), 2u);
  ASSERT_EQ(decoded.caches[0].size(), 1u);
  EXPECT_EQ(decoded.caches[0][0].key, "example.com|A|853");
  EXPECT_EQ(decoded.caches[0][0].answer.rcode, dns::RCode::kNxDomain);
  util::ByteWriter again;
  encode_cursor(again, decoded);
  EXPECT_EQ(again.data(), w.data());
}

TEST_F(CheckpointTest, TruncatedCursorFailsClosed) {
  util::ByteWriter w;
  encode_cursor(w, sample_cursor());
  util::ByteReader r(w.data().data(), w.size() - 3);
  EXPECT_THROW((void)decode_cursor(r), util::CodecError);
}

// --- StudyCheckpoint over the journal ---------------------------------------

TEST_F(CheckpointTest, PhaseCommitRoundTripsStateAndCursor) {
  const std::vector<std::uint8_t> state = {0xDE, 0xAD, 0xBE, 0xEF};
  {
    StudyCheckpoint checkpoint(dir_, kFingerprint, false);
    checkpoint.commit_phase("scan_campaign", state, sample_cursor());
  }
  StudyCheckpoint checkpoint(dir_, kFingerprint, true);
  const auto loaded = checkpoint.load_phase("scan_campaign");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->state, state);
  EXPECT_EQ(loaded->cursor.global_platform.next_id, 42u);
  ASSERT_EQ(loaded->cursor.caches.size(), 2u);
  EXPECT_EQ(loaded->cursor.caches[0][0].expiry_s, 1234567);
  EXPECT_FALSE(checkpoint.load_phase("doh_discovery").has_value());
}

TEST_F(CheckpointTest, PartialsSupersedeAndPhaseWinsOverPartial) {
  {
    StudyCheckpoint checkpoint(dir_, kFingerprint, false);
    WorldCursor pre = sample_cursor();
    auto hook = checkpoint.phase_hook("performance", pre, [&] {
      return sample_cursor();  // capture: cache/tally at save time
    });
    EXPECT_FALSE(hook->load().has_value());
    hook->save({1});
    hook->save({2, 2});
    EXPECT_EQ(hook->load().value(), (std::vector<std::uint8_t>{2, 2}));
  }
  {
    StudyCheckpoint checkpoint(dir_, kFingerprint, true);
    EXPECT_TRUE(checkpoint.partial_pre_cursor("performance").has_value());
    checkpoint.commit_phase("performance", {3, 3, 3}, sample_cursor());
  }
  StudyCheckpoint checkpoint(dir_, kFingerprint, true);
  const auto loaded = checkpoint.load_phase("performance");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->state, (std::vector<std::uint8_t>{3, 3, 3}));
}

TEST_F(CheckpointTest, PartialPreCursorKeepsThePrePhasePlatformPosition) {
  // The hybrid-cursor contract: platform cursors in a partial are the
  // pre-phase ones (the prologue re-runs on resume), even though cache
  // contents are captured at save time.
  StudyCheckpoint checkpoint(dir_, kFingerprint, false);
  WorldCursor pre = sample_cursor();
  pre.global_platform.next_id = 100;
  auto hook = checkpoint.phase_hook("netflow", pre, [&] {
    WorldCursor advanced = sample_cursor();
    advanced.global_platform.next_id = 999;  // platform moved mid-phase
    advanced.cache_tally.hits = 77;          // cache state moved too
    return advanced;
  });
  hook->save({1});
  const auto rewound = checkpoint.partial_pre_cursor("netflow");
  ASSERT_TRUE(rewound.has_value());
  EXPECT_EQ(rewound->global_platform.next_id, 100u);  // pre-phase, not 999
  EXPECT_EQ(rewound->cache_tally.hits, 77u);          // at-save, not pre
}

}  // namespace
}  // namespace encdns::core
