#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/implementation_survey.hpp"
#include "core/protocol_matrix.hpp"
#include "core/study.hpp"
#include "core/timeline.hpp"
#include "fault/fault.hpp"

namespace encdns::core {
namespace {

TEST(ProtocolMatrix, TenCriteriaFiveCategories) {
  const ProtocolMatrix matrix;
  EXPECT_EQ(matrix.criteria().size(), 10u);
  std::set<std::string> categories;
  for (const auto& criterion : matrix.criteria())
    categories.insert(criterion.category);
  EXPECT_EQ(categories.size(), 5u);
  EXPECT_EQ(ProtocolMatrix::protocols().size(), 5u);
}

TEST(ProtocolMatrix, PaperJudgments) {
  const ProtocolMatrix matrix;
  const auto rating_of = [&](DoeProtocol protocol, const std::string& criterion) {
    for (std::size_t i = 0; i < matrix.criteria().size(); ++i)
      if (matrix.criteria()[i].name == criterion) return matrix.rating(protocol, i);
    ADD_FAILURE() << "no criterion " << criterion;
    return Rating::kNot;
  };
  // DoH embeds DNS in another application protocol; DoT does not.
  EXPECT_EQ(rating_of(DoeProtocol::kDoH, "Stays on the DNS application layer"),
            Rating::kNot);
  EXPECT_EQ(rating_of(DoeProtocol::kDoT, "Stays on the DNS application layer"),
            Rating::kSatisfying);
  // DoH has no fallback (strict-only); DoT's opportunistic profile does.
  EXPECT_EQ(rating_of(DoeProtocol::kDoH, "Provides fallback mechanism"),
            Rating::kNot);
  EXPECT_EQ(rating_of(DoeProtocol::kDoT, "Provides fallback mechanism"),
            Rating::kSatisfying);
  // DoH mixes with HTTPS and resists traffic analysis best.
  EXPECT_EQ(rating_of(DoeProtocol::kDoH, "Resists DNS traffic analysis"),
            Rating::kSatisfying);
  // DNSCrypt is not standard TLS and never standardized.
  EXPECT_EQ(rating_of(DoeProtocol::kDnsCrypt, "Uses standard TLS"), Rating::kNot);
  EXPECT_EQ(rating_of(DoeProtocol::kDnsCrypt, "Standardized by IETF"), Rating::kNot);
  // DoDTLS and DoQUIC have no deployments.
  EXPECT_EQ(rating_of(DoeProtocol::kDoDtls, "Extensively supported by resolvers"),
            Rating::kNot);
  EXPECT_EQ(rating_of(DoeProtocol::kDoQuic, "Extensively supported by resolvers"),
            Rating::kNot);
}

TEST(ProtocolMatrix, DotAndDohLeadOnDeployabilityAndMaturity) {
  // §2.2's conclusion: DoT and DoH are the two leading, mature protocols.
  // Compare on the Deployability + Maturity criteria specifically.
  const ProtocolMatrix matrix;
  const auto score = [&](DoeProtocol protocol) {
    int points = 0;
    for (std::size_t i = 0; i < matrix.criteria().size(); ++i) {
      const auto& category = matrix.criteria()[i].category;
      if (category != "Deployability" && category != "Maturity") continue;
      const auto rating = matrix.rating(protocol, i);
      points += rating == Rating::kSatisfying ? 2 : rating == Rating::kPartial ? 1 : 0;
    }
    return points;
  };
  for (const auto other :
       {DoeProtocol::kDoDtls, DoeProtocol::kDoQuic, DoeProtocol::kDnsCrypt}) {
    EXPECT_GT(score(DoeProtocol::kDoT), score(other));
    EXPECT_GT(score(DoeProtocol::kDoH), score(other));
  }
}

TEST(ProtocolMatrix, RationalesNonEmpty) {
  const ProtocolMatrix matrix;
  for (std::size_t i = 0; i < matrix.criteria().size(); ++i)
    for (const auto protocol : ProtocolMatrix::protocols())
      EXPECT_FALSE(matrix.rationale(protocol, i).empty());
}

TEST(Timeline, ChronologicalAndAnchored) {
  const auto& events = dns_privacy_timeline();
  ASSERT_GT(events.size(), 10u);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_LE(events[i - 1].date, events[i].date);
  // Key anchors from Figure 1.
  const auto has = [&](int year, const char* needle) {
    for (const auto& event : events)
      if (event.date.year == year &&
          event.label.find(needle) != std::string::npos)
        return true;
    return false;
  };
  EXPECT_TRUE(has(2016, "7858"));   // DoT standardized 2016
  EXPECT_TRUE(has(2018, "8484"));   // DoH standardized 2018
  EXPECT_TRUE(has(2014, "DPRIVE"));
}

TEST(ImplementationSurvey, Table8Anchors) {
  const auto& rows = implementation_survey();
  const auto find = [&](const char* name) -> const Implementation* {
    for (const auto& row : rows)
      if (row.name == name) return &row;
    return nullptr;
  };
  const auto* cloudflare = find("Cloudflare");
  ASSERT_NE(cloudflare, nullptr);
  EXPECT_TRUE(cloudflare->dot);
  EXPECT_TRUE(cloudflare->doh);
  const auto* firefox = find("Firefox");
  ASSERT_NE(firefox, nullptr);
  EXPECT_TRUE(firefox->doh);
  EXPECT_FALSE(firefox->dot);
  const auto* android = find("Android");
  ASSERT_NE(android, nullptr);
  EXPECT_TRUE(android->dot);
  const auto* windows = find("Windows");
  ASSERT_NE(windows, nullptr);
  EXPECT_FALSE(windows->dot);  // no built-in support in 2019
}

TEST(ImplementationSurvey, DoeAdoptionOutpacesInSurvey) {
  // The appendix's observation: DoT/DoH support spread quickly among the
  // surveyed implementations.
  const auto totals = survey_totals();
  EXPECT_GT(totals.dot, 10);
  EXPECT_GT(totals.doh, 10);
  EXPECT_GT(totals.total, 35);
  EXPECT_GT(totals.dot, totals.dnscrypt);
}

TEST(Experiments, StaticTablesRender) {
  for (const auto& table :
       {experiment_table1(), experiment_figure1(), experiment_figure2(),
        experiment_table8()}) {
    EXPECT_FALSE(table.title().empty());
    EXPECT_GT(table.row_count(), 3u);
    EXPECT_FALSE(table.render().empty());
    EXPECT_FALSE(table.to_csv().empty());
  }
}

TEST(Experiments, Figure2UsesRealCodec) {
  const auto table = experiment_figure2();
  const std::string rendered = table.render();
  // The GET URL embeds a base64url dns parameter produced by the codec.
  EXPECT_NE(rendered.find("?dns="), std::string::npos);
  EXPECT_NE(rendered.find("application/dns-message"), std::string::npos);
}

TEST(Experiments, RegistryCoversPaper) {
  const auto& experiments = all_experiments();
  EXPECT_EQ(experiments.size(), 25u);
  std::set<std::string> ids;
  for (const auto& experiment : experiments) {
    EXPECT_FALSE(experiment.title.empty());
    EXPECT_TRUE(ids.insert(experiment.id).second);
  }
  // Every table (1-8) and every figure (1-13) of the paper has a runner.
  for (const char* id :
       {"table1", "table2", "table3", "table4", "table5", "table6", "table7",
        "table8", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
        "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"})
    EXPECT_TRUE(ids.contains(id)) << id;
}

// Acceptance for the fault-injection stack (DESIGN.md §8): a quick study under
// the canonical profile must show every layer both absorbing faults (injected)
// and recovering from them (recovered) — client retries, scanner
// retries/breaker, and proxy failover all demonstrably in the loop.
TEST(Study, RobustnessReportCoversEveryLayerUnderCanonicalFaults) {
  StudyConfig config = StudyConfig::quick();
  config.world.fault_profile = fault::FaultProfile::canonical();
  Study study(config);
  const fault::RobustnessReport report = study.robustness_report();

  EXPECT_GT(report.client.injected, 0u);
  EXPECT_GT(report.client.recovered, 0u);
  EXPECT_GT(report.scanner.injected, 0u);
  EXPECT_GT(report.scanner.recovered, 0u);
  EXPECT_GT(report.proxy.injected, 0u);
  EXPECT_GT(report.proxy.recovered, 0u);
  EXPECT_FALSE(report.to_string().empty());
}

}  // namespace
}  // namespace encdns::core
