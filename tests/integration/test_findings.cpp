// End-to-end integration tests: run the whole study at reduced scale and
// assert the *shape* of every key finding the paper reports.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/experiments.hpp"
#include "core/report.hpp"
#include "core/study.hpp"
#include "util/stats.hpp"

namespace encdns::core {
namespace {

/// One shared quick-scale Study for the whole suite (building it per-test
/// would re-run the scans and measurements repeatedly).
Study& study() {
  static Study instance{[] {
    StudyConfig config = StudyConfig::quick();
    config.campaign.scan_count = 2;
    config.campaign.interval_days = 89;  // Feb 1 and May 1 snapshots
    return config;
  }()};
  return instance;
}

// --- Section 3: servers -------------------------------------------------------

TEST(Finding11, ThousandsOfOpenHostsFewResolvers) {
  const auto& scans = study().scans();
  ASSERT_EQ(scans.size(), 2u);
  for (const auto& snapshot : scans) {
    // Vast majority of port-853-open hosts fail the DoT probe.
    EXPECT_GT(snapshot.port_open, snapshot.resolvers.size() * 10);
    EXPECT_GT(snapshot.resolvers.size(), 1200u);  // ">1.5K resolvers"
    EXPECT_GT(snapshot.providers().size(), 150u);  // ">150 providers"
  }
}

TEST(Finding11, ManySmallProvidersNotInPublicLists) {
  const auto& last = study().scans().back();
  // Count discovered providers present in public lists, via ground truth.
  std::unordered_set<std::string> listed;
  for (const auto& d : study().world().deployments().dot)
    if (d.in_public_list) listed.insert(scan::provider_key(d.cert_cn));
  std::size_t unlisted = 0;
  for (const auto& provider : last.providers())
    if (!listed.contains(provider)) ++unlisted;
  EXPECT_GT(unlisted, last.providers().size() / 2);
}

TEST(Finding11, SeventyPercentProvidersRunOneAddress) {
  const auto& last = study().scans().back();
  util::Counter per_provider;
  for (const auto& resolver : last.resolvers) per_provider.add(resolver.provider);
  std::size_t single = 0;
  for (const auto& [provider, count] : per_provider.sorted_desc())
    if (count <= 1.0) ++single;
  const double share = static_cast<double>(single) / per_provider.distinct();
  EXPECT_GT(share, 0.55);  // paper: 70%
  EXPECT_LT(share, 0.85);
}

TEST(Finding12, QuarterOfProvidersUseInvalidCertificates) {
  const auto& last = study().scans().back();
  const double share = static_cast<double>(last.invalid_cert_providers().size()) /
                       last.providers().size();
  EXPECT_GT(share, 0.15);  // paper: ~25%
  EXPECT_LT(share, 0.35);
  // Breakdown: 27 expired / 67 self-signed / 28 bad chains (paper, May 1).
  int expired = 0, self_signed = 0, bad_chain = 0;
  for (const auto& resolver : last.resolvers) {
    switch (resolver.cert_status) {
      case tls::CertStatus::kExpired: ++expired; break;
      case tls::CertStatus::kSelfSigned: ++self_signed; break;
      case tls::CertStatus::kUntrustedChain: ++bad_chain; break;
      default: break;
    }
  }
  EXPECT_NEAR(expired, 27, 8);
  EXPECT_NEAR(self_signed, 67, 10);
  EXPECT_NEAR(bad_chain, 28, 8);
}

TEST(Finding12, FortiGateProxiesGroupAsOneProvider) {
  const auto& last = study().scans().back();
  int fortigate_resolvers = 0;
  for (const auto& resolver : last.resolvers)
    if (resolver.provider == "FortiGate") ++fortigate_resolvers;
  EXPECT_NEAR(fortigate_resolvers, 47, 6);
}

TEST(Table2, CountryGrowthShapes) {
  const auto& scans = study().scans();
  util::Counter first, last;
  for (const auto& r : scans.front().resolvers) first.add(r.country);
  for (const auto& r : scans.back().resolvers) last.add(r.country);
  EXPECT_GT(last.get("IE") / first.get("IE"), 1.7);   // +108%
  EXPECT_LT(last.get("CN") / first.get("CN"), 0.35);  // -84%
  EXPECT_GT(last.get("US") / first.get("US"), 3.0);   // +431%
  EXPECT_GT(last.get("BR") / first.get("BR"), 1.5);   // +122%
}

TEST(DohDiscovery, SeventeenResolversTwoBeyondLists) {
  const auto& discovery = study().doh_discovery();
  EXPECT_EQ(discovery.resolvers.size(), 17u);
  EXPECT_GE(discovery.valid_urls, 17u);
  EXPECT_LE(discovery.valid_urls, 80u);  // paper: 61 valid URLs
}

TEST(LocalResolvers, IspDotScarce) {
  EXPECT_LT(study().local_probe().success_rate(), 0.03);  // paper: 0.3%
}

// --- Section 4: clients -------------------------------------------------------

TEST(Finding21, EncryptedDnsMoreReachableThanClearText) {
  const auto& global = study().reachability_global();
  using P = measure::Protocol;
  using O = measure::Outcome;
  const double dns_failed = global.cell("Cloudflare", P::kDo53).fraction(O::kFailed);
  const double dot_failed = global.cell("Cloudflare", P::kDoT).fraction(O::kFailed);
  const double doh_failed = global.cell("Cloudflare", P::kDoH).fraction(O::kFailed);
  EXPECT_GT(dns_failed, 0.10);
  EXPECT_LT(dot_failed, 0.04);
  EXPECT_LT(doh_failed, 0.02);
  // Over 99% can use the DoE services normally.
  EXPECT_GT(global.cell("Cloudflare", P::kDoH).fraction(O::kCorrect), 0.97);
  EXPECT_GT(global.cell("Quad9", P::kDoT).fraction(O::kCorrect), 0.97);
}

TEST(Finding22, CensorshipBlocksGoogleDohFromCn) {
  const auto& cn = study().reachability_cn();
  using P = measure::Protocol;
  using O = measure::Outcome;
  EXPECT_GT(cn.cell("Google", P::kDoH).fraction(O::kFailed), 0.99);
  EXPECT_LT(cn.cell("Google", P::kDo53).fraction(O::kFailed), 0.05);
  EXPECT_LT(cn.cell("Cloudflare", P::kDoH).fraction(O::kFailed), 0.05);
}

TEST(Finding23, TlsInterceptionBreaksStrictDohNotOpportunisticDot) {
  const auto& global = study().reachability_global();
  ASSERT_FALSE(global.interceptions.empty());
  for (const auto& record : global.interceptions) {
    EXPECT_FALSE(record.doh_lookup_succeeded);
    if (record.port_853) EXPECT_TRUE(record.dot_lookup_succeeded);
  }
  // Rare: a fraction of a percent of clients.
  EXPECT_LT(global.interceptions.size(), global.clients / 100);
}

TEST(Finding24, Quad9DohServfails) {
  const auto& global = study().reachability_global();
  const double incorrect = global.cell("Quad9", measure::Protocol::kDoH)
                               .fraction(measure::Outcome::kIncorrect);
  EXPECT_GT(incorrect, 0.06);  // paper: 13.09%
  EXPECT_LT(incorrect, 0.22);
  // The censored platform's clients sit near the probe zone's nameservers
  // and barely trip the 2-second forwarding timeout.
  const double cn_incorrect = study().reachability_cn()
                                  .cell("Quad9", measure::Protocol::kDoH)
                                  .fraction(measure::Outcome::kIncorrect);
  EXPECT_LT(cn_incorrect, incorrect / 3);
}

TEST(Table5, ConflictingDevicesProfile) {
  const auto& global = study().reachability_global();
  ASSERT_GT(global.conflict_diagnoses.size(), 5u);
  std::size_t none = 0;
  for (const auto& diagnosis : global.conflict_diagnoses)
    if (diagnosis.open_ports.empty()) ++none;
  // Most conflicting destinations expose no ports at all (Table 5 "None").
  EXPECT_GT(static_cast<double>(none) / global.conflict_diagnoses.size(), 0.3);
}

TEST(Finding31, ReusedConnectionOverheadIsMilliseconds) {
  const auto& perf = study().performance();
  ASSERT_GT(perf.clients.size(), 300u);
  EXPECT_LT(std::abs(perf.overall(false, true)), 25.0);  // DoT median, ms
  EXPECT_LT(std::abs(perf.overall(true, true)), 30.0);   // DoH median, ms
}

TEST(Finding31, NoReuseOverheadIsHundredsOfMs) {
  const auto& rows = study().no_reuse();
  ASSERT_EQ(rows.size(), 4u);
  double max_overhead = 0;
  for (const auto& row : rows)
    max_overhead = std::max(max_overhead, row.dot_overhead_ms());
  EXPECT_GT(max_overhead, 200.0);  // "up to hundreds of milliseconds"
}

TEST(Finding32, DohFasterThanClearTextInIndia) {
  const auto& perf = study().performance();
  for (const auto& row : perf.by_country(8)) {
    if (row.country == "IN") {
      EXPECT_LT(row.doh_overhead_median, 0.0);  // paper: -96ms median
      return;
    }
  }
  GTEST_SKIP() << "not enough IN clients at this scale";
}

// --- Section 5: usage ---------------------------------------------------------

TEST(Finding41, DotTrafficSmallButGrowing) {
  const auto& netflow = study().netflow();
  const auto jul = netflow.cloudflare_monthly.find(util::Date{2018, 7, 1});
  const auto dec = netflow.cloudflare_monthly.find(util::Date{2018, 12, 1});
  ASSERT_NE(jul, netflow.cloudflare_monthly.end());
  ASSERT_NE(dec, netflow.cloudflare_monthly.end());
  EXPECT_GT(static_cast<double>(dec->second) / jul->second, 1.3);  // +56%
  EXPECT_EQ(netflow.flagged_client_blocks, 0u);
}

TEST(Finding41, CentralizedClientsAndTemporaryUsers) {
  const auto& netflow = study().netflow();
  EXPECT_GT(netflow.top_share(5), 0.30);                      // paper: 44%
  EXPECT_GT(netflow.short_lived_block_fraction(7), 0.80);     // paper: 96%
  EXPECT_LT(netflow.short_lived_traffic_share(7), 0.45);      // paper: 25%
}

TEST(Finding42, LargeProvidersDominateDoh) {
  const auto& pdns = study().passive_dns();
  const auto popular = pdns.popular_domains(10000);
  EXPECT_GE(popular.size(), 3u);
  EXPECT_LE(popular.size(), 6u);  // paper: only 4 domains above 10K lookups
}

// --- Experiment runners produce well-formed tables ---------------------------

TEST(Experiments, AllRunnersProduceRows) {
  for (const auto& experiment : all_experiments()) {
    const auto table = experiment.run(study());
    EXPECT_GT(table.row_count(), 0u) << experiment.id;
    EXPECT_FALSE(table.render().empty()) << experiment.id;
  }
}

TEST(Report, EveryPaperClaimReproduces) {
  const auto checks = evaluate_findings(study());
  EXPECT_GE(checks.size(), 20u);
  for (const auto& check : checks) {
    EXPECT_TRUE(check.ok) << check.id << ": " << check.description << " (paper "
                          << check.paper << ", measured " << check.measured << ")";
    EXPECT_FALSE(check.measured.empty());
  }
  EXPECT_EQ(failed_count(checks), 0u);
  EXPECT_EQ(findings_table(checks).row_count(), checks.size());
}

}  // namespace
}  // namespace encdns::core
