// Regression tests for the three cache defects the sharded TTL cache fixed
// (DESIGN.md §10): SERVFAIL answers cached for a day, day-boundary expiry
// that ignored record TTLs, and the flush-on-full latency cliff — plus the
// RFC 8767 serve-stale path under injected upstream failure.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dns/query.hpp"
#include "fault/fault.hpp"
#include "resolver/recursive.hpp"
#include "resolver/universe.hpp"

namespace encdns::resolver {
namespace {

const util::Date kDay{2019, 3, 1};
const net::Location kPop{{38.9, -77.0}, "US", 1};

/// A universe whose single zone SERVFAILs for the first `failures` queries,
/// then answers normally — a transient upstream incident.
struct FlakyUniverse {
  std::shared_ptr<int> remaining_failures;
  AuthoritativeUniverse universe;

  explicit FlakyUniverse(int failures)
      : remaining_failures(std::make_shared<int>(failures)) {
    Zone zone;
    zone.apex = *dns::Name::parse("probe.test");
    zone.ns_location = net::Location{{39.9, 116.4}, "CN", 2};
    zone.answer_fn = [counter = remaining_failures](
                         const dns::Name& qname, dns::RrType type,
                         const util::Date&) {
      if (*counter > 0) {
        --*counter;
        Answer answer;
        answer.rcode = dns::RCode::kServFail;
        return answer;
      }
      if (type != dns::RrType::kA) return Answer::nxdomain();
      return Answer::a_record(qname, util::Ipv4(45, 90, 77, 99));
    };
    universe.add_zone(std::move(zone));
  }
};

[[nodiscard]] AuthoritativeUniverse make_universe(std::uint32_t ttl = 300) {
  AuthoritativeUniverse universe;
  Zone zone;
  zone.apex = *dns::Name::parse("probe.test");
  zone.ns_location = net::Location{{39.9, 116.4}, "CN", 2};
  zone.answer_fn = [ttl](const dns::Name& qname, dns::RrType type,
                         const util::Date&) {
    if (type != dns::RrType::kA) return Answer::nxdomain();
    return Answer::a_record(qname, util::Ipv4(45, 90, 77, 99), ttl);
  };
  universe.add_zone(std::move(zone));
  return universe;
}

[[nodiscard]] dns::Message query_for(const std::string& name) {
  return dns::make_query(*dns::Name::parse(name), dns::RrType::kA, 1);
}

// The old map cached whatever the upstream returned — including SERVFAIL —
// for a whole day, so one hiccup kept answering SERVFAIL from cache. RFC
// 2308 forbids caching server failures; the next query must retry upstream.
TEST(RecursiveCache, TransientServfailIsNotServedFromCache) {
  FlakyUniverse flaky(1);
  RecursiveBackend backend(flaky.universe, "test");
  util::Rng rng(7);
  const auto query = query_for("flaky.probe.test");

  const auto failed = backend.resolve(query, kPop, kDay, rng);
  EXPECT_EQ(failed.response.header.rcode, dns::RCode::kServFail);
  EXPECT_EQ(backend.cache().stats().rejected, 1u);
  EXPECT_EQ(backend.cache_size(), 0u);

  // Upstream has recovered; the very next query must reach it, not the cache.
  const auto recovered = backend.resolve(query, kPop, kDay, rng);
  EXPECT_EQ(recovered.response.header.rcode, dns::RCode::kNoError);
  EXPECT_EQ(*recovered.response.first_a(), util::Ipv4(45, 90, 77, 99));
  EXPECT_EQ(backend.cache_misses(), 2u);
  EXPECT_EQ(backend.cache_hits(), 0u);

  // And the good answer IS cached.
  (void)backend.resolve(query, kPop, kDay, rng);
  EXPECT_EQ(backend.cache_hits(), 1u);
}

// The old cache expired everything at the next civil-day boundary, even
// records whose TTL spans several days. Entries now live for their record
// TTL (clamped to the config), expiring at the exact boundary.
TEST(RecursiveCache, MultiDayTtlOutlivesDayBoundary) {
  const auto universe = make_universe(/*ttl=*/3 * 86400);
  RecursiveConfig config;
  config.cache.max_ttl_s = 7 * 86400;  // don't clamp the 3-day record
  RecursiveBackend backend(universe, "test", config);
  util::Rng rng(7);
  const auto query = query_for("long.probe.test");

  (void)backend.resolve(query, kPop, kDay, rng);
  EXPECT_EQ(backend.cache_misses(), 1u);
  (void)backend.resolve(query, kPop, kDay.plus_days(1), rng);
  (void)backend.resolve(query, kPop, kDay.plus_days(2), rng);
  EXPECT_EQ(backend.cache_hits(), 2u);  // day-boundary expiry would miss here
  // Exactly three days after the store, the entry has expired.
  (void)backend.resolve(query, kPop, kDay.plus_days(3), rng);
  EXPECT_EQ(backend.cache_misses(), 2u);
}

TEST(RecursiveCache, ShortTtlExpiresByNextDay) {
  const auto universe = make_universe(/*ttl=*/300);
  RecursiveBackend backend(universe, "test");
  util::Rng rng(7);
  const auto query = query_for("short.probe.test");
  (void)backend.resolve(query, kPop, kDay, rng);
  (void)backend.resolve(query, kPop, kDay, rng);
  EXPECT_EQ(backend.cache_hits(), 1u);  // fresh within the day it was stored
  (void)backend.resolve(query, kPop, kDay.plus_days(1), rng);
  EXPECT_EQ(backend.cache_misses(), 2u);  // 300 s TTL lapsed at the boundary
}

// NXDOMAIN is negatively cacheable (RFC 2308) — but only for the bounded
// negative TTL, not the old full day.
TEST(RecursiveCache, NxdomainIsNegativelyCachedBriefly) {
  auto universe = make_universe();
  universe.set_synthesize_unknown(false);
  RecursiveBackend backend(universe, "test");
  util::Rng rng(7);
  const auto query = query_for("missing.elsewhere.example");

  const auto first = backend.resolve(query, kPop, kDay, rng);
  EXPECT_EQ(first.response.header.rcode, dns::RCode::kNxDomain);
  const auto second = backend.resolve(query, kPop, kDay, rng);
  EXPECT_EQ(second.response.header.rcode, dns::RCode::kNxDomain);
  EXPECT_EQ(backend.cache_hits(), 1u);
  EXPECT_EQ(backend.cache().stats().negative_hits, 1u);
  // The default 900 s negative TTL is long gone by the next day.
  (void)backend.resolve(query, kPop, kDay.plus_days(1), rng);
  EXPECT_EQ(backend.cache_misses(), 2u);
}

// The flush-on-full regression: with the map, crossing max_cache_entries
// cleared *everything*, so a hot name's hit rate collapsed to zero. With
// sharded LRU eviction the hot name stays resident through a stream of cold
// inserts many times the cache's capacity.
TEST(RecursiveCache, HotNameSurvivesFullCache) {
  const auto universe = make_universe();
  RecursiveConfig config;
  config.max_cache_entries = 64;
  RecursiveBackend backend(universe, "test", config);
  util::Rng rng(7);
  const auto hot = query_for("hot.probe.test");

  (void)backend.resolve(hot, kPop, kDay, rng);  // prime: one miss
  constexpr int kColdInserts = 500;
  for (int i = 0; i < kColdInserts; ++i) {
    (void)backend.resolve(query_for("cold" + std::to_string(i) + ".probe.test"),
                          kPop, kDay, rng);
    (void)backend.resolve(hot, kPop, kDay, rng);
  }
  // Every post-prime hot query hit, even though ~8x the cache's capacity
  // was inserted around it.
  EXPECT_EQ(backend.cache_hits(), static_cast<std::uint64_t>(kColdInserts));
  EXPECT_EQ(backend.cache_misses(),
            static_cast<std::uint64_t>(kColdInserts) + 1u);
  EXPECT_GT(backend.cache().stats().evictions, 0u);
  EXPECT_LE(backend.cache_size(), 64u);
}

// RFC 8767 serve-stale: when the upstream recursion fails (injected on
// Channel::kRecursion), an expired-but-recent entry answers instead of
// surfacing SERVFAIL.
TEST(RecursiveCache, ServeStaleAnswersThroughUpstreamFailure) {
  const auto universe = make_universe();
  RecursiveConfig config;
  config.cache.serve_stale = true;
  config.cache.max_stale_s = 2 * 86400;  // day-granular clock needs a wide window
  RecursiveBackend backend(universe, "test", config);
  util::Rng rng(7);
  const auto query = query_for("stale.probe.test");

  (void)backend.resolve(query, kPop, kDay, rng);  // prime, fault-free
  ASSERT_EQ(backend.cache_size(), 1u);

  fault::FaultProfile profile;
  profile.upstream_fail = 1.0;  // every recursion now fails
  const fault::FaultInjector injector(profile, 99);
  backend.set_fault_injector(&injector);

  const auto stale = backend.resolve(query, kPop, kDay.plus_days(1), rng);
  EXPECT_EQ(stale.response.header.rcode, dns::RCode::kNoError);
  EXPECT_EQ(*stale.response.first_a(), util::Ipv4(45, 90, 77, 99));
  EXPECT_EQ(backend.stale_served(), 1u);
  EXPECT_EQ(backend.upstream_faults(), 1u);
}

// Without serve-stale the same failure surfaces as SERVFAIL — and that
// SERVFAIL is not cached, so recovery is immediate.
TEST(RecursiveCache, UpstreamFailureWithoutServeStaleIsServfailUncached) {
  const auto universe = make_universe();
  RecursiveBackend backend(universe, "test");
  util::Rng rng(7);
  const auto query = query_for("down.probe.test");

  (void)backend.resolve(query, kPop, kDay, rng);  // prime (irrelevant: stale off)

  fault::FaultProfile profile;
  profile.upstream_fail = 1.0;
  const fault::FaultInjector injector(profile, 99);
  backend.set_fault_injector(&injector);

  const auto failed = backend.resolve(query, kPop, kDay.plus_days(1), rng);
  EXPECT_EQ(failed.response.header.rcode, dns::RCode::kServFail);
  EXPECT_EQ(backend.stale_served(), 0u);
  EXPECT_EQ(backend.upstream_faults(), 1u);

  // Upstream recovers: the next query resolves fresh, not from a cached
  // failure.
  backend.set_fault_injector(nullptr);
  const auto recovered = backend.resolve(query, kPop, kDay.plus_days(1), rng);
  EXPECT_EQ(recovered.response.header.rcode, dns::RCode::kNoError);
  EXPECT_EQ(*recovered.response.first_a(), util::Ipv4(45, 90, 77, 99));
}

}  // namespace
}  // namespace encdns::resolver
