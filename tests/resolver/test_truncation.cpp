// RFC 1035 §4.2.1 truncation: oversized UDP responses come back empty with
// TC set; clients retry over TCP.
#include <gtest/gtest.h>

#include "client/do53.hpp"
#include "dns/edns.hpp"
#include "dns/query.hpp"
#include "resolver/recursive.hpp"
#include "resolver/services.hpp"
#include "resolver/universe.hpp"
#include "tls/trust_store.hpp"

namespace encdns::resolver {
namespace {

const util::Date kDay{2019, 3, 1};

/// A zone whose answers carry many A records — large enough to exceed the
/// classic 512-byte UDP limit.
AuthoritativeUniverse fat_universe() {
  AuthoritativeUniverse universe;
  Zone zone;
  zone.apex = *dns::Name::parse("fat.test");
  zone.ns_location = net::Location{{39, -98}, "US", 1};
  zone.answer_fn = [](const dns::Name& qname, dns::RrType type, const util::Date&) {
    Answer answer;
    if (type != dns::RrType::kA) return answer;
    for (std::uint32_t i = 0; i < 60; ++i)
      answer.answers.push_back(
          dns::ResourceRecord::a(qname, util::Ipv4{0x0A000000u + i}, 60));
    return answer;
  };
  universe.add_zone(std::move(zone));
  return universe;
}

struct TruncationFixture : ::testing::Test {
  AuthoritativeUniverse universe = fat_universe();
  net::Network network;
  net::ClientContext client_context;
  util::Ipv4 addr{10, 7, 7, 7};

  void SetUp() override {
    ResolverServiceConfig config;
    config.label = "fat-resolver";
    config.backend = std::make_shared<RecursiveBackend>(universe, "fat");
    auto service = std::make_shared<ResolverService>(std::move(config));
    net::Pop pop;
    pop.location = net::Location{{39, -98}, "US", 1};
    pop.service = service;
    network.bind(net::Binding{addr, {pop}});
    client_context.location = pop.location;
    client_context.link.loss_rate = 0.0;
  }
};

TEST_F(TruncationFixture, OversizedUdpResponseIsTruncated) {
  util::Rng rng(1);
  // Without EDNS the limit is 512 bytes; 60 A records cannot fit.
  dns::QueryOptions options;
  options.with_edns = false;
  const auto query =
      dns::make_query(*dns::Name::parse("big.fat.test"), dns::RrType::kA, 7, options);
  const auto wire = query.encode();
  const auto result =
      network.udp_exchange(client_context, rng, addr, dns::kDnsPort, wire, kDay,
                           sim::Millis{5000.0});
  ASSERT_EQ(result.status, net::Network::UdpResult::Status::kOk);
  const auto response = dns::Message::decode(result.payload);
  ASSERT_TRUE(response);
  EXPECT_TRUE(response->header.tc);
  EXPECT_TRUE(response->answers.empty());
  EXPECT_LE(result.payload.size(), 512u);
}

TEST_F(TruncationFixture, LargeEdnsPayloadAvoidsTruncation) {
  util::Rng rng(2);
  dns::QueryOptions options;
  options.udp_payload_size = 4096;
  const auto query =
      dns::make_query(*dns::Name::parse("big.fat.test"), dns::RrType::kA, 8, options);
  const auto result = network.udp_exchange(client_context, rng, addr, dns::kDnsPort,
                                           query.encode(), kDay,
                                           sim::Millis{5000.0});
  ASSERT_EQ(result.status, net::Network::UdpResult::Status::kOk);
  const auto response = dns::Message::decode(result.payload);
  ASSERT_TRUE(response);
  EXPECT_FALSE(response->header.tc);
  EXPECT_EQ(response->answers.size(), 60u);
}

TEST_F(TruncationFixture, ClientRetriesOverTcp) {
  client::Do53Client client(network, client_context, 3);
  client::Do53Client::Options options;
  options.query.with_edns = false;  // force the 512-byte limit
  const auto outcome = client.query_udp(addr, *dns::Name::parse("r.fat.test"),
                                        dns::RrType::kA, kDay, options);
  ASSERT_TRUE(outcome.answered());
  EXPECT_TRUE(outcome.truncated_retry);
  EXPECT_EQ(outcome.response->answers.size(), 60u);  // full answer via TCP
}

TEST_F(TruncationFixture, RetryDisabledSurfacesTruncatedResponse) {
  client::Do53Client client(network, client_context, 4);
  client::Do53Client::Options options;
  options.query.with_edns = false;
  options.retry_tcp_on_truncation = false;
  const auto outcome = client.query_udp(addr, *dns::Name::parse("n.fat.test"),
                                        dns::RrType::kA, kDay, options);
  ASSERT_EQ(outcome.status, client::QueryStatus::kOk);
  EXPECT_TRUE(outcome.response->header.tc);
  EXPECT_FALSE(outcome.answered());  // no answers in the truncated response
  EXPECT_FALSE(outcome.truncated_retry);
}

TEST_F(TruncationFixture, TcpNeverTruncates) {
  client::Do53Client client(network, client_context, 5);
  client::Do53Client::Options options;
  options.query.with_edns = false;
  const auto outcome = client.query_tcp(addr, *dns::Name::parse("t.fat.test"),
                                        dns::RrType::kA, kDay, options);
  ASSERT_TRUE(outcome.answered());
  EXPECT_FALSE(outcome.response->header.tc);
  EXPECT_EQ(outcome.response->answers.size(), 60u);
}

}  // namespace
}  // namespace encdns::resolver
