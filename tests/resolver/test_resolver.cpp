#include <gtest/gtest.h>

#include "dns/query.hpp"
#include "dns/wire.hpp"
#include "http/message.hpp"
#include "resolver/backend.hpp"
#include "resolver/recursive.hpp"
#include "resolver/services.hpp"
#include "resolver/universe.hpp"
#include "tls/trust_store.hpp"
#include "util/base64.hpp"

namespace encdns::resolver {
namespace {

const util::Date kDay{2019, 3, 1};
const net::Location kPop{{38.9, -77.0}, "US", 1};

AuthoritativeUniverse make_universe() {
  AuthoritativeUniverse universe;
  Zone zone;
  zone.apex = *dns::Name::parse("probe.test");
  zone.ns_location = net::Location{{39.9, 116.4}, "CN", 2};
  zone.answer_fn = [](const dns::Name& qname, dns::RrType type, const util::Date&) {
    if (type != dns::RrType::kA) return Answer::nxdomain();
    return Answer::a_record(qname, util::Ipv4(45, 90, 77, 99));
  };
  universe.add_zone(std::move(zone));
  return universe;
}

TEST(Universe, LongestSuffixZoneMatch) {
  AuthoritativeUniverse universe = make_universe();
  Zone sub;
  sub.apex = *dns::Name::parse("deep.probe.test");
  sub.ns_location = kPop;
  sub.answer_fn = [](const dns::Name& qname, dns::RrType, const util::Date&) {
    return Answer::a_record(qname, util::Ipv4(1, 1, 1, 1));
  };
  universe.add_zone(std::move(sub));
  EXPECT_EQ(universe.find_zone(*dns::Name::parse("x.deep.probe.test"))->apex,
            *dns::Name::parse("deep.probe.test"));
  EXPECT_EQ(universe.find_zone(*dns::Name::parse("y.probe.test"))->apex,
            *dns::Name::parse("probe.test"));
  EXPECT_EQ(universe.find_zone(*dns::Name::parse("unrelated.org")), nullptr);
}

TEST(Universe, AnswersFromZone) {
  auto universe = make_universe();
  util::Rng rng(1);
  const auto up = universe.query(*dns::Name::parse("p1.probe.test"),
                                 dns::RrType::kA, kPop, kDay, rng);
  ASSERT_EQ(up.answer.answers.size(), 1u);
  EXPECT_EQ(std::get<util::Ipv4>(up.answer.answers[0].rdata),
            util::Ipv4(45, 90, 77, 99));
  EXPECT_GT(up.latency.value, 0.0);
}

TEST(Universe, SynthesizesUnknownDeterministically) {
  auto universe = make_universe();
  util::Rng rng(1);
  const auto a = universe.query(*dns::Name::parse("random.example.org"),
                                dns::RrType::kA, kPop, kDay, rng);
  const auto b = universe.query(*dns::Name::parse("random.example.org"),
                                dns::RrType::kA, kPop, kDay, rng);
  ASSERT_FALSE(a.answer.answers.empty());
  EXPECT_EQ(std::get<util::Ipv4>(a.answer.answers[0].rdata),
            std::get<util::Ipv4>(b.answer.answers[0].rdata));
}

TEST(Universe, NxdomainWhenSynthesisOff) {
  auto universe = make_universe();
  universe.set_synthesize_unknown(false);
  util::Rng rng(1);
  const auto up = universe.query(*dns::Name::parse("nope.example"),
                                 dns::RrType::kA, kPop, kDay, rng);
  EXPECT_EQ(up.answer.rcode, dns::RCode::kNxDomain);
}

TEST(Universe, LatencyScalesWithNsDistance) {
  auto universe = make_universe();
  util::Rng rng(1);
  double near_total = 0, far_total = 0;
  const net::Location near_pop{{39.9, 116.4}, "CN", 3};  // next to the NS
  for (int i = 0; i < 60; ++i) {
    far_total += universe.query(*dns::Name::parse("a.probe.test"),
                                dns::RrType::kA, kPop, kDay, rng).latency.value;
    near_total += universe.query(*dns::Name::parse("a.probe.test"),
                                 dns::RrType::kA, near_pop, kDay, rng).latency.value;
  }
  EXPECT_GT(far_total, near_total * 2);
}

TEST(RecursiveBackend, CachesWithinDay) {
  auto universe = make_universe();
  RecursiveBackend backend(universe, "test");
  util::Rng rng(2);
  const auto query = dns::make_query(*dns::Name::parse("c.probe.test"),
                                     dns::RrType::kA, 1);
  const auto cold = backend.resolve(query, kPop, kDay, rng);
  const auto warm = backend.resolve(query, kPop, kDay, rng);
  EXPECT_EQ(backend.cache_misses(), 1u);
  EXPECT_EQ(backend.cache_hits(), 1u);
  EXPECT_LT(warm.processing.value, cold.processing.value);
  EXPECT_EQ(*warm.response.first_a(), *cold.response.first_a());
  // Next day: entry stale, miss again.
  (void)backend.resolve(query, kPop, kDay.plus_days(1), rng);
  EXPECT_EQ(backend.cache_misses(), 2u);
}

TEST(RecursiveBackend, FormErrOnEmptyQuestion) {
  auto universe = make_universe();
  RecursiveBackend backend(universe, "test");
  util::Rng rng(2);
  dns::Message empty;
  const auto result = backend.resolve(empty, kPop, kDay, rng);
  EXPECT_EQ(result.response.header.rcode, dns::RCode::kFormErr);
}

TEST(FixedAnswerBackend, AlwaysSameAddress) {
  FixedAnswerBackend backend(util::Ipv4(198, 51, 100, 7));
  util::Rng rng(3);
  for (const char* name : {"a.test", "b.example.org", "c.probe.net"}) {
    const auto query = dns::make_query(*dns::Name::parse(name), dns::RrType::kA, 1);
    const auto result = backend.resolve(query, kPop, kDay, rng);
    EXPECT_EQ(*result.response.first_a(), util::Ipv4(198, 51, 100, 7));
  }
}

// --- ResolverService over the wire ------------------------------------------

struct ServiceFixture : ::testing::Test {
  AuthoritativeUniverse universe = make_universe();
  std::unique_ptr<ResolverService> service;

  void SetUp() override {
    ResolverServiceConfig config;
    config.label = "test-resolver";
    config.backend = std::make_shared<RecursiveBackend>(universe, "test");
    config.serve_dot = true;
    config.serve_doh = true;
    config.dot_certificate = tls::make_chain("dot.test", tls::kLetsEncryptCa,
                                             {2019, 1, 1}, {2019, 12, 1});
    config.doh_certificate = config.dot_certificate;
    config.doh.path = "/dns-query";
    service = std::make_unique<ResolverService>(std::move(config));
  }

  net::WireRequest request_for(std::uint16_t port, net::Transport transport,
                               std::span<const std::uint8_t> payload) {
    net::WireRequest request;
    request.transport = transport;
    request.port = port;
    request.payload = payload;
    request.date = kDay;
    request.pop = kPop;
    return request;
  }
};

TEST_F(ServiceFixture, PortMatrix) {
  EXPECT_TRUE(service->accepts(53, net::Transport::kUdp));
  EXPECT_TRUE(service->accepts(53, net::Transport::kTcp));
  EXPECT_TRUE(service->accepts(853, net::Transport::kTcp));
  EXPECT_FALSE(service->accepts(853, net::Transport::kUdp));
  EXPECT_TRUE(service->accepts(443, net::Transport::kTcp));
  EXPECT_FALSE(service->accepts(22, net::Transport::kTcp));
}

TEST_F(ServiceFixture, CertificatesPerPort) {
  EXPECT_TRUE(service->certificate(853, "", kDay));
  EXPECT_TRUE(service->certificate(443, "", kDay));
  EXPECT_FALSE(service->certificate(53, "", kDay));
}

TEST_F(ServiceFixture, Do53UdpAnswers) {
  const auto query = dns::make_query(*dns::Name::parse("u.probe.test"),
                                     dns::RrType::kA, 42);
  const auto wire = query.encode();
  const auto reply = service->handle(request_for(53, net::Transport::kUdp, wire));
  ASSERT_TRUE(reply.responded);
  const auto response = dns::Message::decode(reply.payload);
  ASSERT_TRUE(response);
  EXPECT_TRUE(dns::response_matches(query, *response));
  EXPECT_EQ(*response->first_a(), util::Ipv4(45, 90, 77, 99));
}

TEST_F(ServiceFixture, DotRequiresStreamFraming) {
  const auto query = dns::make_query(*dns::Name::parse("t.probe.test"),
                                     dns::RrType::kA, 43);
  const auto framed = dns::frame_stream(query.encode());
  const auto reply = service->handle(request_for(853, net::Transport::kTcp, framed));
  ASSERT_TRUE(reply.responded);
  const auto unframed = dns::unframe_stream(reply.payload);
  ASSERT_TRUE(unframed);
  EXPECT_TRUE(dns::Message::decode(*unframed).has_value());

  // Unframed bytes on the DoT port are a protocol error (no reply).
  const auto bare = query.encode();
  EXPECT_FALSE(service->handle(request_for(853, net::Transport::kTcp, bare)).responded);
}

TEST_F(ServiceFixture, DohGetAnswers) {
  const auto query = dns::make_query(*dns::Name::parse("g.probe.test"),
                                     dns::RrType::kA, 44);
  http::Request http_request;
  http_request.method = http::Method::kGet;
  http_request.target =
      "/dns-query?dns=" + util::base64url_encode(query.encode());
  http_request.headers.set("Host", "dot.test");
  const auto wire = http_request.serialize();
  const auto reply = service->handle(request_for(443, net::Transport::kTcp, wire));
  ASSERT_TRUE(reply.responded);
  const auto response = http::Response::parse(reply.payload);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(*response->headers.get("Content-Type"), http::kDnsMessageType);
  const auto dns_response = dns::Message::decode(response->body);
  ASSERT_TRUE(dns_response);
  EXPECT_EQ(*dns_response->first_a(), util::Ipv4(45, 90, 77, 99));
}

TEST_F(ServiceFixture, DohPostAnswers) {
  const auto query = dns::make_query(*dns::Name::parse("p.probe.test"),
                                     dns::RrType::kA, 45);
  http::Request http_request;
  http_request.method = http::Method::kPost;
  http_request.target = "/dns-query";
  http_request.headers.set("Content-Type", http::kDnsMessageType);
  http_request.body = query.encode();
  const auto reply =
      service->handle(request_for(443, net::Transport::kTcp, http_request.serialize()));
  const auto response = http::Response::parse(reply.payload);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->status, 200);
}

TEST_F(ServiceFixture, DohErrorStatuses) {
  const auto status_of = [&](const http::Request& request) {
    const auto reply =
        service->handle(request_for(443, net::Transport::kTcp, request.serialize()));
    return http::Response::parse(reply.payload)->status;
  };
  http::Request wrong_path;
  wrong_path.target = "/other";
  EXPECT_EQ(status_of(wrong_path), 404);

  http::Request no_param;
  no_param.target = "/dns-query";
  EXPECT_EQ(status_of(no_param), 400);

  http::Request bad_b64;
  bad_b64.target = "/dns-query?dns=!!!";
  EXPECT_EQ(status_of(bad_b64), 400);

  http::Request bad_post;
  bad_post.method = http::Method::kPost;
  bad_post.target = "/dns-query";
  bad_post.headers.set("Content-Type", "text/plain");
  EXPECT_EQ(status_of(bad_post), 415);

  http::Request bad_message;
  bad_message.target = "/dns-query?dns=" +
                       util::base64url_encode(std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_EQ(status_of(bad_message), 400);
}

TEST_F(ServiceFixture, ForwardingTimeoutYieldsServfail) {
  // A frontend with an absurdly small timeout SERVFAILs everything.
  ResolverServiceConfig config;
  config.label = "tiny-timeout";
  config.backend = std::make_shared<RecursiveBackend>(universe, "fwd");
  config.serve_doh = true;
  config.doh_certificate = tls::make_chain("fwd.test", tls::kLetsEncryptCa,
                                           {2019, 1, 1}, {2019, 12, 1});
  config.doh.forward_to_do53 = true;
  config.doh.forward_timeout = sim::Millis{0.001};
  ResolverService frontend(std::move(config));

  const auto query = dns::make_query(*dns::Name::parse("f.probe.test"),
                                     dns::RrType::kA, 46);
  http::Request http_request;
  http_request.target = "/dns-query?dns=" + util::base64url_encode(query.encode());
  const auto reply =
      frontend.handle(request_for(443, net::Transport::kTcp, http_request.serialize()));
  const auto response = http::Response::parse(reply.payload);
  ASSERT_TRUE(response);
  EXPECT_EQ(response->status, 200);  // HTTP succeeds; the DNS payload fails
  const auto dns_response = dns::Message::decode(response->body);
  ASSERT_TRUE(dns_response);
  EXPECT_EQ(dns_response->header.rcode, dns::RCode::kServFail);
}

TEST_F(ServiceFixture, WebpageOnPort80Only) {
  ResolverServiceConfig config;
  config.label = "with-web";
  config.backend = std::make_shared<RecursiveBackend>(universe, "w");
  config.extra_tcp_ports = {80};
  config.webpage_body = "hello resolver";
  ResolverService with_web(std::move(config));
  EXPECT_EQ(with_web.webpage(80), "hello resolver");
  EXPECT_EQ(with_web.webpage(443), "");
  EXPECT_TRUE(with_web.accepts(80, net::Transport::kTcp));
}

}  // namespace
}  // namespace encdns::resolver
