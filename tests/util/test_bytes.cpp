#include "util/bytes.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace encdns::util {
namespace {

TEST(Bytes, RoundTripsEveryFieldType) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-1234.5678);
  w.boolean(true);
  w.boolean(false);
  w.str("checkpoint");
  w.str("");
  w.blob({1, 2, 3});

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), -1234.5678);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "checkpoint");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Bytes, DoubleBitPatternSurvivesExactly) {
  for (const double v : {0.0, -0.0, 1.0 / 3.0,
                         std::numeric_limits<double>::denorm_min(),
                         std::numeric_limits<double>::max()}) {
    ByteWriter w;
    w.f64(v);
    ByteReader r(w.data());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(Bytes, TruncatedInputFailsClosed) {
  ByteWriter w;
  w.u64(7);
  const auto& bytes = w.data();
  ByteReader r(bytes.data(), bytes.size() - 1);
  EXPECT_THROW((void)r.u64(), CodecError);
}

TEST(Bytes, OversizedLengthPrefixFailsClosed) {
  ByteWriter w;
  w.u32(0xFFFFFFFFu);  // str length claiming 4 GiB with no payload
  ByteReader r(w.data());
  EXPECT_THROW((void)r.str(), CodecError);
}

TEST(Bytes, MalformedBooleanFailsClosed) {
  ByteWriter w;
  w.u8(2);
  ByteReader r(w.data());
  EXPECT_THROW((void)r.boolean(), CodecError);
}

TEST(Bytes, CountGuardRejectsHostilePrefix) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 elements of >= 8 bytes with 8 bytes remaining
  w.u64(0);
  ByteReader r(w.data());
  EXPECT_THROW((void)r.count(8), CodecError);
}

TEST(Bytes, CountAcceptsExactFit) {
  ByteWriter w;
  w.u32(2);
  w.u64(10);
  w.u64(20);
  ByteReader r(w.data());
  EXPECT_EQ(r.count(8), 2u);
  EXPECT_EQ(r.u64(), 10u);
  EXPECT_EQ(r.u64(), 20u);
}

TEST(Bytes, ExpectDoneRejectsTrailingBytes) {
  ByteWriter w;
  w.u8(1);
  w.u8(2);
  ByteReader r(w.data());
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), CodecError);
}

TEST(Bytes, Fnv1aIsResumable) {
  const std::vector<std::uint8_t> bytes = {'j', 'o', 'u', 'r', 'n', 'a', 'l'};
  const std::uint64_t whole = fnv1a_bytes(bytes.data(), bytes.size());
  const std::uint64_t head = fnv1a_bytes(bytes.data(), 3);
  const std::uint64_t resumed = fnv1a_bytes(bytes.data() + 3, bytes.size() - 3, head);
  EXPECT_EQ(whole, resumed);
  EXPECT_NE(whole, fnv1a_bytes(bytes.data(), bytes.size() - 1));
}

}  // namespace
}  // namespace encdns::util
