#include "util/base64.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace encdns::util {
namespace {

std::vector<std::uint8_t> bytes(std::string_view s) {
  return {s.begin(), s.end()};
}

TEST(Base64Url, Rfc4648Vectors) {
  EXPECT_EQ(base64url_encode(bytes("")), "");
  EXPECT_EQ(base64url_encode(bytes("f")), "Zg");
  EXPECT_EQ(base64url_encode(bytes("fo")), "Zm8");
  EXPECT_EQ(base64url_encode(bytes("foo")), "Zm9v");
  EXPECT_EQ(base64url_encode(bytes("foob")), "Zm9vYg");
  EXPECT_EQ(base64url_encode(bytes("fooba")), "Zm9vYmE");
  EXPECT_EQ(base64url_encode(bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64Url, UsesUrlSafeAlphabet) {
  // 0xFB 0xEF in standard base64 contains '+' and '/'; url-safe uses -_.
  const std::vector<std::uint8_t> data = {0xFB, 0xEF, 0xFF};
  const std::string encoded = base64url_encode(data);
  EXPECT_EQ(encoded.find('+'), std::string::npos);
  EXPECT_EQ(encoded.find('/'), std::string::npos);
  EXPECT_EQ(encoded.find('='), std::string::npos);
  const auto decoded = base64url_decode(encoded);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, data);
}

TEST(Base64Url, Rfc8484Example) {
  // RFC 8484 uses this very encoding for the dns parameter; a query for
  // "www.example.com" begins with the 12-byte header.
  const auto decoded =
      base64url_decode("AAABAAABAAAAAAAAA3d3dwdleGFtcGxlA2NvbQAAAQAB");
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->size(), 33u);
  EXPECT_EQ((*decoded)[0], 0u);
}

TEST(Base64Url, RejectsInvalidCharacters) {
  EXPECT_FALSE(base64url_decode("Zm9v!"));
  EXPECT_FALSE(base64url_decode("Zm9v+"));
  EXPECT_FALSE(base64url_decode("Zm9v/"));
  EXPECT_FALSE(base64url_decode("Zm9v="));  // padding not accepted (unpadded form)
}

TEST(Base64Url, RejectsImpossibleLength) {
  EXPECT_FALSE(base64url_decode("A"));       // length % 4 == 1
  EXPECT_FALSE(base64url_decode("AAAAA"));
}

TEST(Base64Url, RejectsNonZeroTrailingBits) {
  // "Zh" decodes 'f' only if trailing 4 bits are zero; "Zj" has them set.
  EXPECT_TRUE(base64url_decode("Zg"));
  EXPECT_FALSE(base64url_decode("Zh"));
}

TEST(Base64Std, PaddedVectors) {
  EXPECT_EQ(base64_encode(bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(bytes("foo")), "Zm9v");
}

TEST(Hex, Encode) {
  const std::vector<std::uint8_t> data = {0x00, 0xAB, 0xFF};
  EXPECT_EQ(hex_encode(data), "00abff");
  EXPECT_EQ(hex_encode(std::vector<std::uint8_t>{}), "");
}

class Base64RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Base64RoundTrip, RandomBuffers) {
  Rng rng(GetParam() * 977 + 5);
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<std::uint8_t> data(GetParam());
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
    const auto decoded = base64url_decode(base64url_encode(data));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(*decoded, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Base64RoundTrip,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 16, 63, 64, 255, 1024));

}  // namespace
}  // namespace encdns::util
