#include "util/ipv4.hpp"

#include <gtest/gtest.h>

namespace encdns::util {
namespace {

TEST(Ipv4, OctetConstruction) {
  const Ipv4 addr(1, 2, 3, 4);
  EXPECT_EQ(addr.value(), 0x01020304u);
  EXPECT_EQ(addr.octet(0), 1);
  EXPECT_EQ(addr.octet(3), 4);
}

TEST(Ipv4, ToString) {
  EXPECT_EQ(Ipv4(1, 1, 1, 1).to_string(), "1.1.1.1");
  EXPECT_EQ(Ipv4(255, 255, 255, 255).to_string(), "255.255.255.255");
  EXPECT_EQ(Ipv4(0, 0, 0, 0).to_string(), "0.0.0.0");
}

TEST(Ipv4, ParseValid) {
  EXPECT_EQ(*Ipv4::parse("9.9.9.9"), Ipv4(9, 9, 9, 9));
  EXPECT_EQ(*Ipv4::parse("104.16.248.249"), Ipv4(104, 16, 248, 249));
}

TEST(Ipv4, ParseInvalid) {
  EXPECT_FALSE(Ipv4::parse(""));
  EXPECT_FALSE(Ipv4::parse("1.2.3"));
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4::parse("1..3.4"));
  EXPECT_FALSE(Ipv4::parse(" 1.2.3.4"));
  EXPECT_FALSE(Ipv4::parse("1.2.3.4 "));
}

TEST(Ipv4, ParseFormatRoundTrip) {
  for (std::uint32_t v : {0u, 1u, 0x01010101u, 0xC0A80001u, 0xFFFFFFFFu}) {
    const Ipv4 addr{v};
    EXPECT_EQ(*Ipv4::parse(addr.to_string()), addr);
  }
}

TEST(Ipv4, Slash24) {
  EXPECT_EQ(Ipv4(10, 20, 30, 40).slash24(), Ipv4(10, 20, 30, 0));
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4(1, 0, 0, 1), Ipv4(1, 1, 1, 1));
  EXPECT_LT(Ipv4(9, 9, 9, 9), Ipv4(104, 16, 0, 0));
}

TEST(Cidr, NormalizesBase) {
  const Cidr cidr(Ipv4(10, 20, 30, 40), 16);
  EXPECT_EQ(cidr.base(), Ipv4(10, 20, 0, 0));
}

TEST(Cidr, SizeAndAt) {
  const Cidr cidr(Ipv4(192, 168, 0, 0), 24);
  EXPECT_EQ(cidr.size(), 256u);
  EXPECT_EQ(cidr.at(0), Ipv4(192, 168, 0, 0));
  EXPECT_EQ(cidr.at(255), Ipv4(192, 168, 0, 255));
}

TEST(Cidr, Contains) {
  const Cidr cidr = *Cidr::parse("185.228.0.0/16");
  EXPECT_TRUE(cidr.contains(Ipv4(185, 228, 168, 9)));
  EXPECT_FALSE(cidr.contains(Ipv4(185, 229, 0, 1)));
  EXPECT_TRUE(Cidr(Ipv4(0, 0, 0, 0), 0).contains(Ipv4(255, 1, 2, 3)));
}

TEST(Cidr, ParseValidAndInvalid) {
  const auto cidr = Cidr::parse("1.1.0.0/16");
  ASSERT_TRUE(cidr);
  EXPECT_EQ(cidr->prefix_len(), 16);
  EXPECT_EQ(cidr->to_string(), "1.1.0.0/16");
  EXPECT_FALSE(Cidr::parse("1.1.0.0"));
  EXPECT_FALSE(Cidr::parse("1.1.0.0/33"));
  EXPECT_FALSE(Cidr::parse("1.1.0.0/-1"));
  EXPECT_FALSE(Cidr::parse("bogus/16"));
}

TEST(Cidr, HostOrderIteration) {
  const Cidr cidr = *Cidr::parse("10.0.0.0/30");
  ASSERT_EQ(cidr.size(), 4u);
  for (std::uint64_t i = 0; i + 1 < cidr.size(); ++i)
    EXPECT_LT(cidr.at(i), cidr.at(i + 1));
}

}  // namespace
}  // namespace encdns::util
