#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace encdns::util {
namespace {

constexpr const char* kVar = "ENCDNS_TEST_ENV_VAR";

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(kVar); }
  void set(const char* value) { ::setenv(kVar, value, 1); }
};

TEST_F(EnvTest, UnsetReturnsNullopt) {
  ::unsetenv(kVar);
  EXPECT_FALSE(env_string(kVar).has_value());
  EXPECT_FALSE(env_int(kVar).has_value());
  EXPECT_FALSE(env_positive_int(kVar).has_value());
  EXPECT_FALSE(env_double(kVar).has_value());
  EXPECT_FALSE(env_bool(kVar).has_value());
}

TEST_F(EnvTest, IntParsesStrictBase10) {
  set("42");
  EXPECT_EQ(env_int(kVar), 42);
  set("-7");
  EXPECT_EQ(env_int(kVar), -7);
}

TEST_F(EnvTest, IntRejectsTrailingJunk) {
  // The whole point of the shared helper: a typo must fail loudly, not
  // silently degrade to a default (ENCDNS_THREADS=fuor used to run serial).
  for (const char* bad : {"fuor", "4x", "4 ", "", "0x10", "4.0"}) {
    set(bad);
    EXPECT_THROW((void)env_int(kVar), EnvError) << "value: '" << bad << "'";
  }
}

TEST_F(EnvTest, PositiveIntRejectsZeroAndNegative) {
  set("8");
  EXPECT_EQ(env_positive_int(kVar), 8);
  set("0");
  EXPECT_THROW((void)env_positive_int(kVar), EnvError);
  set("-3");
  EXPECT_THROW((void)env_positive_int(kVar), EnvError);
}

TEST_F(EnvTest, DoubleRequiresFiniteFullConsume) {
  set("2.5");
  EXPECT_DOUBLE_EQ(env_double(kVar).value(), 2.5);
  set("1e2");
  EXPECT_DOUBLE_EQ(env_double(kVar).value(), 100.0);
  for (const char* bad : {"2.5s", "nan", "inf", "", "--1"}) {
    set(bad);
    EXPECT_THROW((void)env_double(kVar), EnvError) << "value: '" << bad << "'";
  }
}

TEST_F(EnvTest, BoolAcceptsCanonicalSpellings) {
  for (const char* truthy : {"on", "ON", "true", "True", "1"}) {
    set(truthy);
    EXPECT_EQ(env_bool(kVar), true) << "value: '" << truthy << "'";
  }
  for (const char* falsy : {"off", "OFF", "false", "False", "0"}) {
    set(falsy);
    EXPECT_EQ(env_bool(kVar), false) << "value: '" << falsy << "'";
  }
  for (const char* bad : {"maybe", "yes pls", ""}) {
    set(bad);
    EXPECT_THROW((void)env_bool(kVar), EnvError) << "value: '" << bad << "'";
  }
}

TEST_F(EnvTest, ErrorNamesVariableAndValue) {
  set("fuor");
  try {
    (void)env_int(kVar);
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(kVar), std::string::npos);
    EXPECT_NE(what.find("fuor"), std::string::npos);
  }
}

}  // namespace
}  // namespace encdns::util
