#include "util/table.hpp"

#include <gtest/gtest.h>

namespace encdns::util {
namespace {

TEST(Table, RenderContainsAllCells) {
  Table table("Demo", {"A", "B"});
  table.add_row({"one", "two"});
  table.add_row({"three", "four"});
  const std::string out = table.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  for (const char* cell : {"A", "B", "one", "two", "three", "four"})
    EXPECT_NE(out.find(cell), std::string::npos) << cell;
}

TEST(Table, ShortRowsArePadded) {
  Table table("t", {"A", "B", "C"});
  table.add_row({"only"});
  EXPECT_NO_THROW({ const auto out = table.render(); });
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(Table, ColumnsAlign) {
  Table table("t", {"A"});
  table.add_row({"x"});
  table.add_row({"longer"});
  const std::string out = table.render();
  // All lines between rules should be equally wide.
  std::size_t width = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const auto eol = out.find('\n', pos);
    const auto line = out.substr(pos, eol - pos);
    if (!line.empty() && (line[0] == '|' || line[0] == '+')) {
      if (width == 0) width = line.size();
      EXPECT_EQ(line.size(), width) << line;
    }
    pos = eol + 1;
  }
}

TEST(Table, CsvEscaping) {
  Table table("t", {"name", "value"});
  table.add_row({"plain", "a,b"});
  table.add_row({"quo\"te", "line\nbreak"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"quo\"\"te\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 11), "name,value\n");
}

TEST(Fmt, Decimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-1.005, 1), "-1.0");
}

TEST(FmtPct, PaperStyle) {
  EXPECT_EQ(fmt_pct(0.1646), "16.46%");
  EXPECT_EQ(fmt_pct(0.0), "0.00%");
  EXPECT_EQ(fmt_pct(1.0), "100.00%");
  EXPECT_EQ(fmt_pct(0.25, 0), "25%");
}

TEST(FmtCount, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(29622), "29,622");
  EXPECT_EQ(fmt_count(1234567), "1,234,567");
  EXPECT_EQ(fmt_count(-1234), "-1,234");
}

TEST(FmtGrowth, PaperStyle) {
  EXPECT_EQ(fmt_growth(456, 951), "+109%");
  EXPECT_EQ(fmt_growth(257, 40), "-84%");
  EXPECT_EQ(fmt_growth(100, 531), "+431%");
  EXPECT_EQ(fmt_growth(0, 10), "n/a");
}

}  // namespace
}  // namespace encdns::util
