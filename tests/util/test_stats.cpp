#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace encdns::util {
namespace {

TEST(Percentile, EmptyIsNullopt) {
  EXPECT_FALSE(percentile({}, 0.5).has_value());
  EXPECT_FALSE(median({}).has_value());
  EXPECT_FALSE(mean({}).has_value());
}

TEST(Percentile, SingleValue) {
  EXPECT_DOUBLE_EQ(*percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(*percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(*percentile({7.0}, 1.0), 7.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(*percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*percentile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(*percentile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(*percentile(v, 1.0 / 3.0), 2.0);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(*median({5.0, 1.0, 3.0}), 3.0);
}

TEST(Percentile, ClampsQuantile) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(*percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(*percentile(v, 1.5), 2.0);
}

TEST(Mean, Basic) { EXPECT_DOUBLE_EQ(*mean({1.0, 2.0, 6.0}), 3.0); }

TEST(Stddev, KnownValue) {
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is ~2.138.
  EXPECT_NEAR(*stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_FALSE(stddev({1.0}).has_value());
}

TEST(Summarize, EmptyIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, OrderedFields) {
  const Summary s = summarize({5.0, 1.0, 9.0, 3.0, 7.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.p90);
}

TEST(Cdf, EmptySample) {
  const Cdf cdf{std::vector<double>{}};
  EXPECT_EQ(cdf.count(), 0u);
  EXPECT_EQ(cdf.at(1.0), 0.0);
  EXPECT_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.points(5).empty());
}

TEST(Cdf, StepFunction) {
  const Cdf cdf{{1.0, 2.0, 3.0, 4.0}};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(Cdf, QuantileInverse) {
  const Cdf cdf{{10.0, 20.0, 30.0}};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 30.0);
}

TEST(Cdf, MonotoneProperty) {
  Rng rng(5);
  std::vector<double> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(rng.uniform(0, 1000));
  const Cdf cdf{sample};
  double prev = -1.0;
  for (const auto& [x, f] : cdf.points(50)) {
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(Counter, AddAndGet) {
  Counter counter;
  counter.add("a");
  counter.add("b", 2.5);
  counter.add("a", 3.0);
  EXPECT_DOUBLE_EQ(counter.get("a"), 4.0);
  EXPECT_DOUBLE_EQ(counter.get("b"), 2.5);
  EXPECT_DOUBLE_EQ(counter.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(counter.total(), 6.5);
  EXPECT_EQ(counter.distinct(), 2u);
}

TEST(Counter, SortedDescWithTies) {
  Counter counter;
  counter.add("x", 2);
  counter.add("a", 2);
  counter.add("big", 10);
  const auto sorted = counter.sorted_desc();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].first, "big");
  EXPECT_EQ(sorted[1].first, "a");  // tie broken alphabetically
  EXPECT_EQ(sorted[2].first, "x");
}

TEST(Counter, TopShare) {
  Counter counter;
  counter.add("a", 44);
  counter.add("b", 16);
  counter.add("c", 40);
  EXPECT_DOUBLE_EQ(counter.top_share(1), 0.44);
  EXPECT_DOUBLE_EQ(counter.top_share(2), 0.84);
  EXPECT_DOUBLE_EQ(counter.top_share(10), 1.0);
  EXPECT_DOUBLE_EQ(Counter{}.top_share(3), 0.0);
}

// Property: percentile is monotone in q for random samples.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, MonotoneInQuantile) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> sample;
  const int n = 1 + static_cast<int>(rng.below(200));
  for (int i = 0; i < n; ++i) sample.push_back(rng.normal(0, 100));
  double prev = *percentile(sample, 0.0);
  for (double q = 0.1; q <= 1.0001; q += 0.1) {
    const double v = *percentile(sample, q);
    EXPECT_GE(v, prev - 1e-9);
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileMonotone, ::testing::Range(0, 8));

}  // namespace
}  // namespace encdns::util
