#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace encdns::util {
namespace {

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Join, Inverse) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"one"}, ", "), "one");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("MiXeD123"), "mixed123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t a b \r\n"), "a b");
  EXPECT_EQ(trim("   "), "");
}

TEST(StartsEndsWith, CaseInsensitive) {
  EXPECT_TRUE(istarts_with("/dns-query/extra", "/dns-query"));
  EXPECT_FALSE(istarts_with("/dns", "/dns-query"));
  EXPECT_TRUE(iends_with("www.Example.COM", ".example.com"));
  EXPECT_FALSE(iends_with("example.com", ".example.org"));
}

}  // namespace
}  // namespace encdns::util
