#include "util/date.hpp"

#include <gtest/gtest.h>

namespace encdns::util {
namespace {

TEST(Date, EpochIsDayZero) {
  EXPECT_EQ((Date{1970, 1, 1}).to_days(), 0);
  EXPECT_EQ(Date::from_days(0), (Date{1970, 1, 1}));
}

TEST(Date, KnownDayNumbers) {
  EXPECT_EQ((Date{1970, 1, 2}).to_days(), 1);
  EXPECT_EQ((Date{1969, 12, 31}).to_days(), -1);
  EXPECT_EQ((Date{2000, 3, 1}).to_days(), 11017);
  EXPECT_EQ((Date{2019, 2, 1}).to_days(), 17928);
}

TEST(Date, LeapYearHandling) {
  EXPECT_EQ(days_in_month(2016, 2), 29);
  EXPECT_EQ(days_in_month(2019, 2), 28);
  EXPECT_EQ(days_in_month(2000, 2), 29);   // divisible by 400
  EXPECT_EQ(days_in_month(1900, 2), 28);   // divisible by 100 but not 400
  EXPECT_EQ((Date{2016, 2, 29}).plus_days(1), (Date{2016, 3, 1}));
}

TEST(Date, PlusDaysCrossesBoundaries) {
  EXPECT_EQ((Date{2018, 12, 31}).plus_days(1), (Date{2019, 1, 1}));
  EXPECT_EQ((Date{2019, 2, 1}).plus_days(89), (Date{2019, 5, 1}));
  EXPECT_EQ((Date{2019, 1, 10}).plus_days(-10), (Date{2018, 12, 31}));
}

TEST(Date, Comparisons) {
  EXPECT_LT((Date{2018, 12, 31}), (Date{2019, 1, 1}));
  EXPECT_EQ((Date{2019, 5, 1}), (Date{2019, 5, 1}));
  EXPECT_GT((Date{2019, 5, 2}), (Date{2019, 5, 1}));
}

TEST(Date, MonthHelpers) {
  EXPECT_EQ((Date{2019, 2, 15}).month_start(), (Date{2019, 2, 1}));
  EXPECT_EQ((Date{2019, 12, 15}).next_month(), (Date{2020, 1, 1}));
  EXPECT_EQ(months_between(Date{2018, 7, 1}, Date{2018, 12, 31}), 5);
  EXPECT_EQ(months_between(Date{2018, 12, 1}, Date{2019, 1, 1}), 1);
}

TEST(Date, Formatting) {
  EXPECT_EQ((Date{2019, 2, 1}).to_string(), "2019-02-01");
  EXPECT_EQ((Date{2018, 7, 1}).month_label(), "Jul 2018");
  EXPECT_EQ((Date{2019, 12, 25}).month_label(), "Dec 2019");
}

TEST(Date, InWindow) {
  const Date from{2019, 2, 1}, to{2019, 5, 1};
  EXPECT_TRUE((Date{2019, 2, 1}).in_window(from, to));   // inclusive start
  EXPECT_TRUE((Date{2019, 4, 30}).in_window(from, to));
  EXPECT_FALSE((Date{2019, 5, 1}).in_window(from, to));  // exclusive end
  EXPECT_FALSE((Date{2019, 1, 31}).in_window(from, to));
}

TEST(Date, DaysBetween) {
  EXPECT_EQ(days_between(Date{2019, 2, 1}, Date{2019, 5, 1}), 89);
  EXPECT_EQ(days_between(Date{2019, 5, 1}, Date{2019, 2, 1}), -89);
}

class DateRoundTrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DateRoundTrip, ToDaysFromDaysIdentity) {
  const std::int64_t day = GetParam();
  const Date date = Date::from_days(day);
  EXPECT_EQ(date.to_days(), day);
  EXPECT_GE(date.month, 1);
  EXPECT_LE(date.month, 12);
  EXPECT_GE(date.day, 1);
  EXPECT_LE(date.day, 31);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DateRoundTrip,
                         ::testing::Values(-100000, -1, 0, 1, 10957, 17928, 18382,
                                           20000, 50000, 100000));

// Every day of the study window round-trips and advances by exactly 1.
TEST(DateRoundTrip, StudyWindowContiguous) {
  Date date{2017, 7, 1};
  std::int64_t prev = date.to_days() - 1;
  while (date < Date{2019, 5, 2}) {
    EXPECT_EQ(date.to_days(), prev + 1);
    prev = date.to_days();
    date = date.plus_days(1);
  }
}

}  // namespace
}  // namespace encdns::util
