#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace encdns::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowZeroReturnsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int count : counts) {
    EXPECT_GT(count, kDraws / kBuckets * 0.9);
    EXPECT_LT(count, kDraws / kBuckets * 1.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

TEST(Rng, LognormalMedian) {
  Rng rng(31);
  std::vector<double> draws;
  for (int i = 0; i < 20001; ++i) draws.push_back(rng.lognormal(100.0, 0.5));
  std::nth_element(draws.begin(), draws.begin() + 10000, draws.end());
  EXPECT_NEAR(draws[10000], 100.0, 5.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += rng.exponential(40.0);
  EXPECT_NEAR(sum / 50000, 40.0, 2.0);
  EXPECT_EQ(rng.exponential(0.0), 0.0);
  EXPECT_EQ(rng.exponential(-1.0), 0.0);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  EXPECT_EQ(rng.pareto(0.0, 1.0), 0.0);
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(43);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / 50000, 3.5, 0.1);
}

TEST(Rng, PoissonMeanLargeLambda) {
  Rng rng(47);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / 20000, 200.0, 2.0);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(53);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(Rng, WeightedAllZeroPicksFirst) {
  Rng rng(59);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.weighted(weights), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(61);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkIndependentStreams) {
  Rng base(67);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Mix64, DeterministicAndSpread) {
  EXPECT_EQ(mix64(1), mix64(1));
  std::set<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 1000; ++i) values.insert(mix64(i));
  EXPECT_EQ(values.size(), 1000u);
}

TEST(Fnv1a, KnownVector) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("example.com"), fnv1a("example.com"));
}

// Property sweep: determinism of every distribution across seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, AllDistributionsDeterministic) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.below(1000), b.below(1000));
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.normal(), b.normal());
    EXPECT_EQ(a.poisson(5.0), b.poisson(5.0));
    EXPECT_EQ(a.lognormal(10, 0.3), b.lognormal(10, 0.3));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0, 1, 42, 2019, 0xFFFFFFFFFFFFFFFFULL));

}  // namespace
}  // namespace encdns::util
