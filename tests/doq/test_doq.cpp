#include "doq/doq.hpp"

#include <gtest/gtest.h>

#include "tls/serialize.hpp"
#include "world/world.hpp"

namespace encdns::doq {
namespace {

const util::Date kDay{2019, 3, 20};

world::World& shared_world() {
  static world::World world;
  return world;
}

TEST(TlsSerialize, ChainRoundTrip) {
  const auto chain = tls::make_chain(
      "doq.dnsmeasure.net", tls::kLetsEncryptCa, {2018, 10, 1}, {2019, 12, 15},
      {"doq.dnsmeasure.net", "*.dnsmeasure.net"});
  const auto parsed = tls::parse_chain(tls::serialize_chain(chain));
  ASSERT_TRUE(parsed);
  ASSERT_EQ(parsed->certs.size(), 2u);
  EXPECT_EQ(parsed->leaf_cn(), "doq.dnsmeasure.net");
  EXPECT_EQ(parsed->certs[0].san, chain.certs[0].san);
  EXPECT_EQ(parsed->certs[0].not_after, chain.certs[0].not_after);
  EXPECT_TRUE(parsed->certs[1].is_ca);
  EXPECT_FALSE(tls::parse_chain("garbage without pipes"));
  EXPECT_TRUE(tls::parse_chain("")->certs.empty());
}

TEST(DoqClient, FreshQueryTakesTwoRoundTrips) {
  world::World& world = shared_world();
  const auto vantage = world.make_clean_vantage("US");
  DoqClient client(world.network(), vantage.context, 81);
  util::Rng rng(82);
  DoqClient::Options options;
  options.auth_name = world::World::kDoqHostname;
  const auto outcome = client.query(world.doq_address(), world.unique_probe_name(rng),
                                    dns::RrType::kA, kDay, options);
  ASSERT_TRUE(outcome.answered()) << to_string(outcome.status);
  EXPECT_EQ(*outcome.response->first_a(), world.probe_answer());
  EXPECT_FALSE(outcome.reused_connection);
  ASSERT_TRUE(outcome.cert_status);
  EXPECT_EQ(*outcome.cert_status, tls::CertStatus::kValid);
  // One Initial round trip happened before the query round trip.
  EXPECT_GT(outcome.latency.value, outcome.transaction_latency.value);
  EXPECT_TRUE(client.has_session(world.doq_address()));
}

TEST(DoqClient, ZeroRttIsSingleRoundTrip) {
  world::World& world = shared_world();
  const auto vantage = world.make_clean_vantage("US");
  DoqClient client(world.network(), vantage.context, 83);
  util::Rng rng(84);
  DoqClient::Options options;
  options.auth_name = world::World::kDoqHostname;
  (void)client.query(world.doq_address(), world.unique_probe_name(rng),
                     dns::RrType::kA, kDay, options);
  const auto resumed = client.query(world.doq_address(), world.unique_probe_name(rng),
                                    dns::RrType::kA, kDay, options);
  ASSERT_TRUE(resumed.answered());
  EXPECT_TRUE(resumed.reused_connection);
  // 0-RTT: the whole lookup is the single stream exchange.
  EXPECT_DOUBLE_EQ(resumed.latency.value, resumed.transaction_latency.value);
}

TEST(DoqClient, WrongHostnameRejected) {
  world::World& world = shared_world();
  const auto vantage = world.make_clean_vantage("US");
  DoqClient client(world.network(), vantage.context, 85);
  util::Rng rng(86);
  DoqClient::Options options;
  options.auth_name = "wrong.example";
  const auto outcome = client.query(world.doq_address(), world.unique_probe_name(rng),
                                    dns::RrType::kA, kDay, options);
  EXPECT_EQ(outcome.status, client::QueryStatus::kCertRejected);
  EXPECT_EQ(*outcome.cert_status, tls::CertStatus::kHostnameMismatch);
  EXPECT_FALSE(client.has_session(world.doq_address()));
}

TEST(DoqClient, NoServiceTimesOut) {
  world::World& world = shared_world();
  const auto vantage = world.make_clean_vantage("US");
  DoqClient client(world.network(), vantage.context, 87);
  util::Rng rng(88);
  DoqClient::Options options;
  options.auth_name = world::World::kDoqHostname;
  options.timeout = sim::Millis{500.0};
  // 1.1.1.1 runs no DoQ service on 784.
  const auto outcome =
      client.query(world::addrs::kCloudflarePrimary, world.unique_probe_name(rng),
                   dns::RrType::kA, kDay, options);
  EXPECT_EQ(outcome.status, client::QueryStatus::kTimeout);
}

TEST(DoqClient, FallbackToDotWhenQuicUnavailable) {
  world::World& world = shared_world();
  const auto vantage = world.make_clean_vantage("US");
  DoqClient client(world.network(), vantage.context, 89);
  util::Rng rng(90);
  DoqClient::Options options;
  options.auth_name = "cloudflare-dns.com";
  options.timeout = sim::Millis{500.0};
  options.fallback_to_dot = true;
  // Cloudflare has no DoQ but serves DoT on 853: the draft's fallback path.
  const auto outcome =
      client.query(world::addrs::kCloudflarePrimary, world.unique_probe_name(rng),
                   dns::RrType::kA, kDay, options);
  ASSERT_TRUE(outcome.answered());
  EXPECT_EQ(outcome.presented_chain.leaf_cn(), "cloudflare-dns.com");
}

TEST(DoqClient, StaleTokenRejectedAfterServerRestartEquivalent) {
  // Stream packets with a token not minted by this server are rejected.
  world::World& world = shared_world();
  const auto vantage = world.make_clean_vantage("US");
  util::Rng rng(91);
  std::vector<std::uint8_t> bogus;
  bogus.push_back(kPacketStream);
  for (int i = 0; i < 16; ++i) bogus.push_back(static_cast<std::uint8_t>(i));
  bogus.push_back(0);  // malformed frame tail
  util::Rng packet_rng(92);
  const auto result = world.network().udp_exchange(
      vantage.context, packet_rng, world.doq_address(), kDoqPort, bogus, kDay,
      sim::Millis{5000.0});
  ASSERT_EQ(result.status, net::Network::UdpResult::Status::kOk);
  ASSERT_FALSE(result.payload.empty());
  EXPECT_EQ(result.payload[0], kPacketReject);
}

TEST(DoqVsDot, WarmDoqMatchesClearTextLatency) {
  // The protocol's pitch (Table 1): DNS/UDP-like latency with DoT-like
  // security. Warm DoQ should sit well below warm DoT + handshake paths.
  world::World& world = shared_world();
  const auto vantage = world.make_clean_vantage("US");
  DoqClient doq(world.network(), vantage.context, 93);
  util::Rng rng(94);
  DoqClient::Options options;
  options.auth_name = world::World::kDoqHostname;
  (void)doq.query(world.doq_address(), world.unique_probe_name(rng), dns::RrType::kA,
                  kDay, options);
  double warm_total = 0;
  int warm_count = 0;
  for (int i = 0; i < 30; ++i) {
    const auto outcome = doq.query(world.doq_address(), world.unique_probe_name(rng),
                                   dns::RrType::kA, kDay, options);
    if (outcome.answered()) {
      warm_total += outcome.transaction_latency.value;
      ++warm_count;
    }
  }
  ASSERT_GT(warm_count, 20);
  // Single round trip to a US PoP plus recursion: the average must stay far
  // below a fresh TCP+TLS DoT setup to the same place (~3 RTTs + recursion).
  EXPECT_LT(warm_total / warm_count, 1500.0);
  EXPECT_GT(warm_total / warm_count, 10.0);
}

}  // namespace
}  // namespace encdns::doq
