#include <gtest/gtest.h>

#include "tls/certificate.hpp"
#include "tls/handshake.hpp"
#include "tls/intercept.hpp"
#include "tls/trust_store.hpp"
#include "tls/verify.hpp"
#include "util/rng.hpp"

namespace encdns::tls {
namespace {

const util::Date kNow{2019, 3, 1};

TEST(Certificate, FingerprintStableAndDistinct) {
  const auto a = make_chain("a.com", kLetsEncryptCa, {2019, 1, 1}, {2019, 12, 1});
  const auto b = make_chain("b.com", kLetsEncryptCa, {2019, 1, 1}, {2019, 12, 1});
  EXPECT_EQ(a.leaf().fingerprint(), a.leaf().fingerprint());
  EXPECT_NE(a.leaf().fingerprint(), b.leaf().fingerprint());
}

TEST(Certificate, HostMatchingExactAndWildcard) {
  Certificate cert;
  cert.subject_cn = "cloudflare-dns.com";
  cert.san = {"cloudflare-dns.com", "*.cloudflare-dns.com"};
  EXPECT_TRUE(cert.matches_host("cloudflare-dns.com"));
  EXPECT_TRUE(cert.matches_host("mozilla.cloudflare-dns.com"));
  EXPECT_TRUE(cert.matches_host("MOZILLA.CLOUDFLARE-DNS.COM"));
  EXPECT_FALSE(cert.matches_host("a.b.cloudflare-dns.com"));  // one label only
  EXPECT_FALSE(cert.matches_host("cloudflare-dns.org"));
  EXPECT_FALSE(cert.matches_host(""));
}

TEST(Certificate, SanPresenceIgnoresCn) {
  Certificate cert;
  cert.subject_cn = "cn-only.example";
  cert.san = {"other.example"};
  EXPECT_FALSE(cert.matches_host("cn-only.example"));
  EXPECT_TRUE(cert.matches_host("other.example"));
}

TEST(Certificate, CnUsedWithoutSans) {
  Certificate cert;
  cert.subject_cn = "dns.quad9.net";
  EXPECT_TRUE(cert.matches_host("dns.quad9.net"));
}

TEST(VerifyPath, ValidChain) {
  const auto chain = make_chain("dot.example.com", kLetsEncryptCa, {2019, 1, 1},
                                {2019, 12, 1});
  EXPECT_EQ(verify_path(chain, TrustStore::mozilla(), kNow), CertStatus::kValid);
}

TEST(VerifyPath, EmptyChain) {
  EXPECT_EQ(verify_path(CertificateChain{}, TrustStore::mozilla(), kNow),
            CertStatus::kEmptyChain);
}

TEST(VerifyPath, Expired) {
  const auto chain = make_chain("old.example.com", kLetsEncryptCa, {2018, 1, 1},
                                {2018, 7, 1});
  EXPECT_EQ(verify_path(chain, TrustStore::mozilla(), kNow), CertStatus::kExpired);
}

TEST(VerifyPath, NotYetValid) {
  const auto chain = make_chain("future.example.com", kLetsEncryptCa, {2019, 6, 1},
                                {2020, 6, 1});
  EXPECT_EQ(verify_path(chain, TrustStore::mozilla(), kNow),
            CertStatus::kNotYetValid);
}

TEST(VerifyPath, SelfSigned) {
  const auto chain = make_self_signed("FortiGate", {2016, 8, 1}, {2026, 8, 1});
  EXPECT_EQ(verify_path(chain, TrustStore::mozilla(), kNow),
            CertStatus::kSelfSigned);
}

TEST(VerifyPath, UntrustedChain) {
  const auto chain = make_untrusted_chain("corp.example.com",
                                          "Internal Corporate Root CA",
                                          {2019, 1, 1}, {2020, 1, 1});
  EXPECT_EQ(verify_path(chain, TrustStore::mozilla(), kNow),
            CertStatus::kUntrustedChain);
}

TEST(VerifyPath, BrokenSignature) {
  auto chain = make_chain("dot.example.com", kLetsEncryptCa, {2019, 1, 1},
                          {2019, 12, 1});
  chain.certs[0].signed_by_issuer = false;
  EXPECT_EQ(verify_path(chain, TrustStore::mozilla(), kNow),
            CertStatus::kBrokenSignature);
}

TEST(VerifyPath, BrokenLinkage) {
  auto chain = make_chain("dot.example.com", kLetsEncryptCa, {2019, 1, 1},
                          {2019, 12, 1});
  chain.certs[0].issuer_cn = "Somebody Else";
  EXPECT_EQ(verify_path(chain, TrustStore::mozilla(), kNow),
            CertStatus::kUntrustedChain);
}

TEST(VerifyPath, ExpiredTakesPrecedenceOverSelfSigned) {
  // The paper's categorization counts an expired self-signed cert as expired.
  const auto chain = make_self_signed("old.device", {2017, 1, 1}, {2018, 7, 1});
  EXPECT_EQ(verify_path(chain, TrustStore::mozilla(), kNow), CertStatus::kExpired);
}

TEST(VerifyPath, TrustedSelfSignedRootAccepted) {
  CertificateChain chain;
  Certificate root;
  root.subject_cn = kDigicertCa;
  root.issuer_cn = kDigicertCa;
  root.is_ca = true;
  root.not_before = {2010, 1, 1};
  root.not_after = {2035, 1, 1};
  chain.certs = {root};
  EXPECT_EQ(verify_path(chain, TrustStore::mozilla(), kNow), CertStatus::kValid);
}

TEST(VerifyHost, HostnameMismatchOnlyAfterValidPath) {
  const auto chain = make_chain("dns.quad9.net", kDigicertCa, {2019, 1, 1},
                                {2019, 12, 1}, {"dns.quad9.net"});
  EXPECT_EQ(verify_host(chain, "dns.quad9.net", TrustStore::mozilla(), kNow),
            CertStatus::kValid);
  EXPECT_EQ(verify_host(chain, "other.example", TrustStore::mozilla(), kNow),
            CertStatus::kHostnameMismatch);
}

TEST(VerifyHost, PathErrorsWinOverHostname) {
  const auto chain = make_self_signed("whatever", {2019, 1, 1}, {2020, 1, 1});
  EXPECT_EQ(verify_host(chain, "whatever", TrustStore::mozilla(), kNow),
            CertStatus::kSelfSigned);
}

TEST(TrustStore, MozillaAnchors) {
  const auto& store = TrustStore::mozilla();
  EXPECT_TRUE(store.trusts(kLetsEncryptCa));
  EXPECT_TRUE(store.trusts(kDigicertCa));
  EXPECT_FALSE(store.trusts("SonicWall Firewall DPI-SSL"));
  EXPECT_GE(store.size(), 5u);
}

TEST(Interceptor, ResignKeepsSubjectChangesIssuer) {
  const auto original = make_chain("cloudflare-dns.com", kDigicertCa,
                                   {2018, 10, 1}, {2019, 12, 1},
                                   {"cloudflare-dns.com", "*.cloudflare-dns.com"});
  const TlsInterceptor interceptor("SonicWall Firewall DPI-SSL", "SonicWall NSA");
  const auto resigned = interceptor.resign(original, kNow);
  ASSERT_EQ(resigned.certs.size(), 2u);
  EXPECT_EQ(resigned.leaf().subject_cn, "cloudflare-dns.com");
  EXPECT_EQ(resigned.leaf().san, original.leaf().san);
  EXPECT_EQ(resigned.leaf().issuer_cn, "SonicWall Firewall DPI-SSL");
  // The resigned chain fails public validation but passes hostname matching.
  EXPECT_EQ(verify_path(resigned, TrustStore::mozilla(), kNow),
            CertStatus::kUntrustedChain);
  EXPECT_TRUE(resigned.leaf().matches_host("mozilla.cloudflare-dns.com"));
}

TEST(Handshake, RoundTripCounts) {
  EXPECT_EQ(handshake_rtts(TlsVersion::kTls13, false), 1);
  EXPECT_EQ(handshake_rtts(TlsVersion::kTls12, false), 2);
  EXPECT_EQ(handshake_rtts(TlsVersion::kTls13, true), 1);
}

TEST(Handshake, CryptoCostsOrdered) {
  util::Rng rng(3);
  double full12 = 0, full13 = 0, resumed = 0;
  for (int i = 0; i < 500; ++i) {
    full12 += handshake_crypto_cost(TlsVersion::kTls12, false, rng).value;
    full13 += handshake_crypto_cost(TlsVersion::kTls13, false, rng).value;
    resumed += handshake_crypto_cost(TlsVersion::kTls13, true, rng).value;
  }
  EXPECT_GT(full12, full13);
  EXPECT_GT(full13, resumed);
}

TEST(Handshake, RecordCostScalesWithSize) {
  util::Rng rng(5);
  double small = 0, big = 0;
  for (int i = 0; i < 200; ++i) {
    small += record_crypto_cost(100, rng).value;
    big += record_crypto_cost(100000, rng).value;
  }
  EXPECT_GT(big, small);
}

TEST(SessionCache, ExpiryAndRefresh) {
  SessionCache cache(sim::Millis{1000.0});
  cache.store("host:853", sim::Millis{0.0});
  EXPECT_TRUE(cache.try_resume("host:853", sim::Millis{500.0}));
  // The hit at t=500 refreshed the entry; alive at 1400.
  EXPECT_TRUE(cache.try_resume("host:853", sim::Millis{1400.0}));
  EXPECT_FALSE(cache.try_resume("host:853", sim::Millis{5000.0}));
  EXPECT_FALSE(cache.try_resume("unknown", sim::Millis{0.0}));
  EXPECT_EQ(cache.size(), 0u);  // expired entry was evicted
}

// Pins the ticket-refresh semantics the handshake.hpp comment promises: a
// successful resumption re-issues the ticket, extending its lifetime to
// `now + lifetime`. A session resumed at least once per lifetime therefore
// stays resumable indefinitely; one skipped window and the ticket is gone
// for good (the expired entry is erased, not refreshed).
TEST(SessionCache, ResumptionExtendsTicketLifetime) {
  SessionCache cache(sim::Millis{1000.0});
  cache.store("host:853", sim::Millis{0.0});
  // Chain of resumptions, each inside the previous ticket's lifetime: the
  // original ticket would have died at t=1000, but every hit re-issued it.
  for (double t = 900.0; t <= 4500.0; t += 900.0)
    EXPECT_TRUE(cache.try_resume("host:853", sim::Millis{t})) << t;

  // Identical ticket, no intermediate resumption: dead one lifetime after
  // issue, and a late resumption attempt cannot revive it.
  cache.store("cold:853", sim::Millis{0.0});
  EXPECT_FALSE(cache.try_resume("cold:853", sim::Millis{1001.0}));
  EXPECT_FALSE(cache.try_resume("cold:853", sim::Millis{1002.0}));
}

}  // namespace
}  // namespace encdns::tls
